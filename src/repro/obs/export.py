"""Render observability artifacts for external tooling.

Two targets, both dependency-free:

* **Chrome trace-event JSON** (:func:`chrome_trace_payload`) — the
  format Perfetto and ``chrome://tracing`` load.  Each packet trace
  becomes one duration slice (a balanced ``B``/``E`` pair) on a track
  keyed by receiver (``pid``) and sequence (``tid``), with every
  lifecycle stage in between as an instant (``i``) event.  Timestamps
  are the session's virtual clock scaled to microseconds, so the
  rendered timeline *is* the paper's pacing model.
* **Prometheus text exposition** (:func:`prometheus_text`) — a
  point-in-time snapshot of a metrics registry (counters, timers,
  histograms in cumulative-bucket form) plus optional free gauges,
  suitable for ``node_exporter``-style textfile collection.

Both renderings are deterministic: sorted iteration everywhere, no
timestamps besides the virtual ones already in the data.
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Mapping, Optional, Union

from repro.exceptions import AnalysisError
from repro.obs.registry import MetricsRegistry

__all__ = [
    "chrome_trace_payload",
    "write_chrome_trace",
    "prometheus_text",
    "write_prometheus",
]

_MICRO = 1e6  # trace-event timestamps are microseconds


def chrome_trace_payload(events: Iterable[dict],
                         alerts: Optional[Iterable[dict]] = None) -> dict:
    """Fold lifecycle events into a Chrome trace-event JSON payload.

    ``events`` are lifecycle records (dicts with ``trace``/``r``/``b``/
    ``seq``/``stage``/``status``/``t``), typically
    :meth:`~repro.obs.lifecycle.LifecycleTracer.events` output or the
    parsed lines of a ``--lifecycle-out`` file.  Each trace renders as:

    * one ``B`` (begin) at its earliest event,
    * one ``i`` (instant) per stage event, named ``stage:status``,
    * one ``E`` (end) at its latest event —

    always balanced, the invariant the property suite pins.  Receivers
    map to ``pid`` (sorted order) so Perfetto groups tracks per
    receiver; ``tid`` is the packet sequence number.

    ``alerts`` are health-plane alert records
    (:meth:`~repro.obs.health.AlertEvent.to_dict` dicts); each renders
    as one process-scoped instant (``alert:<kind>``) on a dedicated
    ``pid 0`` "health" track, so Perfetto shows the breaches on the
    same timeline as the packet lifecycles that caused them.
    """
    by_trace: Dict[str, List[dict]] = {}
    receivers: List[str] = []
    for event in events:
        by_trace.setdefault(event["trace"], []).append(event)
        receiver = event["r"]
        if receiver not in receivers:
            receivers.append(receiver)
    pid_of = {receiver: index + 1
              for index, receiver in enumerate(sorted(receivers))}
    trace_events: List[dict] = []
    ordered = sorted(
        by_trace.items(),
        key=lambda item: (item[1][0]["b"], item[1][0]["r"],
                          item[1][0]["seq"]))
    for trace, records in ordered:
        records = sorted(records, key=lambda r: (r["t"],))
        first, last = records[0], records[-1]
        pid = pid_of[first["r"]]
        tid = int(first["seq"])
        name = f"b{first['b']}/s{first['seq']}"
        trace_events.append({
            "ph": "B", "name": name, "cat": "packet",
            "ts": first["t"] * _MICRO, "pid": pid, "tid": tid,
            "args": {"trace": trace, "receiver": first["r"]},
        })
        for record in records:
            args = {key: value for key, value in record.items()
                    if key not in ("trace", "r", "b", "seq", "stage",
                                   "status", "t")}
            trace_events.append({
                "ph": "i", "name": f"{record['stage']}:{record['status']}",
                "cat": record["stage"], "ts": record["t"] * _MICRO,
                "pid": pid, "tid": tid, "s": "t", "args": args,
            })
        trace_events.append({
            "ph": "E", "name": name, "cat": "packet",
            "ts": last["t"] * _MICRO, "pid": pid, "tid": tid,
            "args": {},
        })
    metadata = [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
         "args": {"name": f"receiver {receiver}"}}
        for receiver, pid in sorted(pid_of.items())
    ]
    alert_events: List[dict] = []
    if alerts is not None:
        for alert in sorted(alerts, key=lambda a: (a["block"],
                                                   a["detector"],
                                                   a["kind"], a["scope"])):
            alert_events.append({
                "ph": "i", "name": f"alert:{alert['kind']}", "cat": "alert",
                "ts": alert["t"] * _MICRO, "pid": 0, "tid": 0, "s": "p",
                "args": {"severity": alert["severity"],
                         "detector": alert["detector"],
                         "scope": alert["scope"],
                         "block": alert["block"]},
            })
        if alert_events:
            metadata.append(
                {"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
                 "args": {"name": "health"}})
    return {"traceEvents": metadata + alert_events + trace_events,
            "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, events: Iterable[dict],
                       alerts: Optional[Iterable[dict]] = None) -> int:
    """Write the Perfetto-loadable trace JSON; returns the event count."""
    payload = chrome_trace_payload(events, alerts=alerts)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True,
                  separators=(",", ":"))
        handle.write("\n")
    return len(payload["traceEvents"])


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a metric name to the Prometheus grammar."""
    cleaned = _NAME_OK.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _fmt(value: Union[int, float]) -> str:
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    return repr(float(value))


def prometheus_text(registry: Optional[MetricsRegistry] = None,
                    gauges: Optional[Mapping[str, float]] = None,
                    prefix: str = "repro") -> str:
    """Render a registry snapshot in Prometheus text format.

    Counters become ``<prefix>_<name>_total``; timers expose
    ``_seconds_total`` and ``_calls_total``; histograms render
    cumulative ``_bucket{le=...}`` series with ``+Inf`` and ``_count``.
    ``gauges`` (name → number) are appended as gauge samples — the
    serving layer passes its final per-receiver timeseries readings.
    """
    if registry is None and gauges is None:
        raise AnalysisError("nothing to render: no registry, no gauges")
    lines: List[str] = []
    if registry is not None:
        for name in sorted(registry.counters):
            metric = f"{prefix}_{_prom_name(name)}_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_fmt(registry.counters[name])}")
        for name in sorted(registry.timers):
            total_ns, calls = registry.timers[name]
            base = f"{prefix}_{_prom_name(name)}"
            lines.append(f"# TYPE {base}_seconds_total counter")
            lines.append(f"{base}_seconds_total {_fmt(total_ns / 1e9)}")
            lines.append(f"# TYPE {base}_calls_total counter")
            lines.append(f"{base}_calls_total {calls}")
        for name in sorted(registry.histograms):
            histogram = registry.histograms[name]
            base = f"{prefix}_{_prom_name(name)}"
            lines.append(f"# TYPE {base} histogram")
            cumulative = 0
            for bound, count in zip(histogram.bounds, histogram.counts):
                cumulative += count
                lines.append(
                    f'{base}_bucket{{le="{_fmt(float(bound))}"}} '
                    f"{cumulative}")
            cumulative += histogram.overflow
            lines.append(f'{base}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{base}_count {cumulative}")
    if gauges:
        for name in sorted(gauges):
            value = gauges[name]
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                raise AnalysisError(
                    f"gauge {name!r} must be a number, got "
                    f"{type(value).__name__}")
            metric = f"{prefix}_{_prom_name(name)}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_fmt(value)}")
    return "\n".join(lines) + "\n"


def write_prometheus(path: str,
                     registry: Optional[MetricsRegistry] = None,
                     gauges: Optional[Mapping[str, float]] = None,
                     prefix: str = "repro") -> None:
    """Write :func:`prometheus_text` output to ``path``."""
    text = prometheus_text(registry, gauges, prefix=prefix)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
