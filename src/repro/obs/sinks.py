"""Output sinks: JSON-lines trace files and metrics/manifest JSON.

Kept free of any dependency beyond the standard library so the
observability layer can be imported everywhere (workers, tests, CLI)
without dragging simulation machinery along.
"""

from __future__ import annotations

import json
import threading
from typing import Optional, TextIO, Union

__all__ = ["TraceSink", "write_json_file"]


class TraceSink:
    """Append-only JSON-lines writer for span trace records.

    Accepts a path (opened and owned by the sink) or an existing text
    stream (borrowed — :meth:`close` leaves it open, so tests can pass
    a ``StringIO``).  Writes are serialized under a lock; each record
    is one ``json.dumps`` line flushed immediately, so a crashed run
    still leaves a readable prefix.
    """

    def __init__(self, target: Union[str, TextIO]) -> None:
        self._lock = threading.Lock()
        if isinstance(target, str):
            self._handle: TextIO = open(target, "w", encoding="utf-8")
            self._owned = True
        else:
            self._handle = target
            self._owned = False
        self.records_written = 0

    def write(self, record: dict) -> None:
        """Append one record as a JSON line."""
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            self.records_written += 1

    def close(self) -> None:
        """Close the underlying handle if this sink opened it."""
        if self._owned:
            self._handle.close()

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


def write_json_file(path: str, payload: dict,
                    indent: Optional[int] = 2) -> None:
    """Write ``payload`` as JSON to ``path`` (UTF-8, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=indent, sort_keys=True)
        handle.write("\n")
