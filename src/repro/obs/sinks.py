"""Output sinks: JSON-lines trace files and metrics/manifest JSON.

Kept free of any dependency beyond the standard library so the
observability layer can be imported everywhere (workers, tests, CLI)
without dragging simulation machinery along.
"""

from __future__ import annotations

import json
import threading
from typing import List, Optional, TextIO, Union

__all__ = ["TraceSink", "write_json_file"]


class TraceSink:
    """Append-only JSON-lines writer for span trace records.

    Accepts a path (opened and owned by the sink) or an existing text
    stream (borrowed — :meth:`close` leaves it open, so tests can pass
    a ``StringIO``).  Writes are serialized under a lock.

    Two write disciplines:

    * ``buffered=False`` (default) — each record is one ``json.dumps``
      line flushed immediately, so a crashed run still leaves a
      readable prefix;
    * ``buffered=True`` — records accumulate in memory until
      :meth:`flush`.  :meth:`close` always flushes first and the
      context manager closes on error paths too, so even a run that
      dies mid-stream yields a parseable JSON-lines file — never a
      torn line, never silently dropped buffered events.
    """

    def __init__(self, target: Union[str, TextIO],
                 buffered: bool = False) -> None:
        self._lock = threading.Lock()
        if isinstance(target, str):
            self._handle: TextIO = open(target, "w", encoding="utf-8")
            self._owned = True
        else:
            self._handle = target
            self._owned = False
        self.buffered = buffered
        self._pending: List[str] = []
        self._closed = False
        self.records_written = 0

    def write(self, record: dict) -> None:
        """Append one record as a JSON line."""
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self.buffered:
                self._pending.append(line)
            else:
                self._handle.write(line + "\n")
                self._handle.flush()
            self.records_written += 1

    def flush(self) -> int:
        """Drain buffered records to the handle; returns the count.

        A no-op (returning 0) in unbuffered mode, where every write
        already hit the handle.
        """
        with self._lock:
            pending, self._pending = self._pending, []
            if pending:
                self._handle.write("\n".join(pending) + "\n")
            self._handle.flush()
        return len(pending)

    def close(self) -> None:
        """Flush, then close the underlying handle if this sink opened it.

        Idempotent: safe to call from both a ``finally`` block and a
        context-manager exit.
        """
        if self._closed:
            return
        self.flush()
        self._closed = True
        if self._owned:
            self._handle.close()

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info) -> bool:
        # Close (and therefore flush) even when the body raised: the
        # error path is exactly when a partial trace is most valuable.
        self.close()
        return False


def write_json_file(path: str, payload: dict,
                    indent: Optional[int] = 2) -> None:
    """Write ``payload`` as JSON to ``path`` (UTF-8, trailing newline)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=indent, sort_keys=True)
        handle.write("\n")
