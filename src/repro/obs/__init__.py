"""``repro.obs`` — dependency-free observability for the reproduction.

Designed to be bit-for-bit neutral to simulation results (metrics
never touch an RNG) and zero-cost when disabled:

* :mod:`repro.obs.registry` — counters, timers and fixed-bucket
  histograms with an exact ``merge()`` (the :class:`~repro.analysis.
  montecarlo.McResult` algebra), plus the process-wide current
  registry and the :data:`NULL_REGISTRY` fast path;
* :mod:`repro.obs.spans` — nested span timing feeding registry timers
  and an optional JSON-lines trace sink;
* :mod:`repro.obs.lifecycle` — deterministic per-packet lifecycle
  traces (``sign -> frame -> enqueue -> transport -> ingest ->
  verify``) with hash-derived trace IDs and hash-selected sampling,
  byte-identical across runs of the same config;
* :mod:`repro.obs.timeseries` — per-receiver gauges on a fixed
  virtual-time grid for watching a live session evolve;
* :mod:`repro.obs.health` — online health plane for live serving:
  integer-CUSUM SLO monitors, envelope drift detection against the
  design lattice, soundness sentinels, and a deterministic JSON-lines
  alert pipeline with exact state ``merge()``;
* :mod:`repro.obs.export` — Chrome trace-event / Perfetto JSON and
  Prometheus text renderings of the above;
* :mod:`repro.obs.manifest` — per-run provenance manifests and the
  schema validation CI leans on; :mod:`repro.obs.bench` folds
  pytest-benchmark output into ``BENCH_<date>.json`` trajectories and
  diffs two of them for the regression gate.
"""

from repro.obs.bench import (
    build_bench_report,
    diff_bench_reports,
    index_bench_report,
    load_bench_report,
    write_bench_report,
)
from repro.obs.export import (
    chrome_trace_payload,
    prometheus_text,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.health import (
    ALERT_DETECTORS,
    ALERT_SEVERITIES,
    AlertEvent,
    AlertSink,
    HealthMonitor,
    SloSpec,
    max_severity,
    parse_slo_spec,
    validate_alerts_file,
)
from repro.obs.lifecycle import (
    LIFECYCLE_STAGES,
    NULL_LIFECYCLE,
    LifecycleTracer,
    NullLifecycleTracer,
    get_lifecycle,
    lifecycle_sampled,
    lifecycle_trace_id,
    set_lifecycle,
    use_lifecycle,
    validate_lifecycle_file,
)
from repro.obs.manifest import (
    RunManifest,
    git_sha,
    validate_metrics_file,
    validate_metrics_payload,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    metrics_enabled,
    set_registry,
    use_registry,
)
from repro.obs.sinks import TraceSink, write_json_file
from repro.obs.spans import (
    get_trace_sink,
    profile_report,
    set_trace_sink,
    span,
)
from repro.obs.timeseries import (
    TimeseriesSampler,
    validate_timeseries_file,
)

__all__ = [
    "ALERT_DETECTORS",
    "ALERT_SEVERITIES",
    "AlertEvent",
    "AlertSink",
    "HealthMonitor",
    "SloSpec",
    "Histogram",
    "LIFECYCLE_STAGES",
    "LifecycleTracer",
    "MetricsRegistry",
    "NullLifecycleTracer",
    "NullRegistry",
    "NULL_LIFECYCLE",
    "NULL_REGISTRY",
    "RunManifest",
    "TimeseriesSampler",
    "TraceSink",
    "build_bench_report",
    "chrome_trace_payload",
    "diff_bench_reports",
    "get_lifecycle",
    "get_registry",
    "get_trace_sink",
    "git_sha",
    "index_bench_report",
    "lifecycle_sampled",
    "lifecycle_trace_id",
    "load_bench_report",
    "max_severity",
    "metrics_enabled",
    "parse_slo_spec",
    "profile_report",
    "prometheus_text",
    "set_lifecycle",
    "set_registry",
    "set_trace_sink",
    "span",
    "use_lifecycle",
    "use_registry",
    "validate_alerts_file",
    "validate_lifecycle_file",
    "validate_metrics_file",
    "validate_metrics_payload",
    "validate_timeseries_file",
    "write_bench_report",
    "write_chrome_trace",
    "write_json_file",
    "write_prometheus",
]
