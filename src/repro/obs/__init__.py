"""``repro.obs`` — dependency-free observability for the reproduction.

Three pieces, designed to be bit-for-bit neutral to simulation results
(metrics never touch an RNG) and zero-cost when disabled:

* :mod:`repro.obs.registry` — counters, timers and fixed-bucket
  histograms with an exact ``merge()`` (the :class:`~repro.analysis.
  montecarlo.McResult` algebra), plus the process-wide current
  registry and the :data:`NULL_REGISTRY` fast path;
* :mod:`repro.obs.spans` — nested span timing feeding registry timers
  and an optional JSON-lines trace sink;
* :mod:`repro.obs.manifest` — per-run provenance manifests and the
  schema validation CI leans on; :mod:`repro.obs.bench` folds
  pytest-benchmark output into ``BENCH_<date>.json`` trajectories.
"""

from repro.obs.bench import build_bench_report, write_bench_report
from repro.obs.manifest import (
    RunManifest,
    git_sha,
    validate_metrics_file,
    validate_metrics_payload,
)
from repro.obs.registry import (
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    metrics_enabled,
    set_registry,
    use_registry,
)
from repro.obs.sinks import TraceSink, write_json_file
from repro.obs.spans import (
    get_trace_sink,
    profile_report,
    set_trace_sink,
    span,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "RunManifest",
    "TraceSink",
    "build_bench_report",
    "get_registry",
    "get_trace_sink",
    "git_sha",
    "metrics_enabled",
    "profile_report",
    "set_registry",
    "set_trace_sink",
    "span",
    "use_registry",
    "validate_metrics_file",
    "validate_metrics_payload",
    "write_bench_report",
    "write_json_file",
]
