"""Fold pytest-benchmark output into a benchmark trajectory file.

The ``benchmarks/`` harness (run as ``pytest benchmarks/
--benchmark-autosave`` or ``--benchmark-json=FILE``) writes JSON files
full of per-benchmark statistics.  ``repro-experiments bench-report``
collects every such file under a directory, reduces each benchmark to
its headline numbers (min/mean/stddev/rounds), and writes a single
``BENCH_<date>.json`` — one point of a performance trajectory that
successive PRs can diff to catch regressions.
"""

from __future__ import annotations

import datetime
import json
import os
from typing import Dict, List, Optional

from repro.exceptions import AnalysisError
from repro.obs.manifest import git_sha
from repro.obs.sinks import write_json_file

__all__ = ["collect_benchmark_files", "fold_benchmark_file",
           "build_bench_report", "write_bench_report",
           "index_bench_report", "diff_bench_reports",
           "load_bench_report"]

REPORT_VERSION = 1

#: Default regression threshold: flag a benchmark when its headline
#: stat grew by more than this fraction over the baseline.
DEFAULT_REGRESSION_THRESHOLD = 0.2


def collect_benchmark_files(root: str) -> List[str]:
    """All pytest-benchmark JSON files under ``root``, sorted by path.

    Both layouts are accepted: ``--benchmark-autosave``'s
    ``.benchmarks/<machine>/<file>.json`` tree and loose
    ``--benchmark-json`` files dropped anywhere under ``root``.
    """
    if not os.path.isdir(root):
        raise AnalysisError(f"benchmark directory not found: {root}")
    found: List[str] = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in filenames:
            if filename.endswith(".json"):
                found.append(os.path.join(dirpath, filename))
    return sorted(found)


def fold_benchmark_file(path: str) -> Optional[dict]:
    """Reduce one pytest-benchmark JSON file to its headline stats.

    Returns ``None`` for JSON files that are not pytest-benchmark
    output (no ``benchmarks`` list), so unrelated artifacts sharing the
    directory are skipped rather than fatal.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except ValueError as exc:
            raise AnalysisError(f"malformed benchmark file {path}: {exc}")
    if not isinstance(payload, dict) or "benchmarks" not in payload:
        return None
    benchmarks = []
    for bench in payload["benchmarks"]:
        stats = bench.get("stats", {})
        benchmarks.append({
            "name": bench.get("fullname", bench.get("name", "?")),
            "min_s": stats.get("min"),
            "mean_s": stats.get("mean"),
            "stddev_s": stats.get("stddev"),
            "rounds": stats.get("rounds"),
        })
    return {
        "source": path,
        "datetime": payload.get("datetime"),
        "python": payload.get("machine_info", {}).get("python_version"),
        "benchmarks": benchmarks,
    }


def build_bench_report(root: str) -> dict:
    """Trajectory payload folding every benchmark file under ``root``."""
    entries = []
    for path in collect_benchmark_files(root):
        folded = fold_benchmark_file(path)
        if folded is not None:
            entries.append(folded)
    if not entries:
        raise AnalysisError(
            f"no pytest-benchmark JSON found under {root}; run e.g. "
            f"'pytest benchmarks/ --benchmark-json=bench.json' first")
    totals: Dict[str, int] = {"files": len(entries),
                              "benchmarks": sum(len(e["benchmarks"])
                                                for e in entries)}
    return {
        "report_version": REPORT_VERSION,
        "generated_at": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "git_sha": git_sha(),
        "totals": totals,
        "entries": entries,
    }


def load_bench_report(path: str) -> dict:
    """Load and shape-check a ``bench-report`` trajectory file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise AnalysisError(f"cannot read bench report {path}: {exc}")
    except ValueError as exc:
        raise AnalysisError(f"malformed bench report {path}: {exc}")
    if (not isinstance(payload, dict)
            or payload.get("report_version") != REPORT_VERSION
            or not isinstance(payload.get("entries"), list)):
        raise AnalysisError(
            f"{path} is not a bench-report file (need report_version="
            f"{REPORT_VERSION} with an 'entries' list)")
    return payload


def index_bench_report(report: dict, metric: str = "min_s"
                       ) -> Dict[str, float]:
    """Benchmark name → headline stat, folded across a report's entries.

    ``metric`` picks the stat (``min_s`` by default — the standard
    noise-robust choice — or ``mean_s``).  A name appearing in several
    entries keeps its best (smallest) reading, mirroring how repeated
    benchmark files refine rather than contradict each other.
    """
    if metric not in ("min_s", "mean_s"):
        raise AnalysisError(
            f"unknown bench metric {metric!r} (min_s|mean_s)")
    indexed: Dict[str, float] = {}
    for entry in report.get("entries", []):
        for bench in entry.get("benchmarks", []):
            value = bench.get(metric)
            name = bench.get("name", "?")
            if value is None:
                continue
            value = float(value)
            if name not in indexed or value < indexed[name]:
                indexed[name] = value
    return indexed


def diff_bench_reports(baseline: dict, current: dict,
                       threshold: float = DEFAULT_REGRESSION_THRESHOLD,
                       metric: str = "min_s") -> dict:
    """Compare two bench reports; flag per-benchmark regressions.

    A benchmark regresses when ``current > baseline * (1 + threshold)``
    on the chosen stat.  The result carries every compared benchmark
    with its ratio, plus the names only one side knows about — CI
    treats a non-empty ``regressions`` list as a failure and surfaces
    ``missing`` loudly (a silently dropped benchmark is how a
    trajectory rots).
    """
    if threshold < 0:
        raise AnalysisError(f"threshold must be >= 0, got {threshold}")
    base = index_bench_report(baseline, metric)
    cur = index_bench_report(current, metric)
    regressions = []
    improvements = []
    compared = []
    for name in sorted(set(base) & set(cur)):
        base_value, cur_value = base[name], cur[name]
        if base_value <= 0:
            continue  # degenerate timing; nothing meaningful to compare
        ratio = cur_value / base_value
        row = {"name": name, "baseline_s": base_value,
               "current_s": cur_value, "ratio": ratio}
        compared.append(row)
        if ratio > 1.0 + threshold:
            regressions.append(row)
        elif ratio < 1.0 / (1.0 + threshold):
            improvements.append(row)
    return {
        "metric": metric,
        "threshold": threshold,
        "compared": compared,
        "regressions": regressions,
        "improvements": improvements,
        "missing": sorted(set(base) - set(cur)),
        "added": sorted(set(cur) - set(base)),
    }


def write_bench_report(root: str, out_path: Optional[str] = None) -> str:
    """Write ``BENCH_<date>.json`` (or ``out_path``) and return its path."""
    report = build_bench_report(root)
    if out_path is None:
        date = datetime.date.today().isoformat()
        out_path = f"BENCH_{date}.json"
    write_json_file(out_path, report)
    return out_path
