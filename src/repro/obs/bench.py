"""Fold pytest-benchmark output into a benchmark trajectory file.

The ``benchmarks/`` harness (run as ``pytest benchmarks/
--benchmark-autosave`` or ``--benchmark-json=FILE``) writes JSON files
full of per-benchmark statistics.  ``repro-experiments bench-report``
collects every such file under a directory, reduces each benchmark to
its headline numbers (min/mean/stddev/rounds), and writes a single
``BENCH_<date>.json`` — one point of a performance trajectory that
successive PRs can diff to catch regressions.
"""

from __future__ import annotations

import datetime
import json
import os
from typing import Dict, List, Optional

from repro.exceptions import AnalysisError
from repro.obs.manifest import git_sha
from repro.obs.sinks import write_json_file

__all__ = ["collect_benchmark_files", "fold_benchmark_file",
           "build_bench_report", "write_bench_report"]

REPORT_VERSION = 1


def collect_benchmark_files(root: str) -> List[str]:
    """All pytest-benchmark JSON files under ``root``, sorted by path.

    Both layouts are accepted: ``--benchmark-autosave``'s
    ``.benchmarks/<machine>/<file>.json`` tree and loose
    ``--benchmark-json`` files dropped anywhere under ``root``.
    """
    if not os.path.isdir(root):
        raise AnalysisError(f"benchmark directory not found: {root}")
    found: List[str] = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in filenames:
            if filename.endswith(".json"):
                found.append(os.path.join(dirpath, filename))
    return sorted(found)


def fold_benchmark_file(path: str) -> Optional[dict]:
    """Reduce one pytest-benchmark JSON file to its headline stats.

    Returns ``None`` for JSON files that are not pytest-benchmark
    output (no ``benchmarks`` list), so unrelated artifacts sharing the
    directory are skipped rather than fatal.
    """
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except ValueError as exc:
            raise AnalysisError(f"malformed benchmark file {path}: {exc}")
    if not isinstance(payload, dict) or "benchmarks" not in payload:
        return None
    benchmarks = []
    for bench in payload["benchmarks"]:
        stats = bench.get("stats", {})
        benchmarks.append({
            "name": bench.get("fullname", bench.get("name", "?")),
            "min_s": stats.get("min"),
            "mean_s": stats.get("mean"),
            "stddev_s": stats.get("stddev"),
            "rounds": stats.get("rounds"),
        })
    return {
        "source": path,
        "datetime": payload.get("datetime"),
        "python": payload.get("machine_info", {}).get("python_version"),
        "benchmarks": benchmarks,
    }


def build_bench_report(root: str) -> dict:
    """Trajectory payload folding every benchmark file under ``root``."""
    entries = []
    for path in collect_benchmark_files(root):
        folded = fold_benchmark_file(path)
        if folded is not None:
            entries.append(folded)
    if not entries:
        raise AnalysisError(
            f"no pytest-benchmark JSON found under {root}; run e.g. "
            f"'pytest benchmarks/ --benchmark-json=bench.json' first")
    totals: Dict[str, int] = {"files": len(entries),
                              "benchmarks": sum(len(e["benchmarks"])
                                                for e in entries)}
    return {
        "report_version": REPORT_VERSION,
        "generated_at": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "git_sha": git_sha(),
        "totals": totals,
        "entries": entries,
    }


def write_bench_report(root: str, out_path: Optional[str] = None) -> str:
    """Write ``BENCH_<date>.json`` (or ``out_path``) and return its path."""
    report = build_bench_report(root)
    if out_path is None:
        date = datetime.date.today().isoformat()
        out_path = f"BENCH_{date}.json"
    write_json_file(out_path, report)
    return out_path
