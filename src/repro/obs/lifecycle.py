"""Deterministic per-packet lifecycle tracing for the serving stack.

The paper's metrics — authentication probability ``q_i``, overhead
``d`` and receiver delay ``t_d`` — are *per-packet* quantities, but
the serving layer only reported block-level aggregates.  This module
gives every packet a causal trace through the canonical stages

    ``sign -> frame -> enqueue -> transport -> ingest -> verify``

with IDs derived **deterministically** from ``(run_seed, receiver,
block, seq)`` — no UUIDs, no wall clock — and timestamps taken from
the session's virtual clock.  Two runs of the same config therefore
emit byte-identical trace files at any receiver count, which turns the
observability output itself into a conformance artifact: CI diffs the
files instead of trusting them.

Sampling is by trace-ID hash (``keep iff hash % sample == 0``), so a
``1/N`` sample selects the *same* traces every run and the sampled
file is a byte-exact subset of the full one.

The tracer buffers events in memory and writes them on
:meth:`LifecycleTracer.flush` / :meth:`~LifecycleTracer.close`, sorted
by the canonical ``(block, receiver, seq, time, stage)`` key — asyncio
task interleaving can never leak into the file, and each trace's
events appear in monotone time order.  Flushing happens even
when the instrumented run raises (context-manager close and the
serving layer's ``finally``), so a crashed run still yields a
parseable JSON-lines prefix of its story.

Like the metrics registry, a process-wide *current tracer* defaults to
a null singleton whose ``enabled`` attribute lets hot paths skip event
construction entirely.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import AnalysisError
from repro.obs.sinks import TraceSink

__all__ = [
    "LIFECYCLE_STAGES",
    "LIFECYCLE_STATUSES",
    "NOISE_SEQ",
    "LifecycleTracer",
    "NullLifecycleTracer",
    "NULL_LIFECYCLE",
    "get_lifecycle",
    "set_lifecycle",
    "use_lifecycle",
    "lifecycle_trace_id",
    "lifecycle_sampled",
    "validate_lifecycle_file",
]

#: Canonical stage order; the sort key and the exporters lean on it.
LIFECYCLE_STAGES: Tuple[str, ...] = (
    "sign", "frame", "enqueue", "transport", "ingest", "verify")

_STAGE_INDEX = {name: index for index, name in enumerate(LIFECYCLE_STAGES)}

#: Statuses each stage may legally emit (the schema validator checks).
LIFECYCLE_STATUSES: Dict[str, Tuple[str, ...]] = {
    "sign": ("signed",),
    "frame": ("framed",),
    "enqueue": ("queued", "queue-drop"),
    "transport": ("deliver", "drop"),
    "ingest": ("decode", "buffer", "reject", "replay", "undecodable"),
    "verify": ("verified", "arrived", "lost"),
}

#: Sequence slot used for events that cannot be attributed to a real
#: packet (undecodable buffers, fresh forged injections).  Real wire
#: sequences start at 1, so 0 can never collide.
NOISE_SEQ = 0


def lifecycle_trace_id(run_seed: int, receiver: str, block: int,
                       seq: int) -> str:
    """Deterministic 16-hex-char trace ID for one packet lifecycle.

    Derived by hashing the canonical identity tuple — never a UUID or
    a clock — so the same ``(run_seed, receiver, block, seq)`` cell
    maps to the same ID in every run, worker and process.
    """
    key = f"{run_seed}:{receiver}:{block}:{seq}".encode("ascii")
    return hashlib.blake2b(key, digest_size=8).hexdigest()


def lifecycle_sampled(trace_id: str, sample: int) -> bool:
    """Deterministic 1/``sample`` keep decision by trace-ID hash."""
    if sample <= 1:
        return True
    return int(trace_id, 16) % sample == 0


class LifecycleTracer:
    """Records packet lifecycle events; writes them sorted and stable.

    Parameters
    ----------
    run_seed:
        Root seed of the traced run; part of every trace ID.
    sample:
        Keep ``1/sample`` of the traces, selected by trace-ID hash
        (``1`` keeps everything).  Sampling is per *trace*, never per
        event, so kept traces are always complete.
    sink:
        Where :meth:`flush` writes: a path, a text stream, or an
        existing :class:`~repro.obs.sinks.TraceSink`.  ``None`` keeps
        events in memory only (exporters can still read them).
    """

    enabled = True

    def __init__(self, run_seed: int, sample: int = 1,
                 sink: Union[None, str, TraceSink] = None) -> None:
        if sample < 1:
            raise AnalysisError(f"trace sample must be >= 1, got {sample}")
        self.run_seed = int(run_seed)
        self.sample = int(sample)
        if sink is None or isinstance(sink, TraceSink):
            self._sink: Optional[TraceSink] = sink
        else:
            self._sink = TraceSink(sink)
        self._lock = threading.Lock()
        self._events: List[Tuple[Tuple, dict]] = []
        self._ids: Dict[Tuple[str, int, int], str] = {}
        self._kept: Dict[str, bool] = {}
        self._birth = 0
        self.events_recorded = 0
        self.events_dropped = 0  # sampled-out events

    # -- identity ------------------------------------------------------

    def trace_id(self, receiver: str, block: int, seq: int) -> str:
        """Cached :func:`lifecycle_trace_id` for this run's seed."""
        key = (receiver, block, seq)
        trace = self._ids.get(key)
        if trace is None:
            trace = lifecycle_trace_id(self.run_seed, receiver, block, seq)
            self._ids[key] = trace
            self._kept[trace] = lifecycle_sampled(trace, self.sample)
        return trace

    def sampled(self, receiver: str, block: int, seq: int) -> bool:
        """Whether this packet's trace is kept under the sampling knob."""
        return self._kept[self.trace_id(receiver, block, seq)]

    # -- recording -----------------------------------------------------

    def record(self, receiver: str, block: int, seq: int, stage: str,
               status: str, t: float, **attrs) -> None:
        """Append one lifecycle event (dropped if its trace is sampled out).

        ``attrs`` ride along verbatim (ground-truth ``kind`` tags,
        verification delays, byte sizes); values must be JSON-ready.
        """
        trace = self.trace_id(receiver, block, seq)
        if not self._kept[trace]:
            self.events_dropped += 1
            return
        record = {"trace": trace, "r": receiver, "b": block, "seq": seq,
                  "stage": stage, "status": status, "t": t}
        if attrs:
            record.update(attrs)
        with self._lock:
            # Time-major within a trace: a trace with replayed or
            # forged copies visits enqueue/ingest more than once, so
            # time order — with stage order breaking exact-time ties —
            # is the only ordering that keeps timestamps monotone
            # while staying truthful.
            key = (block, receiver, seq, t, _STAGE_INDEX.get(stage, 99),
                   self._birth)
            self._birth += 1
            self._events.append((key, record))
            self.events_recorded += 1

    # -- reading / writing ---------------------------------------------

    def events(self) -> List[dict]:
        """Buffered (unflushed) events in canonical sorted order."""
        with self._lock:
            return [record for _key, record in sorted(self._events,
                                                      key=lambda e: e[0])]

    def flush(self) -> int:
        """Write buffered events to the sink, sorted; returns the count.

        Clears the buffer, so repeated flushes append disjoint sorted
        chunks (one final flush — the normal path — yields a globally
        sorted file).  Safe with no sink installed.
        """
        with self._lock:
            pending = sorted(self._events, key=lambda e: e[0])
            self._events = []
        if self._sink is not None:
            for _key, record in pending:
                self._sink.write(record)
        return len(pending)

    def close(self) -> None:
        """Flush and close the sink (idempotent)."""
        self.flush()
        if self._sink is not None:
            self._sink.close()

    def __enter__(self) -> "LifecycleTracer":
        return self

    def __exit__(self, *exc_info) -> bool:
        # Close on success *and* on error: a crashing instrumented run
        # must still leave a parseable JSON-lines file behind.
        self.close()
        return False


class NullLifecycleTracer(LifecycleTracer):
    """Disabled fast path: every operation is a no-op."""

    enabled = False

    def __init__(self) -> None:  # noqa: D107 - no sink, no state
        super().__init__(run_seed=0, sample=1, sink=None)

    def record(self, receiver: str, block: int, seq: int, stage: str,
               status: str, t: float, **attrs) -> None:  # noqa: D102
        pass

    def flush(self) -> int:  # noqa: D102
        return 0


#: Process-wide disabled singleton; ``get_lifecycle()`` returns it
#: until a live tracer is installed.
NULL_LIFECYCLE = NullLifecycleTracer()

_current: LifecycleTracer = NULL_LIFECYCLE


def get_lifecycle() -> LifecycleTracer:
    """The currently installed lifecycle tracer (null by default)."""
    return _current


def set_lifecycle(tracer: Optional[LifecycleTracer]) -> LifecycleTracer:
    """Install ``tracer`` process-wide (``None`` restores the null one).

    Returns the previously installed tracer so callers can restore it.
    """
    global _current
    previous = _current
    _current = tracer if tracer is not None else NULL_LIFECYCLE
    return previous


class use_lifecycle:
    """Scope a tracer as current for a ``with`` body (exception-safe)."""

    def __init__(self, tracer: Optional[LifecycleTracer]) -> None:
        self._tracer = tracer
        self._previous: Optional[LifecycleTracer] = None

    def __enter__(self) -> LifecycleTracer:
        self._previous = set_lifecycle(self._tracer)
        return get_lifecycle()

    def __exit__(self, *exc_info) -> bool:
        set_lifecycle(self._previous)
        return False


def validate_lifecycle_file(path: str) -> int:
    """Validate a lifecycle JSON-lines file; returns the event count.

    Every line must be a JSON object with the canonical fields, a
    known stage, a status legal for that stage, and a trace ID that
    re-derives from ``(r, b, seq)`` — corrupted or hand-edited files
    fail loudly.  The run seed is recovered from the first event by
    trial re-derivation only if a ``seed`` attr is present; otherwise
    ID self-consistency is checked structurally (16 hex chars).
    """
    count = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise AnalysisError(
                    f"{path}:{line_no}: not valid JSON: {exc}")
            for field in ("trace", "r", "b", "seq", "stage", "status", "t"):
                if field not in record:
                    raise AnalysisError(
                        f"{path}:{line_no}: missing field {field!r}")
            stage = record["stage"]
            if stage not in LIFECYCLE_STATUSES:
                raise AnalysisError(
                    f"{path}:{line_no}: unknown stage {stage!r}")
            if record["status"] not in LIFECYCLE_STATUSES[stage]:
                raise AnalysisError(
                    f"{path}:{line_no}: status {record['status']!r} "
                    f"illegal for stage {stage!r}")
            trace = record["trace"]
            if (not isinstance(trace, str) or len(trace) != 16
                    or any(c not in "0123456789abcdef" for c in trace)):
                raise AnalysisError(
                    f"{path}:{line_no}: malformed trace id {trace!r}")
            count += 1
    return count
