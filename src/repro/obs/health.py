"""Online health plane: streaming SLO, drift and soundness detectors.

The paper treats the authentication probability ``q_i`` as a *designed*
quantity, but nothing in the serving stack noticed while running when
the observed world left the designed envelope — conformance was all
post-hoc.  This module closes that gap with three detector families,
evaluated at virtual-time block boundaries inside
:func:`~repro.serve.service.run_live_session`:

* **SLO monitors** — one per receiver (``r:<id>``) and per subtree
  (``st:<label>``): a one-sided sequential (CUSUM-style) test of the
  verified-rate against the active design's ``q`` target.  With the
  target expressed as the exact fraction ``q_num/q_den``, a block of
  ``n`` expected and ``v`` verified packets updates the statistic as

      ``S <- max(0, S + (q_num*n - v*q_den))``

  and a breach fires when ``S >= deficit * q_den`` — i.e. when the
  cumulative shortfall exceeds ``deficit`` packets.  Everything is
  integer arithmetic: no wall clock, no float-order nondeterminism, so
  two runs (or any shard split) agree bit-for-bit.
* **Envelope drift** — the pooled loss window (exact integer
  ``lost``/``fill`` counts from the controller's estimator) compared
  against the top of the design lattice.  Leaving the lattice emits an
  edge-triggered ``off-lattice`` alert the adaptive controller consumes
  as a counted re-lookup/refresh hook (see
  :meth:`~repro.serve.adaptive.AdaptiveController.request_refresh`).
* **Soundness sentinels** — raw counters promoted to typed alerts:
  any ``forged_accepted`` (critical — the invariant every security
  test keys on), decode-error-rate spikes, DoS-cap buffer evictions,
  and batch root-cache anomalies (more root verifications than root
  signatures — the shared cache stopped amortizing).

Alerts flow through :class:`AlertSink`, a canonical JSON-lines writer
with the same sort-at-flush discipline as
:class:`~repro.obs.lifecycle.LifecycleTracer` — asyncio interleaving
can never leak into the bytes, so CI diffs two alert files instead of
trusting them.

:meth:`HealthMonitor.merge` gives monitor state the exact fold the
rest of the observability layer has (``McResult.merge`` /
``MetricsRegistry.merge``): associative, commutative, identity on a
fresh monitor with the same configuration, and bit-for-bit when shards
own disjoint scopes — the property the million-receiver cohort
sharding plan needs from its health plane.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import AnalysisError
from repro.obs.registry import get_registry
from repro.obs.sinks import TraceSink

__all__ = [
    "ALERT_SEVERITIES",
    "ALERT_DETECTORS",
    "DEFAULT_SLO_DEFICIT",
    "AlertEvent",
    "AlertSink",
    "SloSpec",
    "parse_slo_spec",
    "HealthMonitor",
    "max_severity",
    "validate_alerts_file",
]

#: Severity levels, mildest first; CLI exit codes key on the worst.
ALERT_SEVERITIES: Tuple[str, ...] = ("info", "warning", "critical")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(ALERT_SEVERITIES)}

#: Detector families an alert may come from.
ALERT_DETECTORS: Tuple[str, ...] = ("slo", "drift", "sentinel")

#: Default cumulative verified-packet deficit before an SLO breach
#: fires (the CUSUM decision threshold ``h``, in packet units).
DEFAULT_SLO_DEFICIT = 24

#: Pool-wide scope label for alerts not attributable to one receiver.
POOL_SCOPE = "_pool"

FractionLike = Union[Fraction, str, float, int]


def _to_fraction(value: FractionLike, what: str) -> Fraction:
    """Exact rational from a value (floats go through their decimal repr).

    ``Fraction(str(0.9))`` is ``9/10`` — the number the user wrote —
    where ``Fraction(0.9)`` would be the 53-bit binary neighbour.  The
    decimal reading is what makes CLI-supplied targets exact.
    """
    try:
        if isinstance(value, Fraction):
            fraction = value
        elif isinstance(value, float):
            fraction = Fraction(str(value))
        else:
            fraction = Fraction(value)
    except (ValueError, ZeroDivisionError) as exc:
        raise AnalysisError(f"bad {what} {value!r}: {exc}")
    return fraction


@dataclass(frozen=True)
class AlertEvent:
    """One typed health alert, anchored to a virtual-time block boundary.

    ``detail`` carries detector-specific evidence (exact integer
    counts, the target as a ``num/den`` string); values must be
    JSON-ready.  Events order canonically by :meth:`sort_key`, which is
    what makes alert files byte-identical across runs.
    """

    block: int
    detector: str
    kind: str
    scope: str
    severity: str
    t: float = 0.0
    detail: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_RANK:
            raise AnalysisError(
                f"unknown severity {self.severity!r} "
                f"({'|'.join(ALERT_SEVERITIES)})")
        if self.detector not in ALERT_DETECTORS:
            raise AnalysisError(
                f"unknown detector {self.detector!r} "
                f"({'|'.join(ALERT_DETECTORS)})")

    def sort_key(self) -> Tuple:
        """Canonical order: block-major, then detector/kind/scope."""
        return (self.block, self.detector, self.kind, self.scope, self.t,
                json.dumps(self.detail, sort_keys=True))

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready record (the alert-file line and manifest form)."""
        return {
            "block": self.block,
            "detector": self.detector,
            "kind": self.kind,
            "scope": self.scope,
            "severity": self.severity,
            "t": self.t,
            "detail": dict(self.detail),
        }


def max_severity(alerts: List[AlertEvent]) -> Optional[str]:
    """The worst severity present, or ``None`` for an empty list."""
    worst: Optional[str] = None
    for alert in alerts:
        if worst is None or _SEVERITY_RANK[alert.severity] > _SEVERITY_RANK[worst]:
            worst = alert.severity
    return worst


class AlertSink:
    """Buffered canonical JSON-lines writer for alert events.

    Mirrors the :class:`~repro.obs.lifecycle.LifecycleTracer` flush
    discipline: events buffer in memory and are written sorted by
    :meth:`AlertEvent.sort_key` on :meth:`flush`, so the emission order
    (which asyncio scheduling could perturb) never reaches the file.
    One final flush — the normal path — yields a globally sorted file.
    """

    def __init__(self, sink: Union[None, str, TraceSink] = None) -> None:
        if sink is None or isinstance(sink, TraceSink):
            self._sink: Optional[TraceSink] = sink
        else:
            self._sink = TraceSink(sink)
        self._pending: List[AlertEvent] = []
        self.written = 0

    def append(self, alert: AlertEvent) -> None:
        """Buffer one alert for the next flush."""
        self._pending.append(alert)

    def flush(self) -> int:
        """Write buffered alerts sorted; returns how many were written."""
        pending = sorted(self._pending, key=AlertEvent.sort_key)
        self._pending = []
        if self._sink is not None:
            for alert in pending:
                self._sink.write(alert.to_dict())
        self.written += len(pending)
        return len(pending)

    def close(self) -> None:
        """Flush and close the underlying sink (idempotent)."""
        self.flush()
        if self._sink is not None:
            self._sink.close()


@dataclass(frozen=True)
class SloSpec:
    """A parsed ``--slo`` flag: exact target plus breach threshold."""

    q_num: int
    q_den: int
    deficit: int


def parse_slo_spec(text: str) -> SloSpec:
    """Parse ``q:<target>[:<deficit>]`` (e.g. ``q:0.9`` or ``q:0.9:12``).

    The target is read as an exact decimal/rational in ``(0, 1]``; the
    optional deficit is the cumulative verified-packet shortfall that
    trips a breach (default :data:`DEFAULT_SLO_DEFICIT`).
    """
    parts = text.split(":")
    if len(parts) not in (2, 3) or parts[0] != "q":
        raise AnalysisError(
            f"bad SLO spec {text!r}: expected q:<target>[:<deficit>]")
    target = _to_fraction(parts[1], "SLO target")
    if not 0 < target <= 1:
        raise AnalysisError(
            f"SLO target must be in (0, 1], got {parts[1]!r}")
    deficit = DEFAULT_SLO_DEFICIT
    if len(parts) == 3:
        try:
            deficit = int(parts[2])
        except ValueError:
            raise AnalysisError(
                f"bad SLO deficit {parts[2]!r}: expected an integer")
        if deficit < 1:
            raise AnalysisError(f"SLO deficit must be >= 1, got {deficit}")
    return SloSpec(q_num=target.numerator, q_den=target.denominator,
                   deficit=deficit)


@dataclass
class _SloState:
    """Integer CUSUM state for one scope; every field sums exactly."""

    blocks: int = 0
    expected: int = 0
    verified: int = 0
    cusum: int = 0  # scaled by q_den
    peak: int = 0   # max cusum ever reached (scaled by q_den)
    breaches: int = 0

    def merged(self, other: "_SloState") -> "_SloState":
        return _SloState(
            blocks=self.blocks + other.blocks,
            expected=self.expected + other.expected,
            verified=self.verified + other.verified,
            cusum=self.cusum + other.cusum,
            peak=max(self.peak, other.peak),
            breaches=self.breaches + other.breaches,
        )

    def to_dict(self) -> Dict[str, int]:
        return {"blocks": self.blocks, "expected": self.expected,
                "verified": self.verified, "cusum": self.cusum,
                "peak": self.peak, "breaches": self.breaches}


_SENTINEL_KEYS = ("forged", "undecodable", "cap_evictions",
                  "root_verifies", "batch_signs", "expected")


class HealthMonitor:
    """Deterministic streaming health state for one serving session.

    Parameters
    ----------
    q_target:
        The verified-rate SLO floor, read exactly (decimal strings and
        floats go through their decimal representation, so ``0.9``
        means ``9/10``).
    deficit:
        CUSUM decision threshold in packet units: a breach fires once
        a scope's cumulative verified shortfall reaches this many
        packets below target.
    envelope_top:
        Top of the design lattice the drift detector checks the pooled
        loss window against.  ``None`` disables drift detection until
        :meth:`configure_envelope` is called (the serving layer wires
        the active controller's lattice in).
    decode_spike:
        Undecodable-to-expected ratio (per block, exact fraction) at or
        above which the decode sentinel fires.
    sink:
        Optional :class:`AlertSink` the monitor flushes alerts to.

    All detector state is integers (or exact rational configuration),
    so :meth:`merge` is an exact fold and repeated runs produce
    identical alert streams.
    """

    def __init__(self, q_target: FractionLike = Fraction(3, 4),
                 deficit: int = DEFAULT_SLO_DEFICIT,
                 envelope_top: Optional[FractionLike] = None,
                 decode_spike: FractionLike = Fraction(1, 4),
                 sink: Optional[AlertSink] = None) -> None:
        if deficit < 1:
            raise AnalysisError(f"deficit must be >= 1, got {deficit}")
        target = _to_fraction(q_target, "q target")
        if not 0 < target <= 1:
            raise AnalysisError(f"q target must be in (0, 1], got {q_target}")
        spike = _to_fraction(decode_spike, "decode spike threshold")
        if not 0 < spike <= 1:
            raise AnalysisError(
                f"decode spike threshold must be in (0, 1], got "
                f"{decode_spike}")
        self.q_num = target.numerator
        self.q_den = target.denominator
        self.deficit = int(deficit)
        self.spike_num = spike.numerator
        self.spike_den = spike.denominator
        self._envelope: Optional[Fraction] = None
        if envelope_top is not None:
            self.configure_envelope(envelope_top)
        self.sink = sink
        self.alerts: List[AlertEvent] = []
        self._unflushed: List[AlertEvent] = []
        self.slo: Dict[str, _SloState] = {}
        self.drift_blocks = 0
        self.off_lattice_blocks = 0
        self.off_lattice_entries = 0
        self._off_now = False
        self.sentinel_totals: Dict[str, int] = {key: 0
                                                for key in _SENTINEL_KEYS}
        self._last: Dict[str, int] = {}

    # -- configuration -------------------------------------------------

    def configure_envelope(self, top: FractionLike) -> None:
        """Set (or confirm) the lattice top the drift detector uses.

        Reconfiguring to a *different* top mid-flight would silently
        change detector semantics, so that is an error; re-setting the
        same value is a no-op (the serving layer wires the controller's
        lattice unconditionally).
        """
        value = _to_fraction(top, "envelope top")
        if not 0 < value < 1:
            raise AnalysisError(f"envelope top must be in (0, 1), got {top}")
        if self._envelope is not None and self._envelope != value:
            raise AnalysisError(
                f"envelope already configured at {self._envelope}, "
                f"refusing to change it to {value}")
        self._envelope = value

    @property
    def envelope_top(self) -> Optional[Fraction]:
        """The configured lattice top (``None`` = drift disabled)."""
        return self._envelope

    def _config_key(self) -> Tuple:
        return (self.q_num, self.q_den, self.deficit, self.spike_num,
                self.spike_den, self._envelope)

    # -- emission ------------------------------------------------------

    def _emit(self, alert: AlertEvent) -> AlertEvent:
        self.alerts.append(alert)
        self._unflushed.append(alert)
        registry = get_registry()
        if registry.enabled:
            registry.count(f"health.alerts.{alert.severity}", 1)
            registry.count(f"health.alert.{alert.kind}", 1)
        return alert

    # -- detectors -----------------------------------------------------

    def observe_slo(self, block: int, scope: str, expected: int,
                    verified: int, t: float = 0.0) -> Optional[AlertEvent]:
        """Fold one scope's block into its CUSUM; maybe fire a breach.

        The statistic accumulates the scaled shortfall
        ``q_num*expected - verified*q_den`` (positive iff the block ran
        under target), floors at zero, and fires — then re-arms — when
        it crosses ``deficit * q_den``.
        """
        if expected < 0 or verified < 0 or verified > expected:
            raise AnalysisError(
                f"need 0 <= verified <= expected, got verified={verified}, "
                f"expected={expected}")
        state = self.slo.get(scope)
        if state is None:
            state = self.slo[scope] = _SloState()
        state.blocks += 1
        state.expected += expected
        state.verified += verified
        state.cusum = max(
            0, state.cusum + self.q_num * expected - verified * self.q_den)
        state.peak = max(state.peak, state.cusum)
        if state.cusum < self.deficit * self.q_den:
            return None
        state.breaches += 1
        deficit_packets = state.cusum // self.q_den
        state.cusum = 0  # re-arm: one alert per crossing, not per block
        return self._emit(AlertEvent(
            block=block, detector="slo", kind="slo-breach", scope=scope,
            severity="warning", t=t,
            detail={"expected": expected, "verified": verified,
                    "deficit_packets": deficit_packets,
                    "target": f"{self.q_num}/{self.q_den}"}))

    def observe_envelope(self, block: int, lost: int, fill: int,
                         t: float = 0.0) -> Optional[AlertEvent]:
        """Check the pooled loss window against the lattice top.

        ``lost``/``fill`` are the estimator's exact integer window
        counts; the comparison ``lost/fill > top`` is done in cross-
        multiplied integers, so no float ever decides.  The alert is
        edge-triggered: it fires on the on→off transition and re-arms
        only after the window returns inside the lattice.
        """
        if lost < 0 or fill < 0 or lost > fill:
            raise AnalysisError(
                f"need 0 <= lost <= fill, got lost={lost}, fill={fill}")
        if self._envelope is None or fill == 0:
            return None
        self.drift_blocks += 1
        off = lost * self._envelope.denominator > (
            self._envelope.numerator * fill)
        if not off:
            self._off_now = False
            return None
        self.off_lattice_blocks += 1
        if self._off_now:
            return None
        self._off_now = True
        self.off_lattice_entries += 1
        return self._emit(AlertEvent(
            block=block, detector="drift", kind="off-lattice",
            scope=POOL_SCOPE, severity="warning", t=t,
            detail={"window_lost": lost, "window_fill": fill,
                    "lattice_top": (f"{self._envelope.numerator}/"
                                    f"{self._envelope.denominator}")}))

    def observe_sentinels(self, block: int, *, forged: int,
                          undecodable: int, cap_evictions: int,
                          root_verifies: int, batch_signs: int,
                          expected_delta: int,
                          t: float = 0.0) -> List[AlertEvent]:
        """Promote counter movement since the last call to typed alerts.

        All counter arguments are *cumulative absolutes* (pool-wide
        sums); the monitor differences them against its previous
        observation, so callers never track deltas.  ``expected_delta``
        is this block's expected packet-slot count (the decode spike's
        denominator).
        """
        deltas = {}
        for name, value in (("forged", forged),
                            ("undecodable", undecodable),
                            ("cap_evictions", cap_evictions),
                            ("root_verifies", root_verifies),
                            ("batch_signs", batch_signs)):
            if value < 0:
                raise AnalysisError(f"{name} must be >= 0, got {value}")
            previous = self._last.get(name, 0)
            if value < previous:
                raise AnalysisError(
                    f"{name} went backwards ({previous} -> {value}); "
                    f"sentinel counters are cumulative")
            deltas[name] = value - previous
            self._last[name] = value
        if expected_delta < 0:
            raise AnalysisError(
                f"expected_delta must be >= 0, got {expected_delta}")
        deltas["expected"] = expected_delta
        for name, delta in deltas.items():
            self.sentinel_totals[name] += delta
        fired: List[AlertEvent] = []
        if deltas["forged"] > 0:
            fired.append(self._emit(AlertEvent(
                block=block, detector="sentinel", kind="forged-accepted",
                scope=POOL_SCOPE, severity="critical", t=t,
                detail={"count": deltas["forged"]})))
        if (deltas["undecodable"] > 0 and expected_delta > 0
                and deltas["undecodable"] * self.spike_den
                >= expected_delta * self.spike_num):
            fired.append(self._emit(AlertEvent(
                block=block, detector="sentinel", kind="decode-spike",
                scope=POOL_SCOPE, severity="warning", t=t,
                detail={"undecodable": deltas["undecodable"],
                        "expected": expected_delta,
                        "threshold": (f"{self.spike_num}/"
                                      f"{self.spike_den}")})))
        if deltas["cap_evictions"] > 0:
            fired.append(self._emit(AlertEvent(
                block=block, detector="sentinel", kind="buffer-eviction",
                scope=POOL_SCOPE, severity="warning", t=t,
                detail={"evicted": deltas["cap_evictions"]})))
        if deltas["root_verifies"] > deltas["batch_signs"]:
            fired.append(self._emit(AlertEvent(
                block=block, detector="sentinel", kind="root-cache-miss",
                scope=POOL_SCOPE, severity="warning", t=t,
                detail={"root_verifies": deltas["root_verifies"],
                        "batch_signs": deltas["batch_signs"]})))
        return fired

    # -- reading / folding ---------------------------------------------

    def counts(self) -> Dict[str, int]:
        """Alert totals by severity (all severities always present)."""
        totals = {name: 0 for name in ALERT_SEVERITIES}
        for alert in self.alerts:
            totals[alert.severity] += 1
        return totals

    def counts_by_kind(self) -> Dict[str, int]:
        """Alert totals by kind, sorted keys."""
        totals: Dict[str, int] = {}
        for alert in self.alerts:
            totals[alert.kind] = totals.get(alert.kind, 0) + 1
        return dict(sorted(totals.items()))

    def worst_severity(self) -> Optional[str]:
        """Worst severity fired so far (``None`` = healthy)."""
        return max_severity(self.alerts)

    def gauges(self) -> Dict[str, object]:
        """Flat numeric row for timeseries / Prometheus export."""
        counts = self.counts()
        return {
            "alerts": len(self.alerts),
            "alerts_info": counts["info"],
            "alerts_warning": counts["warning"],
            "alerts_critical": counts["critical"],
            "slo_scopes": len(self.slo),
            "slo_breaches": sum(s.breaches for s in self.slo.values()),
            "off_lattice_blocks": self.off_lattice_blocks,
            "off_lattice_entries": self.off_lattice_entries,
        }

    def describe(self) -> Dict[str, object]:
        """Manifest-ready record: config echo, state, every alert."""
        record: Dict[str, object] = {
            "config": {
                "q_target": f"{self.q_num}/{self.q_den}",
                "deficit": self.deficit,
                "decode_spike": f"{self.spike_num}/{self.spike_den}",
                "envelope_top": (
                    None if self._envelope is None else
                    f"{self._envelope.numerator}/"
                    f"{self._envelope.denominator}"),
            },
            "alerts": [alert.to_dict() for alert in
                       sorted(self.alerts, key=AlertEvent.sort_key)],
            "counts": self.counts(),
            "kinds": self.counts_by_kind(),
            "slo": {scope: self.slo[scope].to_dict()
                    for scope in sorted(self.slo)},
            "drift": {
                "blocks": self.drift_blocks,
                "off_lattice_blocks": self.off_lattice_blocks,
                "off_lattice_entries": self.off_lattice_entries,
            },
            "sentinels": dict(sorted(self.sentinel_totals.items())),
        }
        return record

    def merge(self, other: "HealthMonitor") -> "HealthMonitor":
        """Exact fold of two monitors with identical configuration.

        Per-scope SLO states union by scope (integer field sums on a
        collision — bit-for-bit when shards own disjoint scopes, which
        is the cohort-sharding contract), drift and sentinel totals
        sum, and alert lists concatenate (:meth:`describe` and the
        sink both re-sort canonically).  Associative and commutative,
        with a fresh same-config monitor as identity.
        """
        if not isinstance(other, HealthMonitor):
            raise AnalysisError(
                f"can only merge HealthMonitor, got "
                f"{type(other).__name__}")
        if self._config_key() != other._config_key():
            raise AnalysisError(
                f"cannot merge monitors with different configurations: "
                f"{self._config_key()} vs {other._config_key()}")
        merged = HealthMonitor(
            q_target=Fraction(self.q_num, self.q_den),
            deficit=self.deficit,
            envelope_top=self._envelope,
            decode_spike=Fraction(self.spike_num, self.spike_den))
        merged.alerts = sorted(self.alerts + other.alerts,
                               key=AlertEvent.sort_key)
        for source in (self, other):
            for scope, state in source.slo.items():
                base = merged.slo.get(scope)
                merged.slo[scope] = (state if base is None
                                     else base.merged(state))
        merged.slo = {scope: merged.slo[scope]
                      for scope in sorted(merged.slo)}
        merged.drift_blocks = self.drift_blocks + other.drift_blocks
        merged.off_lattice_blocks = (self.off_lattice_blocks
                                     + other.off_lattice_blocks)
        merged.off_lattice_entries = (self.off_lattice_entries
                                      + other.off_lattice_entries)
        merged._off_now = self._off_now or other._off_now
        for key in _SENTINEL_KEYS:
            merged.sentinel_totals[key] = (self.sentinel_totals[key]
                                           + other.sentinel_totals[key])
        return merged

    # -- sink plumbing -------------------------------------------------

    def flush(self) -> int:
        """Push alerts emitted since the last flush into the sink."""
        pending = self._unflushed
        self._unflushed = []
        if self.sink is None:
            return 0
        for alert in pending:
            self.sink.append(alert)
        return self.sink.flush()

    def close(self) -> None:
        """Flush and close the sink (idempotent; no-sink safe)."""
        self.flush()
        if self.sink is not None:
            self.sink.close()


def validate_alerts_file(path: str) -> int:
    """Validate an alerts JSON-lines file; returns the alert count.

    Every line must be a JSON object with the canonical fields, a known
    detector and severity, integer block ids, and the lines must appear
    in canonical sorted order (the sort-at-flush contract) — corrupted,
    reordered or hand-edited files fail loudly.
    """
    count = 0
    previous_key: Optional[Tuple] = None
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise AnalysisError(f"{path}:{line_no}: not valid JSON: {exc}")
            for name in ("block", "detector", "kind", "scope", "severity",
                         "t", "detail"):
                if name not in record:
                    raise AnalysisError(
                        f"{path}:{line_no}: missing field {name!r}")
            if not isinstance(record["block"], int):
                raise AnalysisError(
                    f"{path}:{line_no}: block must be an integer, got "
                    f"{record['block']!r}")
            if record["detector"] not in ALERT_DETECTORS:
                raise AnalysisError(
                    f"{path}:{line_no}: unknown detector "
                    f"{record['detector']!r}")
            if record["severity"] not in _SEVERITY_RANK:
                raise AnalysisError(
                    f"{path}:{line_no}: unknown severity "
                    f"{record['severity']!r}")
            if not isinstance(record["detail"], dict):
                raise AnalysisError(
                    f"{path}:{line_no}: detail must be an object")
            key = (record["block"], record["detector"], record["kind"],
                   record["scope"], record["t"],
                   json.dumps(record["detail"], sort_keys=True))
            if previous_key is not None and key < previous_key:
                raise AnalysisError(
                    f"{path}:{line_no}: alerts out of canonical order")
            previous_key = key
            count += 1
    return count
