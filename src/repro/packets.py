"""Wire-level packet model shared by schemes and the simulator.

A :class:`Packet` is what the sender emits and the receiver consumes:
a payload plus authentication fields — carried hashes (the edges of the
dependence-graph made concrete), an optional signature, and an opaque
scheme-specific ``extra`` blob (Merkle proofs for Wong–Lam, interval /
MAC / disclosed-key fields for TESLA).

Two encodings are defined:

* :meth:`Packet.auth_bytes` — the canonical byte string that hashes and
  signatures are computed over.  It covers everything except the
  signature itself and is injective (length-prefixed fields), so a
  verified hash pins the payload *and* the hashes the packet carries,
  which is what makes hash chaining transitive.
* :meth:`Packet.to_wire` / :func:`packet_from_wire` — full
  serialization including the signature, used for byte-accurate
  overhead accounting and loopback tests.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.exceptions import SimulationError

__all__ = ["Packet", "packet_from_wire"]

_HEADER = struct.Struct(">IIQdB")  # seq, block_id, flags/reserved, send_time, has_sig
_U32 = struct.Struct(">I")


def _encode_blob(data: bytes) -> bytes:
    return _U32.pack(len(data)) + data


@dataclass(frozen=True)
class Packet:
    """One multicast packet with its authentication data.

    Attributes
    ----------
    seq:
        Global send-order sequence number (1-based within a stream).
    block_id:
        Which signature-amortization block this packet belongs to.
    payload:
        Application data.
    carried:
        ``(target_seq, hash)`` pairs: the hashes of other packets this
        packet carries — the out-edges of its dependence-graph vertex.
    signature:
        Present only on ``P_sign`` (and on every packet for sign-each /
        Wong–Lam style schemes).
    extra:
        Scheme-specific opaque bytes, covered by :meth:`auth_bytes`.
    send_time:
        Simulation transmit timestamp in seconds.
    """

    seq: int
    block_id: int
    payload: bytes
    carried: Tuple[Tuple[int, bytes], ...] = ()
    signature: Optional[bytes] = None
    extra: bytes = b""
    send_time: float = 0.0

    def __post_init__(self) -> None:
        if self.seq < 1:
            raise SimulationError(f"sequence numbers are 1-based, got {self.seq}")
        if self.block_id < 0:
            raise SimulationError(f"negative block id: {self.block_id}")
        seen = set()
        for target, digest in self.carried:
            if target < 1:
                raise SimulationError(f"carried hash for invalid seq {target}")
            if target == self.seq:
                raise SimulationError("packet cannot carry its own hash")
            if target in seen:
                raise SimulationError(f"duplicate carried hash for seq {target}")
            if not digest:
                raise SimulationError(f"empty hash carried for seq {target}")
            seen.add(target)

    # ------------------------------------------------------------------
    # Canonical encodings
    # ------------------------------------------------------------------

    def auth_bytes(self) -> bytes:
        """Injective encoding of all authenticated fields.

        Hashes of this packet and signatures over it are computed on
        this string.  The signature field itself is excluded (it cannot
        sign itself); everything else — including the carried hashes —
        is covered so that authenticating a packet authenticates the
        hashes it carries.
        """
        parts = [
            struct.pack(">II", self.seq, self.block_id),
            _encode_blob(self.payload),
            _U32.pack(len(self.carried)),
        ]
        for target, digest in self.carried:
            parts.append(_U32.pack(target))
            parts.append(_encode_blob(digest))
        parts.append(_encode_blob(self.extra))
        return b"".join(parts)

    def to_wire(self) -> bytes:
        """Full serialization, signature included."""
        signature = self.signature if self.signature is not None else b""
        return (
            _HEADER.pack(self.seq, self.block_id, 0, self.send_time,
                         1 if self.signature is not None else 0)
            + self.auth_bytes()
            + _encode_blob(signature)
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def overhead_bytes(self) -> int:
        """Authentication bytes carried: hashes + signature + extra.

        This is the per-packet quantity the paper's Eq. 3 averages.
        """
        total = sum(len(digest) for _, digest in self.carried)
        total += 4 * len(self.carried)  # target-seq fields
        if self.signature is not None:
            total += len(self.signature)
        total += len(self.extra)
        return total

    @property
    def is_signature_packet(self) -> bool:
        """Whether this packet carries a digital signature."""
        return self.signature is not None

    def with_send_time(self, when: float) -> "Packet":
        """A copy stamped with a transmit time."""
        return replace(self, send_time=when)


def packet_from_wire(data: bytes) -> Packet:
    """Parse a packet serialized by :meth:`Packet.to_wire`.

    Raises
    ------
    SimulationError
        If the buffer is truncated or malformed.
    """
    try:
        seq, block_id, _reserved, send_time, has_sig = _HEADER.unpack_from(data, 0)
        offset = _HEADER.size
        # The auth_bytes section repeats seq/block_id for injectivity.
        seq2, block2 = struct.unpack_from(">II", data, offset)
        offset += 8
        if (seq2, block2) != (seq, block_id):
            raise SimulationError("header/body sequence mismatch")
        (payload_len,) = _U32.unpack_from(data, offset)
        offset += 4
        payload = bytes(data[offset:offset + payload_len])
        if len(payload) != payload_len:
            raise SimulationError("truncated payload")
        offset += payload_len
        (carried_count,) = _U32.unpack_from(data, offset)
        offset += 4
        carried = []
        for _ in range(carried_count):
            (target,) = _U32.unpack_from(data, offset)
            offset += 4
            (digest_len,) = _U32.unpack_from(data, offset)
            offset += 4
            digest = bytes(data[offset:offset + digest_len])
            if len(digest) != digest_len:
                raise SimulationError("truncated carried hash")
            offset += digest_len
            carried.append((target, digest))
        (extra_len,) = _U32.unpack_from(data, offset)
        offset += 4
        extra = bytes(data[offset:offset + extra_len])
        if len(extra) != extra_len:
            raise SimulationError("truncated extra blob")
        offset += extra_len
        (sig_len,) = _U32.unpack_from(data, offset)
        offset += 4
        signature = bytes(data[offset:offset + sig_len])
        if len(signature) != sig_len:
            raise SimulationError("truncated signature")
    except struct.error as exc:
        raise SimulationError(f"malformed packet buffer: {exc}") from exc
    return Packet(
        seq=seq,
        block_id=block_id,
        payload=payload,
        carried=tuple(carried),
        signature=signature if has_sig else None,
        extra=extra,
        send_time=send_time,
    )
