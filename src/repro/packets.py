"""Wire-level packet model shared by schemes and the simulator.

A :class:`Packet` is what the sender emits and the receiver consumes:
a payload plus authentication fields — carried hashes (the edges of the
dependence-graph made concrete), an optional signature, and an opaque
scheme-specific ``extra`` blob (Merkle proofs for Wong–Lam, interval /
MAC / disclosed-key fields for TESLA).

Two encodings are defined:

* :meth:`Packet.auth_bytes` — the canonical byte string that hashes and
  signatures are computed over.  It covers everything except the
  signature itself and is injective (length-prefixed fields), so a
  verified hash pins the payload *and* the hashes the packet carries,
  which is what makes hash chaining transitive.
* :meth:`Packet.to_wire` / :func:`packet_from_wire` — full
  serialization including the signature, used for byte-accurate
  overhead accounting and loopback tests.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.exceptions import (
    HeaderFormatError,
    OverlongBlobError,
    PacketFormatError,
    SimulationError,
    TrailingBytesError,
    TruncatedPacketError,
    WireDecodeError,
)

__all__ = [
    "Packet",
    "packet_from_wire",
    "MAX_BLOB_BYTES",
    "MAX_CARRIED_HASHES",
    "WIRE_HEADER_SIZE",
]

_HEADER = struct.Struct(">IIQdB")  # seq, block_id, flags/reserved, send_time, has_sig
_U32 = struct.Struct(">I")
_U32_MAX = 0xFFFFFFFF

#: Hard cap on any length-prefixed field (payload, digest, extra,
#: signature).  Generous for every scheme here (the largest real blob
#: is the ~8 KB Lamport OTS) while keeping a hostile length field from
#: driving a multi-gigabyte allocation.
MAX_BLOB_BYTES = 1 << 20

#: Hard cap on the carried-hash count, bounding decode work up front.
MAX_CARRIED_HASHES = 1 << 16

#: Size of the unauthenticated wire header (everything before
#: :meth:`Packet.auth_bytes` starts).  Fault models that must corrupt
#: only *authenticated* bytes key off this offset.
WIRE_HEADER_SIZE = _HEADER.size


def _encode_blob(data: bytes) -> bytes:
    if len(data) > MAX_BLOB_BYTES:
        raise PacketFormatError(
            f"blob of {len(data)} bytes exceeds the wire cap {MAX_BLOB_BYTES}")
    return _U32.pack(len(data)) + data


@dataclass(frozen=True)
class Packet:
    """One multicast packet with its authentication data.

    Attributes
    ----------
    seq:
        Global send-order sequence number (1-based within a stream).
    block_id:
        Which signature-amortization block this packet belongs to.
    payload:
        Application data.
    carried:
        ``(target_seq, hash)`` pairs: the hashes of other packets this
        packet carries — the out-edges of its dependence-graph vertex.
    signature:
        Present only on ``P_sign`` (and on every packet for sign-each /
        Wong–Lam style schemes).
    extra:
        Scheme-specific opaque bytes, covered by :meth:`auth_bytes`.
    send_time:
        Simulation transmit timestamp in seconds.
    """

    seq: int
    block_id: int
    payload: bytes
    carried: Tuple[Tuple[int, bytes], ...] = ()
    signature: Optional[bytes] = None
    extra: bytes = b""
    send_time: float = 0.0

    def __post_init__(self) -> None:
        if self.seq < 1:
            raise SimulationError(f"sequence numbers are 1-based, got {self.seq}")
        if self.seq > _U32_MAX:
            raise PacketFormatError(
                f"sequence {self.seq} exceeds the 32-bit wire field")
        if self.block_id < 0:
            raise SimulationError(f"negative block id: {self.block_id}")
        if self.block_id > _U32_MAX:
            raise PacketFormatError(
                f"block id {self.block_id} exceeds the 32-bit wire field")
        if len(self.payload) > MAX_BLOB_BYTES:
            raise PacketFormatError(
                f"payload of {len(self.payload)} bytes exceeds the wire cap")
        if len(self.extra) > MAX_BLOB_BYTES:
            raise PacketFormatError(
                f"extra blob of {len(self.extra)} bytes exceeds the wire cap")
        if self.signature is not None and len(self.signature) > MAX_BLOB_BYTES:
            raise PacketFormatError(
                f"signature of {len(self.signature)} bytes exceeds the wire cap")
        if len(self.carried) > MAX_CARRIED_HASHES:
            raise PacketFormatError(
                f"{len(self.carried)} carried hashes exceed the cap "
                f"{MAX_CARRIED_HASHES}")
        if not math.isfinite(self.send_time):
            raise PacketFormatError(
                f"send time must be finite, got {self.send_time}")
        seen = set()
        for target, digest in self.carried:
            if target < 1:
                raise SimulationError(f"carried hash for invalid seq {target}")
            if target > _U32_MAX:
                raise PacketFormatError(
                    f"carried seq {target} exceeds the 32-bit wire field")
            if target == self.seq:
                raise SimulationError("packet cannot carry its own hash")
            if target in seen:
                raise SimulationError(f"duplicate carried hash for seq {target}")
            if not digest:
                raise SimulationError(f"empty hash carried for seq {target}")
            if len(digest) > MAX_BLOB_BYTES:
                raise PacketFormatError(
                    f"carried hash of {len(digest)} bytes exceeds the wire cap")
            seen.add(target)

    # ------------------------------------------------------------------
    # Canonical encodings
    # ------------------------------------------------------------------

    def auth_bytes(self) -> bytes:
        """Injective encoding of all authenticated fields.

        Hashes of this packet and signatures over it are computed on
        this string.  The signature field itself is excluded (it cannot
        sign itself); everything else — including the carried hashes —
        is covered so that authenticating a packet authenticates the
        hashes it carries.
        """
        parts = [
            struct.pack(">II", self.seq, self.block_id),
            _encode_blob(self.payload),
            _U32.pack(len(self.carried)),
        ]
        for target, digest in self.carried:
            parts.append(_U32.pack(target))
            parts.append(_encode_blob(digest))
        parts.append(_encode_blob(self.extra))
        return b"".join(parts)

    def to_wire(self) -> bytes:
        """Full serialization, signature included."""
        signature = self.signature if self.signature is not None else b""
        return (
            _HEADER.pack(self.seq, self.block_id, 0, self.send_time,
                         1 if self.signature is not None else 0)
            + self.auth_bytes()
            + _encode_blob(signature)
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def overhead_bytes(self) -> int:
        """Authentication bytes carried: hashes + signature + extra.

        This is the per-packet quantity the paper's Eq. 3 averages.
        """
        total = sum(len(digest) for _, digest in self.carried)
        total += 4 * len(self.carried)  # target-seq fields
        if self.signature is not None:
            total += len(self.signature)
        total += len(self.extra)
        return total

    @property
    def is_signature_packet(self) -> bool:
        """Whether this packet carries a digital signature."""
        return self.signature is not None

    def with_send_time(self, when: float) -> "Packet":
        """A copy stamped with a transmit time."""
        return replace(self, send_time=when)


def _take(data: bytes, offset: int, count: int, what: str):
    """Slice ``count`` bytes at ``offset`` or raise the truncation error."""
    end = offset + count
    if end > len(data):
        raise TruncatedPacketError(
            f"truncated {what}: need {count} bytes at offset {offset}, "
            f"buffer holds {len(data) - offset}")
    return bytes(data[offset:end]), end


def _take_u32(data: bytes, offset: int, what: str):
    raw, end = _take(data, offset, 4, what)
    return _U32.unpack(raw)[0], end


def _take_blob(data: bytes, offset: int, what: str):
    length, offset = _take_u32(data, offset, f"{what} length")
    if length > MAX_BLOB_BYTES:
        raise OverlongBlobError(
            f"{what} declares {length} bytes, cap is {MAX_BLOB_BYTES}")
    return _take(data, offset, length, what)


def packet_from_wire(data: bytes) -> Packet:
    """Strictly parse a packet serialized by :meth:`Packet.to_wire`.

    The decoder is *canonical*: it accepts exactly the buffers
    :meth:`Packet.to_wire` can produce.  Reserved bits must be zero,
    the signature flag must be 0 or 1 (and 0 implies an empty
    signature blob), every declared length is capped **before** any
    allocation or loop, and no trailing bytes may remain — so a
    successful decode re-encodes to the identical input, and random
    corruption cannot alias one valid packet into another layout.

    Raises
    ------
    WireDecodeError
        With a taxonomy subtype: :class:`TruncatedPacketError`,
        :class:`HeaderFormatError`, :class:`OverlongBlobError` or
        :class:`TrailingBytesError`.  All are :class:`SimulationError`
        subclasses, so older ``except SimulationError`` sites still
        catch them.
    """
    header, offset = _take(data, 0, _HEADER.size, "packet header")
    seq, block_id, reserved, send_time, has_sig = _HEADER.unpack(header)
    if reserved != 0:
        raise HeaderFormatError(f"nonzero reserved field: {reserved:#x}")
    if has_sig not in (0, 1):
        raise HeaderFormatError(f"signature flag must be 0 or 1, got {has_sig}")
    if not math.isfinite(send_time):
        raise HeaderFormatError(f"non-finite send time: {send_time}")
    # The auth_bytes section repeats seq/block_id for injectivity.
    body_ids, offset = _take(data, offset, 8, "body sequence fields")
    seq2, block2 = struct.unpack(">II", body_ids)
    if (seq2, block2) != (seq, block_id):
        raise HeaderFormatError("header/body sequence mismatch")
    payload, offset = _take_blob(data, offset, "payload")
    carried_count, offset = _take_u32(data, offset, "carried-hash count")
    if carried_count > MAX_CARRIED_HASHES:
        raise OverlongBlobError(
            f"{carried_count} carried hashes declared, cap is "
            f"{MAX_CARRIED_HASHES}")
    carried = []
    for index in range(carried_count):
        target, offset = _take_u32(data, offset,
                                   f"carried target #{index + 1}")
        digest, offset = _take_blob(data, offset,
                                    f"carried hash #{index + 1}")
        carried.append((target, digest))
    extra, offset = _take_blob(data, offset, "extra blob")
    signature, offset = _take_blob(data, offset, "signature")
    if has_sig == 0 and signature:
        raise HeaderFormatError(
            f"{len(signature)} signature bytes present but the signature "
            f"flag is clear")
    if offset != len(data):
        raise TrailingBytesError(
            f"{len(data) - offset} trailing bytes after the signature blob")
    try:
        return Packet(
            seq=seq,
            block_id=block_id,
            payload=payload,
            carried=tuple(carried),
            signature=signature if has_sig else None,
            extra=extra,
            send_time=send_time,
        )
    except WireDecodeError:
        raise
    except SimulationError as exc:
        # Field validation (zero seq, duplicate carried targets, ...)
        # folded into the decode taxonomy: a buffer that cannot yield a
        # valid Packet is undecodable, whatever the reason.
        raise HeaderFormatError(f"invalid packet fields: {exc}") from exc
