"""Unit tests for the from-scratch RSA implementation."""

import pytest

from repro.crypto.rsa import (
    RsaPrivateKey,
    RsaPublicKey,
    generate_keypair,
    is_probable_prime,
)
from repro.exceptions import CryptoError

# Fixed 256-bit primes for fast deterministic key construction.
P_256 = 0xFA651CFF40EA484A266434DEC86887DCB1720D988394C2E916C6B67063409313
Q_256 = 0xF9FB86AB12AB0758D3DD15B9B6296A4FDD68120837252BDB8CEFE94CD0926DF1


def _is_prime_slow(n):
    if n < 2:
        return False
    d = 2
    while d * d <= n:
        if n % d == 0:
            return False
        d += 1
    return True


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(512)


class TestMillerRabin:
    def test_agrees_with_trial_division_small(self):
        for n in range(2, 2000):
            assert is_probable_prime(n) == _is_prime_slow(n), n

    def test_known_large_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert is_probable_prime(2 ** 127 - 1)

    def test_known_large_composite(self):
        assert not is_probable_prime((2 ** 127 - 1) * 3)

    def test_carmichael_number(self):
        # 561 = 3 * 11 * 17 fools Fermat but not Miller-Rabin.
        assert not is_probable_prime(561)

    def test_edge_values(self):
        assert not is_probable_prime(0)
        assert not is_probable_prime(1)
        assert not is_probable_prime(-7)


class TestKeyGeneration:
    def test_modulus_size(self, keypair):
        assert 511 <= keypair.n.bit_length() <= 512

    def test_key_identity(self, keypair):
        # d*e == 1 mod phi(n) implies m^(ed) == m for random m.
        m = 0x1234567890ABCDEF
        assert pow(pow(m, keypair.e, keypair.n), keypair.d, keypair.n) == m

    def test_rejects_tiny_modulus(self):
        with pytest.raises(CryptoError):
            generate_keypair(128)

    def test_rejects_even_exponent(self):
        with pytest.raises(CryptoError):
            generate_keypair(512, e=4)

    def test_rejects_equal_primes(self):
        with pytest.raises(CryptoError):
            generate_keypair(512, _primes=(P_256, P_256))

    def test_fixed_primes_deterministic(self):
        key1 = generate_keypair(512, _primes=(P_256, Q_256))
        key2 = generate_keypair(512, _primes=(P_256, Q_256))
        assert key1 == key2


class TestSignVerify:
    def test_roundtrip(self, keypair):
        signature = keypair.sign(b"message")
        assert keypair.public_key.verify(b"message", signature)

    def test_signature_length(self, keypair):
        assert len(keypair.sign(b"m")) == keypair.size_bytes

    def test_deterministic_signatures(self, keypair):
        assert keypair.sign(b"m") == keypair.sign(b"m")

    def test_rejects_wrong_message(self, keypair):
        signature = keypair.sign(b"message")
        assert not keypair.public_key.verify(b"other", signature)

    def test_rejects_bitflipped_signature(self, keypair):
        signature = bytearray(keypair.sign(b"message"))
        signature[5] ^= 0x40
        assert not keypair.public_key.verify(b"message", bytes(signature))

    def test_rejects_wrong_length_signature(self, keypair):
        signature = keypair.sign(b"message")
        assert not keypair.public_key.verify(b"message", signature[:-1])
        assert not keypair.public_key.verify(b"message", signature + b"\x00")

    def test_rejects_signature_ge_modulus(self, keypair):
        too_big = (keypair.n).to_bytes(keypair.size_bytes, "big")
        assert not keypair.public_key.verify(b"message", too_big)

    def test_cross_key_rejection(self, keypair):
        other = generate_keypair(512, _primes=(P_256, Q_256))
        signature = other.sign(b"message")
        if other.size_bytes == keypair.size_bytes:
            assert not keypair.public_key.verify(b"message", signature)

    def test_empty_message(self, keypair):
        signature = keypair.sign(b"")
        assert keypair.public_key.verify(b"", signature)

    def test_large_message(self, keypair):
        message = b"x" * 100_000
        assert keypair.public_key.verify(message, keypair.sign(message))
