"""Unit tests for MACs and PRFs."""

import hashlib
import hmac as std_hmac

import pytest

from repro.crypto.hashing import sha256
from repro.crypto.mac import Mac, Prf, constant_time_equal, hmac_sha256, random_key
from repro.exceptions import CryptoError


class TestMac:
    def test_tag_matches_stdlib_hmac(self):
        key, message = b"k" * 16, b"the message"
        expected = std_hmac.new(key, message, hashlib.sha256).digest()
        assert hmac_sha256.tag(key, message) == expected

    def test_verify_roundtrip(self):
        key = random_key()
        tag = hmac_sha256.tag(key, b"data")
        assert hmac_sha256.verify(key, b"data", tag)

    def test_verify_rejects_wrong_message(self):
        key = random_key()
        tag = hmac_sha256.tag(key, b"data")
        assert not hmac_sha256.verify(key, b"data2", tag)

    def test_verify_rejects_wrong_key(self):
        tag = hmac_sha256.tag(b"key-one", b"data")
        assert not hmac_sha256.verify(b"key-two", b"data", tag)

    def test_verify_rejects_wrong_length_tag(self):
        key = random_key()
        tag = hmac_sha256.tag(key, b"data")
        assert not hmac_sha256.verify(key, b"data", tag[:-1])

    def test_truncated_mac(self):
        short = Mac(sha256.truncated(10))
        key = random_key()
        tag = short.tag(key, b"data")
        assert len(tag) == 10
        assert short.verify(key, b"data", tag)

    def test_empty_key_rejected(self):
        with pytest.raises(CryptoError):
            hmac_sha256.tag(b"", b"data")


class TestPrf:
    def test_deterministic(self):
        prf = Prf(label=b"test")
        assert prf.apply(b"key") == prf.apply(b"key")

    def test_labels_domain_separate(self):
        assert Prf(b"a").apply(b"key") != Prf(b"b").apply(b"key")

    def test_output_size(self):
        assert len(Prf(b"x", output_size=16).apply(b"key")) == 16
        assert len(Prf(b"x", output_size=32).apply(b"key")) == 32

    def test_iterate_composes(self):
        prf = Prf(b"chain")
        once = prf.apply(b"seed")
        assert prf.iterate(b"seed", 2) == prf.apply(once)

    def test_iterate_zero_is_identity(self):
        prf = Prf(b"chain")
        assert prf.iterate(b"seed", 0) == b"seed"

    def test_iterate_negative_rejected(self):
        with pytest.raises(CryptoError):
            Prf(b"chain").iterate(b"seed", -1)

    def test_empty_key_rejected(self):
        with pytest.raises(CryptoError):
            Prf(b"chain").apply(b"")


class TestHelpers:
    def test_random_key_length(self):
        assert len(random_key(24)) == 24

    def test_random_key_distinct(self):
        assert random_key() != random_key()

    def test_random_key_size_validation(self):
        with pytest.raises(CryptoError):
            random_key(0)

    def test_constant_time_equal(self):
        assert constant_time_equal(b"abc", b"abc")
        assert not constant_time_equal(b"abc", b"abd")
