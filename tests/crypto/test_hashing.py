"""Unit tests for the hash-function registry."""

import hashlib

import pytest

from repro.crypto.hashing import (
    HashFunction,
    available_hashes,
    get_hash,
    register_hash,
    sha1,
    sha256,
    truncated,
)
from repro.exceptions import CryptoError


class TestDigest:
    def test_sha256_matches_hashlib(self):
        data = b"multicast authentication"
        assert sha256.digest(data) == hashlib.sha256(data).digest()

    def test_sha1_matches_hashlib(self):
        data = b"dependence graph"
        assert sha1.digest(data) == hashlib.sha1(data).digest()

    def test_hexdigest(self):
        assert sha256.hexdigest(b"x") == hashlib.sha256(b"x").hexdigest()

    def test_digest_size_attributes(self):
        assert sha256.digest_size == 32
        assert sha1.digest_size == 20

    def test_empty_input(self):
        assert sha256.digest(b"") == hashlib.sha256(b"").digest()


class TestChain:
    def test_chain_equals_concatenation(self):
        parts = [b"a", b"bb", b"ccc"]
        assert sha256.chain(parts) == sha256.digest(b"abbccc")

    def test_chain_of_nothing(self):
        assert sha256.chain([]) == sha256.digest(b"")

    def test_chain_respects_truncation(self):
        short = sha256.truncated(10)
        assert short.chain([b"a", b"b"]) == sha256.digest(b"ab")[:10]


class TestTruncation:
    def test_truncated_digest_is_prefix(self):
        short = sha256.truncated(10)
        full = sha256.digest(b"payload")
        assert short.digest(b"payload") == full[:10]
        assert short.digest_size == 10

    def test_truncate_to_full_size_returns_same_object(self):
        assert sha256.truncated(32) is sha256

    def test_truncate_out_of_range(self):
        with pytest.raises(CryptoError):
            sha256.truncated(0)
        with pytest.raises(CryptoError):
            sha256.truncated(33)

    def test_truncated_name(self):
        assert sha256.truncated(10).name == "sha256/10"

    def test_helper_function(self):
        assert truncated("sha256", 12).digest_size == 12


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_hash("sha256") is sha256

    def test_lookup_truncated_on_the_fly(self):
        fn = get_hash("sha256/10")
        assert fn.digest_size == 10
        # Second lookup returns the cached registration.
        assert get_hash("sha256/10") is fn

    def test_unknown_name(self):
        with pytest.raises(CryptoError):
            get_hash("keccak-foo")

    def test_malformed_truncation_suffix(self):
        with pytest.raises(CryptoError):
            get_hash("sha256/banana")

    def test_available_hashes_reports_sizes(self):
        table = available_hashes()
        assert table["sha256"] == 32
        assert table["sha1"] == 20

    def test_register_custom(self):
        custom = HashFunction("sha256d", 32,
                              lambda: hashlib.sha256(b"prefix"))
        register_hash(custom)
        assert get_hash("sha256d") is custom
