"""Unit tests for GF(2^8) arithmetic."""

import pytest

from repro.crypto.gf256 import EXP, LOG, gf_add, gf_div, gf_inv, gf_mul, gf_pow
from repro.exceptions import CryptoError


class TestFieldAxioms:
    def test_aes_test_vector(self):
        # Classic AES example: 0x57 * 0x83 = 0xC1.
        assert gf_mul(0x57, 0x83) == 0xC1

    def test_multiplicative_identity(self):
        for a in range(256):
            assert gf_mul(a, 1) == a

    def test_zero_annihilates(self):
        for a in range(0, 256, 17):
            assert gf_mul(a, 0) == 0

    def test_every_nonzero_invertible(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1

    def test_commutativity_sample(self):
        for a in range(1, 256, 7):
            for b in range(1, 256, 11):
                assert gf_mul(a, b) == gf_mul(b, a)

    def test_distributivity_sample(self):
        for a in range(1, 256, 31):
            for b in range(1, 256, 29):
                for c in range(1, 256, 37):
                    left = gf_mul(a, gf_add(b, c))
                    right = gf_add(gf_mul(a, b), gf_mul(a, c))
                    assert left == right

    def test_addition_is_xor(self):
        assert gf_add(0b1010, 0b0110) == 0b1100
        for a in range(0, 256, 13):
            assert gf_add(a, a) == 0  # characteristic 2


class TestTables:
    def test_log_exp_inverse(self):
        for a in range(1, 256):
            assert EXP[LOG[a]] == a

    def test_exp_periodic(self):
        for i in range(255):
            assert EXP[i] == EXP[i + 255]

    def test_generator_order(self):
        # 0x03 generates the full multiplicative group.
        assert sorted(EXP[:255]) == list(range(1, 256))


class TestDivPow:
    def test_division_inverts_multiplication(self):
        for a in range(1, 256, 5):
            for b in range(1, 256, 23):
                assert gf_div(gf_mul(a, b), b) == a

    def test_zero_division_raises(self):
        with pytest.raises(CryptoError):
            gf_div(5, 0)
        with pytest.raises(CryptoError):
            gf_inv(0)

    def test_zero_numerator(self):
        assert gf_div(0, 7) == 0

    def test_pow(self):
        assert gf_pow(2, 0) == 1
        assert gf_pow(2, 1) == 2
        assert gf_pow(2, 8) == gf_mul(gf_pow(2, 4), gf_pow(2, 4))
        assert gf_pow(0, 5) == 0
        with pytest.raises(CryptoError):
            gf_pow(2, -1)
