"""Unit tests for TESLA one-way key chains."""

import pytest

from repro.crypto.keychain import KeyChain, KeyChainCommitment
from repro.exceptions import CryptoError


@pytest.fixture
def chain():
    return KeyChain(16, seed=b"\x07" * 16)


class TestKeyChain:
    def test_deterministic_from_seed(self):
        a = KeyChain(8, seed=b"s" * 16)
        b = KeyChain(8, seed=b"s" * 16)
        assert [a.key(i) for i in range(9)] == [b.key(i) for i in range(9)]

    def test_chain_relation(self, chain):
        # K_{i-1} = F(K_i) for every i.
        for i in range(1, chain.length + 1):
            assert KeyChain.walk_back(chain.key(i), 1) == chain.key(i - 1)

    def test_walk_back_many(self, chain):
        assert KeyChain.walk_back(chain.key(10), 10) == chain.commitment

    def test_commitment_is_key_zero(self, chain):
        assert chain.commitment == chain.key(0)

    def test_mac_keys_differ_from_chain_keys(self, chain):
        for i in range(1, chain.length + 1):
            assert chain.mac_key(i) != chain.key(i)

    def test_mac_key_derivation_matches_receiver_side(self, chain):
        assert chain.mac_key(5) == KeyChain.derive_mac_key(chain.key(5))

    def test_keys_all_distinct(self, chain):
        keys = [chain.key(i) for i in range(chain.length + 1)]
        assert len(set(keys)) == len(keys)

    def test_index_bounds(self, chain):
        with pytest.raises(CryptoError):
            chain.key(-1)
        with pytest.raises(CryptoError):
            chain.key(chain.length + 1)
        with pytest.raises(CryptoError):
            chain.mac_key(0)

    def test_length_validation(self):
        with pytest.raises(CryptoError):
            KeyChain(0)


class TestCommitmentAnchor:
    def test_accepts_genuine_later_key(self, chain):
        anchor = KeyChainCommitment(0, chain.commitment)
        assert anchor.authenticate(5, chain.key(5))
        assert anchor.index == 5

    def test_ratchets_forward(self, chain):
        anchor = KeyChainCommitment(0, chain.commitment)
        anchor.authenticate(3, chain.key(3))
        assert anchor.authenticate(9, chain.key(9))
        assert anchor.index == 9

    def test_accepts_earlier_key_without_ratchet(self, chain):
        anchor = KeyChainCommitment(0, chain.commitment)
        anchor.authenticate(8, chain.key(8))
        assert anchor.authenticate(4, chain.key(4))
        assert anchor.index == 8  # no backwards ratchet

    def test_rejects_forged_key(self, chain):
        anchor = KeyChainCommitment(0, chain.commitment)
        assert not anchor.authenticate(5, b"\x00" * 16)
        assert anchor.index == 0  # state unchanged on failure

    def test_rejects_key_at_wrong_index(self, chain):
        anchor = KeyChainCommitment(0, chain.commitment)
        assert not anchor.authenticate(6, chain.key(5))

    def test_rejects_earlier_forgery(self, chain):
        anchor = KeyChainCommitment(0, chain.commitment)
        anchor.authenticate(8, chain.key(8))
        assert not anchor.authenticate(4, chain.key(5))
