"""Differential tests: batch signing vs the code it replaces.

Two claims, both byte-level:

* a batch-signed live session is *indistinguishable on the receive
  side* from a per-block-signed session on the same seed — identical
  per-receiver transcripts (accepted digests, verdicts, event times),
  identical delivery counts, zero forged acceptances in both; and
* the batch attachment encoding is canonical and brittle in exactly
  the right way — every single-bit mutation of an attachment (proof
  path, side flags, leaf index, root signature, length fields) either
  fails the strict decode or fails verification.  No mutation may
  verify.
"""

import pytest

from repro.crypto.batch import (
    BatchSigner,
    BatchVerifier,
    batch_attachment_size,
    decode_batch_attachment,
    encode_batch_attachment,
)
from repro.crypto.hashing import sha256
from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import CryptoError
from repro.serve.service import ServeConfig, run_live_session

BASE = dict(receivers=4, blocks=8, block_size=6, payload_size=16,
            loss_schedule=((0, 0.1),), seed=23, adaptive=False)


def _run(**overrides):
    config = ServeConfig(**{**BASE, **overrides})
    return run_live_session(config)


class TestSessionEquivalence:
    def test_batch_matches_per_block_byte_for_byte(self):
        per_block = _run()
        batched = _run(batch_size=4)
        assert batched.transcripts == per_block.transcripts
        assert batched.delivered == per_block.delivered
        assert per_block.forged_accepted == 0
        assert batched.forged_accepted == 0

    @pytest.mark.parametrize("attack", ["pollution", "dos"])
    def test_batch_matches_per_block_under_attack(self, attack):
        per_block = _run(attack=attack)
        batched = _run(attack=attack, batch_size=8)
        assert batched.transcripts == per_block.transcripts
        assert batched.delivered == per_block.delivered
        assert per_block.forged_accepted == 0
        assert batched.forged_accepted == 0

    def test_flush_deadline_does_not_change_verdicts(self):
        per_block = _run()
        deadline = _run(batch_size=3, flush_deadline=0.5)
        assert deadline.transcripts == per_block.transcripts

    def test_batch_runs_are_repeatable(self):
        first = _run(batch_size=4, attack="pollution")
        second = _run(batch_size=4, attack="pollution")
        assert first.transcripts == second.transcripts

    def test_partial_final_batch_flushes(self):
        # 8 blocks with batch 5: the last flush covers only 3 blocks,
        # driven by send_final's auto-flush.
        batched = _run(batch_size=5)
        per_block = _run()
        assert batched.transcripts == per_block.transcripts


class TestMutationRejection:
    """Any single-bit mutation of an attachment must be rejected."""

    def _attachment(self, leaf_count=5, index=2):
        signer = HmacStubSigner(key=b"mutation-suite", signature_size=64)
        batch = BatchSigner(signer, sha256)
        messages = [b"block-%d" % i for i in range(leaf_count)]
        for message in messages:
            batch.append(message)
        attachments = batch.flush()
        return signer, messages[index], attachments[index]

    def test_pristine_attachment_verifies(self):
        signer, message, blob = self._attachment()
        verifier = BatchVerifier(signer, sha256)
        assert verifier.verify(message, blob)

    def test_every_single_bit_mutation_is_rejected(self):
        signer, message, blob = self._attachment()
        verifier = BatchVerifier(signer, sha256)
        assert verifier.verify(message, blob)
        accepted = []
        for bit in range(len(blob) * 8):
            mutated = bytearray(blob)
            mutated[bit // 8] ^= 1 << (bit % 8)
            if verifier.verify(message, bytes(mutated)):
                accepted.append(bit)
        assert accepted == []

    def test_wrong_message_is_rejected(self):
        signer, _message, blob = self._attachment()
        verifier = BatchVerifier(signer, sha256)
        assert not verifier.verify(b"some other block", blob)

    def test_decode_roundtrip_is_canonical(self):
        _signer, _message, blob = self._attachment()
        attachment = decode_batch_attachment(blob)
        assert encode_batch_attachment(attachment) == blob

    def test_structurally_inconsistent_proof_cannot_encode(self):
        _signer, _message, blob = self._attachment(leaf_count=5, index=2)
        attachment = decode_batch_attachment(blob)
        from dataclasses import replace
        with pytest.raises(CryptoError):
            encode_batch_attachment(replace(attachment, leaf_index=3))

    def test_nominal_size_matches_encoding(self):
        signer, _message, blob = self._attachment(leaf_count=8, index=3)
        assert len(blob) == batch_attachment_size(
            8, sha256.digest_size, signer.signature_size)


class TestVerifierCache:
    def test_one_root_verification_per_batch(self):
        signer = HmacStubSigner(key=b"cache-suite", signature_size=64)
        batch = BatchSigner(signer, sha256)
        messages = [b"cached-%d" % i for i in range(8)]
        for message in messages:
            batch.append(message)
        attachments = batch.flush()
        verifier = BatchVerifier(signer, sha256)
        for message, blob in zip(messages, attachments):
            assert verifier.verify(message, blob)
        assert verifier.root_verifies == 1
        assert verifier.cache_hits == len(messages) - 1

    def test_tampered_signature_does_not_poison_cache(self):
        signer = HmacStubSigner(key=b"poison-suite", signature_size=64)
        batch = BatchSigner(signer, sha256)
        batch.append(b"victim")
        blob = batch.flush()[0]
        tampered = bytearray(blob)
        tampered[-1] ^= 0xFF  # flip in the root signature
        verifier = BatchVerifier(signer, sha256)
        assert not verifier.verify(b"victim", bytes(tampered))
        assert verifier.verify(b"victim", blob)

    def test_passthrough_plain_signatures(self):
        signer = HmacStubSigner(key=b"plain-suite", signature_size=64)
        verifier = BatchVerifier(signer, sha256)
        signature = signer.sign(b"plain block")
        assert verifier.verify(b"plain block", signature)
        assert not verifier.verify(b"other block", signature)
        assert verifier.passthrough_verifies == 2

    def test_sign_is_refused(self):
        verifier = BatchVerifier(
            HmacStubSigner(key=b"x", signature_size=64), sha256)
        with pytest.raises(CryptoError):
            verifier.sign(b"nope")
