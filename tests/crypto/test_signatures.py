"""Unit tests for the Signer protocol adapters."""

import pytest

from repro.crypto.signatures import (
    HmacStubSigner,
    LamportSigner,
    RsaSigner,
    Signer,
    default_signer,
)
from repro.exceptions import CryptoError


class TestHmacStubSigner:
    def test_roundtrip(self):
        signer = HmacStubSigner(key=b"k")
        signature = signer.sign(b"m")
        assert signer.verify(b"m", signature)

    def test_signature_size_padding(self):
        signer = HmacStubSigner(key=b"k", signature_size=128)
        assert len(signer.sign(b"m")) == 128

    def test_signature_truncation(self):
        signer = HmacStubSigner(key=b"k", signature_size=16)
        assert len(signer.sign(b"m")) == 16
        assert signer.verify(b"m", signer.sign(b"m"))

    def test_rejects_wrong_message(self):
        signer = HmacStubSigner(key=b"k")
        assert not signer.verify(b"other", signer.sign(b"m"))

    def test_rejects_wrong_length(self):
        signer = HmacStubSigner(key=b"k")
        assert not signer.verify(b"m", signer.sign(b"m")[:-1])

    def test_key_separation(self):
        a = HmacStubSigner(key=b"a")
        b = HmacStubSigner(key=b"b")
        assert not b.verify(b"m", a.sign(b"m"))

    def test_satisfies_protocol(self):
        assert isinstance(HmacStubSigner(key=b"k"), Signer)


class TestRsaSigner:
    @pytest.fixture(scope="class")
    def signer(self):
        return RsaSigner.generate(512)

    def test_roundtrip(self, signer):
        assert signer.verify(b"m", signer.sign(b"m"))

    def test_signature_size_matches_modulus(self, signer):
        assert signer.signature_size == signer.private_key.size_bytes

    def test_satisfies_protocol(self, signer):
        assert isinstance(signer, Signer)


class TestLamportSigner:
    def test_roundtrip(self):
        signer = LamportSigner.generate(seed=b"t")
        signature = signer.sign(b"m")
        assert signer.verify(b"m", signature)

    def test_one_time_enforcement(self):
        signer = LamportSigner.generate(seed=b"t")
        signer.sign(b"first")
        with pytest.raises(CryptoError):
            signer.sign(b"second")

    def test_signature_size(self):
        signer = LamportSigner.generate(seed=b"t")
        assert signer.signature_size == 256 * 32


class TestDefaultSigner:
    def test_fast_default_is_stub(self):
        assert default_signer().name == "hmac-stub"

    def test_fast_default_roundtrip(self):
        signer = default_signer()
        assert signer.verify(b"m", signer.sign(b"m"))
