"""Unit tests for Lamport one-time signatures."""

import pytest

from repro.crypto.lamport import LamportKeyPair


@pytest.fixture(scope="module")
def keypair():
    return LamportKeyPair.generate(seed=b"fixed-test-seed")


class TestGeneration:
    def test_key_shape(self, keypair):
        assert len(keypair.private_values) == 256
        assert len(keypair.public_values) == 256
        assert all(len(pair) == 2 for pair in keypair.private_values)

    def test_deterministic_from_seed(self):
        a = LamportKeyPair.generate(seed=b"s")
        b = LamportKeyPair.generate(seed=b"s")
        assert a.public_values == b.public_values

    def test_distinct_without_seed(self):
        assert (LamportKeyPair.generate().public_values
                != LamportKeyPair.generate().public_values)

    def test_signature_size(self, keypair):
        assert keypair.signature_size == 256 * 32

    def test_fingerprint_stable(self, keypair):
        assert keypair.public_fingerprint() == keypair.public_fingerprint()
        assert len(keypair.public_fingerprint()) == 32


class TestSignVerify:
    def test_roundtrip(self, keypair):
        signature = keypair.sign(b"message")
        assert keypair.verify(b"message", signature)

    def test_signature_has_declared_size(self, keypair):
        assert len(keypair.sign(b"m")) == keypair.signature_size

    def test_rejects_other_message(self, keypair):
        signature = keypair.sign(b"message")
        assert not keypair.verify(b"other message", signature)

    def test_rejects_tampered_value(self, keypair):
        signature = bytearray(keypair.sign(b"message"))
        signature[0] ^= 1
        assert not keypair.verify(b"message", bytes(signature))

    def test_rejects_wrong_size(self, keypair):
        signature = keypair.sign(b"message")
        assert not keypair.verify(b"message", signature[:-1])

    def test_rejects_cross_key(self, keypair):
        other = LamportKeyPair.generate(seed=b"different")
        signature = other.sign(b"message")
        assert not keypair.verify(b"message", signature)
