"""Unit tests for Merkle trees (the Wong-Lam substrate)."""

import math

import pytest

from repro.crypto.hashing import sha256, truncated
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.exceptions import CryptoError


def _leaves(count):
    return [b"leaf-%d" % i for i in range(count)]


class TestConstruction:
    def test_single_leaf(self):
        tree = MerkleTree(_leaves(1))
        assert tree.leaf_count == 1
        assert tree.height == 0

    def test_rejects_empty(self):
        with pytest.raises(CryptoError):
            MerkleTree([])

    @pytest.mark.parametrize("count", [2, 3, 5, 8, 13, 16, 33])
    def test_height_is_log2(self, count):
        tree = MerkleTree(_leaves(count))
        assert tree.height == math.ceil(math.log2(count))

    def test_root_changes_with_any_leaf(self):
        base = MerkleTree(_leaves(8)).root
        for i in range(8):
            leaves = _leaves(8)
            leaves[i] = b"tampered"
            assert MerkleTree(leaves).root != base

    def test_root_depends_on_leaf_order(self):
        leaves = _leaves(4)
        swapped = [leaves[1], leaves[0]] + leaves[2:]
        assert MerkleTree(leaves).root != MerkleTree(swapped).root

    def test_leaf_node_domain_separation(self):
        # A single leaf equal to an interior encoding must not produce
        # the same root as the two-leaf tree it imitates.
        two = MerkleTree([b"a", b"b"])
        h = sha256
        fake_leaf = b"\x01" + h.digest(b"\x00a") + h.digest(b"\x00b")
        assert MerkleTree([fake_leaf]).root != two.root


class TestProofs:
    @pytest.mark.parametrize("count", [1, 2, 3, 7, 8, 9, 20])
    def test_every_leaf_proves(self, count):
        leaves = _leaves(count)
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            proof = tree.proof(index)
            assert tree.verify(leaf, proof, tree.root)

    def test_static_verification(self):
        leaves = _leaves(6)
        tree = MerkleTree(leaves)
        proof = tree.proof(3)
        assert MerkleTree.verify_static(leaves[3], proof, tree.root)

    def test_wrong_leaf_rejected(self):
        tree = MerkleTree(_leaves(8))
        proof = tree.proof(2)
        assert not tree.verify(b"not the leaf", proof, tree.root)

    def test_wrong_root_rejected(self):
        leaves = _leaves(8)
        tree = MerkleTree(leaves)
        proof = tree.proof(2)
        assert not tree.verify(leaves[2], proof, b"\x00" * 32)

    def test_proof_for_wrong_position_rejected(self):
        leaves = _leaves(8)
        tree = MerkleTree(leaves)
        assert not tree.verify(leaves[2], tree.proof(5), tree.root)

    def test_out_of_range_proof_request(self):
        tree = MerkleTree(_leaves(4))
        with pytest.raises(CryptoError):
            tree.proof(4)
        with pytest.raises(CryptoError):
            tree.proof(-1)

    def test_proof_size(self):
        tree = MerkleTree(_leaves(16))
        proof = tree.proof(0)
        assert len(proof) == 4
        assert proof.size_bytes == 4 * 32

    def test_truncated_hash_tree(self):
        short = truncated("sha256", 10)
        leaves = _leaves(8)
        tree = MerkleTree(leaves, short)
        proof = tree.proof(5)
        assert proof.size_bytes == 3 * 10
        assert MerkleTree.verify_static(leaves[5], proof, tree.root, short)
