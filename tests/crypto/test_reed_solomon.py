"""Unit tests for Reed-Solomon erasure coding."""

import random

import pytest

from repro.crypto.reed_solomon import rs_decode, rs_encode
from repro.exceptions import CryptoError


class TestRoundtrip:
    def test_any_k_of_n(self):
        data = b"the authentication blob: hashes + signature"
        n, k = 10, 4
        shares = rs_encode(data, n, k)
        rng = random.Random(7)
        for _ in range(20):
            chosen = rng.sample(range(n), k)
            assert rs_decode([(i, shares[i]) for i in chosen], k) == data

    def test_k_equals_n(self):
        data = b"no redundancy at all"
        shares = rs_encode(data, 5, 5)
        assert rs_decode(list(enumerate(shares)), 5) == data

    def test_k_equals_one_is_replication(self):
        data = b"full replication"
        shares = rs_encode(data, 6, 1)
        for i, share in enumerate(shares):
            assert rs_decode([(i, share)], 1) == data

    def test_empty_payload(self):
        shares = rs_encode(b"", 4, 2)
        assert rs_decode([(0, shares[0]), (3, shares[3])], 2) == b""

    def test_binary_payload(self):
        data = bytes(range(256)) * 3
        shares = rs_encode(data, 8, 3)
        assert rs_decode([(7, shares[7]), (0, shares[0]),
                          (4, shares[4])], 3) == data

    def test_share_lengths_equal(self):
        shares = rs_encode(b"x" * 37, 9, 4)
        assert len({len(s) for s in shares}) == 1

    def test_extra_shares_ignored(self):
        data = b"more shares than needed"
        shares = rs_encode(data, 6, 3)
        assert rs_decode(list(enumerate(shares)), 3) == data

    def test_duplicate_indices_collapse(self):
        data = b"dup"
        shares = rs_encode(data, 5, 2)
        decoded = rs_decode([(1, shares[1]), (1, shares[1]),
                             (3, shares[3])], 2)
        assert decoded == data


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(CryptoError):
            rs_encode(b"x", 3, 0)
        with pytest.raises(CryptoError):
            rs_encode(b"x", 3, 4)
        with pytest.raises(CryptoError):
            rs_encode(b"x", 300, 2)

    def test_too_few_shares(self):
        shares = rs_encode(b"data", 5, 3)
        with pytest.raises(CryptoError):
            rs_decode([(0, shares[0]), (1, shares[1])], 3)

    def test_inconsistent_lengths(self):
        shares = rs_encode(b"data", 5, 2)
        with pytest.raises(CryptoError):
            rs_decode([(0, shares[0]), (1, shares[1][:-1])], 2)

    def test_invalid_index(self):
        shares = rs_encode(b"data", 5, 2)
        with pytest.raises(CryptoError):
            rs_decode([(0, shares[0]), (255, shares[1])], 2)

    def test_corrupt_share_does_not_roundtrip(self):
        """A flipped share yields garbage, not the original (integrity
        comes from the signature layered on top, as in SAIDA)."""
        data = b"genuine content here"
        shares = rs_encode(data, 5, 3)
        corrupted = bytearray(shares[1])
        corrupted[0] ^= 0xFF
        try:
            decoded = rs_decode([(0, shares[0]), (1, bytes(corrupted)),
                                 (2, shares[2])], 3)
        except CryptoError:
            return  # impossible length header: also acceptable
        assert decoded != data
