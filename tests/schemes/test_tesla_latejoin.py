"""TESLA late-join edges: boundary timing, forged keys, the guard.

TESLA is the one scheme where a late joiner has real catch-up work:
the serve layer's block boundaries give it the signed anchor
commitment for free, but the key chain must then be walked from the
first disclosed key back to that anchor.  These tests pin the three
edges the membership layer leans on:

* a packet arriving exactly at its key's disclosure boundary is
  rejected as unsafe — equality is the attacker's side of the
  security condition;
* a forged disclosure racing the joiner's first authentic key (the
  bootstrap-burst scenario) is rejected without poisoning the chain
  state, and genuine traffic still verifies afterwards;
* the chain-length guard stops beyond-commitment indices *before*
  walking the chain, counted separately in ``guard_rejections``.
"""

from dataclasses import replace

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.packets import Packet
from repro.schemes.tesla import (
    TeslaParameters,
    TeslaReceiver,
    TeslaSender,
    _decode_extra,
    _encode_extra,
)

INTERVAL = 0.05
LAG = 2
CHAIN = 16


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"tesla-latejoin")


def _session(signer, lag=LAG, chain=CHAIN):
    parameters = TeslaParameters(interval=INTERVAL, lag=lag,
                                 chain_length=chain)
    sender = TeslaSender(parameters, signer, seed=b"\x2a" * 16)
    receiver = TeslaReceiver(sender.bootstrap_packet(), signer)
    return sender, receiver


class TestDisclosureBoundary:
    def test_arrival_exactly_at_disclosure_is_unsafe(self, signer):
        sender, receiver = _session(signer)
        packet = sender.send(b"edge", 0.0)  # interval 1
        boundary = receiver.parameters.disclosure_time(1)
        receiver.receive(packet, boundary)
        # At t == T_disclose the key is public: the condition must
        # reject on equality, not only strictly after.
        assert receiver.verdicts[packet.seq].status == "unsafe"

    def test_arrival_just_before_disclosure_verifies(self, signer):
        sender, receiver = _session(signer)
        packet = sender.send(b"edge", 0.0)
        boundary = receiver.parameters.disclosure_time(1)
        receiver.receive(packet, boundary - 1e-9)
        assert receiver.verdicts[packet.seq].status == "pending"
        for disclosure in sender.flush_keys(1):
            receiver.receive(disclosure, disclosure.send_time + 1e-3)
        assert receiver.verdicts[packet.seq].status == "verified"

    def test_join_at_boundary_catches_up_the_whole_chain(self, signer):
        # The joiner misses intervals 1..6 entirely; its first packet
        # is interval 7, whose disclosure (K_5) must authenticate by
        # walking five steps back to the signed anchor commitment.
        sender, receiver = _session(signer)
        missed = [sender.send(b"m%d" % i, i * INTERVAL) for i in range(6)]
        assert missed  # streamed, never delivered to the late joiner
        post_join = [sender.send(b"p%d" % i, (6 + i) * INTERVAL)
                     for i in range(6)]
        for packet in post_join:
            receiver.receive(packet, packet.send_time + 1e-3)
        for disclosure in sender.flush_keys(12):
            receiver.receive(disclosure, disclosure.send_time + 1e-3)
        for packet in post_join:
            assert receiver.verdicts[packet.seq].status == "verified"
        assert receiver.rejected_keys == 0
        # The catch-up walked past the missed intervals' keys too.
        assert receiver._highest_key >= 10


class TestForgedKeyBeforeFirstAuthentic:
    def test_forged_disclosure_rejected_without_poisoning_state(
            self, signer):
        sender, receiver = _session(signer)
        # Interval 1: below the lag, so no key has been disclosed yet.
        data = sender.send(b"real", 0.0)
        receiver.receive(data, data.send_time + 1e-3)
        assert receiver._highest_key == 0
        # The burst forger races the join: a disclosure-only packet
        # for a real in-range index with attacker bytes, arriving
        # before the joiner has ever seen an authentic key.
        poisoned = Packet(
            seq=data.seq + 1000, block_id=0, payload=b"",
            extra=_encode_extra(0, b"\x00" * receiver.mac.tag_size,
                                3, b"\xee" * 16),
            send_time=data.send_time)
        receiver.receive(poisoned, data.send_time + 2e-3)
        assert receiver.rejected_keys == 1
        assert receiver.guard_rejections == 0
        assert receiver._highest_key == 0  # anchor untouched
        # Genuine disclosures afterwards still verify everything.
        for disclosure in sender.flush_keys(2):
            receiver.receive(disclosure, disclosure.send_time + 1e-3)
        assert receiver.verdicts[data.seq].status == "verified"


class TestChainLengthGuard:
    def test_beyond_commitment_index_counts_as_guard_rejection(
            self, signer):
        sender, receiver = _session(signer)
        packet = sender.send(b"x", 0.0)
        interval, tag, _index, _key = _decode(receiver, packet)
        hostile = replace(packet, extra=_encode_extra(
            interval, tag, CHAIN + 10_000, b"\xaa" * 16))
        receiver.receive(hostile, 1e-3)
        assert receiver.guard_rejections == 1
        assert receiver.rejected_keys == 1
        # The guard fired before any chain walk: no key state changed.
        assert receiver._highest_key == 0

    def test_in_range_forgery_is_not_a_guard_rejection(self, signer):
        sender, receiver = _session(signer)
        packet = sender.send(b"x", 4 * INTERVAL)  # discloses K_3
        interval, tag, index, _key = _decode(receiver, packet)
        forged = replace(packet, extra=_encode_extra(
            interval, tag, index, b"\xbb" * 16))
        receiver.receive(forged, packet.send_time + 1e-3)
        assert receiver.rejected_keys == 1
        assert receiver.guard_rejections == 0

    def test_guard_counter_accumulates(self, signer):
        sender, receiver = _session(signer)
        for attempt in range(3):
            packet = sender.send(b"x", attempt * INTERVAL)
            interval, tag, _index, _key = _decode(receiver, packet)
            hostile = replace(packet, extra=_encode_extra(
                interval, tag, CHAIN + 1 + attempt, b"\xcc" * 16))
            receiver.receive(hostile, packet.send_time + 1e-3)
        assert receiver.guard_rejections == 3
        assert receiver.rejected_keys == 3


def _decode(receiver, packet):
    return _decode_extra(packet.extra, receiver.mac.tag_size)
