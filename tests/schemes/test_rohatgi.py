"""Unit tests for the Gennaro-Rohatgi chain scheme."""

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import SchemeParameterError
from repro.schemes.rohatgi import RohatgiScheme


@pytest.fixture
def scheme():
    return RohatgiScheme()


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"test")


class TestGraph:
    def test_forward_chain(self, scheme):
        graph = scheme.build_graph(6)
        assert graph.root == 1
        assert sorted(graph.edges()) == [(i, i + 1) for i in range(1, 6)]

    def test_validates(self, scheme):
        scheme.build_graph(10).validate()

    def test_single_packet_block(self, scheme):
        graph = scheme.build_graph(1)
        assert graph.edge_count == 0
        graph.validate()

    def test_rejects_zero(self, scheme):
        with pytest.raises(SchemeParameterError):
            scheme.build_graph(0)

    def test_name(self, scheme):
        assert scheme.name == "rohatgi"


class TestMetrics:
    def test_one_hash_per_packet_asymptotically(self, scheme):
        metrics = scheme.metrics(100)
        assert metrics.mean_hashes == pytest.approx(0.99)

    def test_zero_delay(self, scheme):
        assert scheme.metrics(50).delay_slots == 0

    def test_buffers(self, scheme):
        metrics = scheme.metrics(50)
        assert metrics.hash_buffer == 1
        assert metrics.message_buffer == 0


class TestPackets:
    def test_block_structure(self, scheme, signer):
        payloads = [b"a", b"b", b"c"]
        packets = scheme.make_block(payloads, signer)
        assert len(packets) == 3
        assert packets[0].is_signature_packet
        assert not packets[1].is_signature_packet
        # Each non-final packet carries exactly the next packet's hash.
        assert [t for t, _ in packets[0].carried] == [2]
        assert [t for t, _ in packets[1].carried] == [3]
        assert packets[2].carried == ()

    def test_signature_verifies(self, scheme, signer):
        packets = scheme.make_block([b"a", b"b"], signer)
        assert signer.verify(packets[0].auth_bytes(), packets[0].signature)
