"""TESLA receiver timing: injectable clocks, no wall-clock fallback."""

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import SimulationError
from repro.network.clock import VirtualClock
from repro.schemes.tesla import TeslaParameters, TeslaReceiver, TeslaSender


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"tesla-clock")


@pytest.fixture
def sender(signer):
    parameters = TeslaParameters(interval=0.1, lag=2, chain_length=32,
                                 t0=0.0, max_clock_offset=0.0)
    return TeslaSender(parameters, signer, seed=b"\x05" * 16)


class TestNoWallClockFallback:
    def test_receive_without_time_or_clock_raises(self, sender, signer):
        receiver = TeslaReceiver(sender.bootstrap_packet(), signer)
        packet = sender.send(b"payload-1", 0.0)
        with pytest.raises(SimulationError):
            receiver.receive(packet)

    def test_explicit_time_still_works(self, sender, signer):
        receiver = TeslaReceiver(sender.bootstrap_packet(), signer)
        packet = sender.send(b"payload-1", 0.0)
        receiver.receive(packet, 0.05)
        assert receiver.verdicts[packet.seq].status == "pending"


class TestInjectedClock:
    def test_clock_supplies_receive_time(self, sender, signer):
        clock = VirtualClock()
        receiver = TeslaReceiver(sender.bootstrap_packet(), signer,
                                 clock=clock)
        clock.advance(0.05)
        packet = sender.send(b"payload-1", 0.0)
        receiver.receive(packet)
        verdict = receiver.verdicts[packet.seq]
        assert verdict.arrival_time == pytest.approx(0.05)
        assert verdict.status == "pending"

    def test_security_condition_uses_injected_clock(self, sender, signer):
        clock = VirtualClock()
        receiver = TeslaReceiver(sender.bootstrap_packet(), signer,
                                 clock=clock)
        packet = sender.send(b"payload-1", 0.0)
        # Interval 1's key discloses at 0.2; a packet surfacing after
        # that must be rejected as unsafe under the injected time.
        clock.advance(0.5)
        receiver.receive(packet)
        assert receiver.verdicts[packet.seq].status == "unsafe"

    def test_explicit_time_overrides_clock(self, sender, signer):
        clock = VirtualClock()
        clock.advance(0.5)  # clock says "unsafe"...
        receiver = TeslaReceiver(sender.bootstrap_packet(), signer,
                                 clock=clock)
        packet = sender.send(b"payload-1", 0.0)
        receiver.receive(packet, 0.05)  # ...but the explicit time wins
        assert receiver.verdicts[packet.seq].status == "pending"

    def test_frozen_clock_yields_identical_verdicts(self, signer):
        def run_session():
            parameters = TeslaParameters(interval=0.1, lag=2,
                                         chain_length=32, t0=0.0,
                                         max_clock_offset=0.0)
            sender = TeslaSender(parameters, signer, seed=b"\x07" * 16)
            clock = VirtualClock()
            receiver = TeslaReceiver(sender.bootstrap_packet(), signer,
                                     clock=clock)
            transcript = []
            for index in range(8):
                when = index * 0.1
                packet = sender.send(b"m%d" % index, when)
                if clock.now() < when:
                    clock.advance(when - clock.now())
                receiver.receive(packet)
            for packet in sender.flush_keys(8):
                clock.advance(0.1)
                receiver.receive(packet)
            for seq in sorted(receiver.verdicts):
                verdict = receiver.verdicts[seq]
                transcript.append((seq, verdict.status,
                                   verdict.arrival_time,
                                   verdict.verified_time))
            return transcript

        assert run_session() == run_session()
