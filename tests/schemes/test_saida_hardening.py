"""SAIDA receiver hardening: pollution, duplicates, shape forgery.

The erasure-coded receiver faces an attacker who can inject shares
with arbitrary indices and shapes; these tests pin the defensive
contract — first share per (block, index) wins, shapes are validated
against the block's first share, verdicts are final, and polluted
shares cannot poison a block while ``k`` clean ones arrived, all under
a bounded attempt budget.
"""

from dataclasses import replace

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.schemes.saida import _EXTRA, SaidaReceiver, SaidaScheme
from repro.simulation.sender import make_payloads


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"saida-hardening")


@pytest.fixture
def scheme():
    return SaidaScheme(k_fraction=0.5)


@pytest.fixture
def block(scheme, signer):
    return scheme.make_block(make_payloads(12), signer)  # k=6, n=12


def _garble_share(packet, stamp=b"\xee"):
    """Corrupt the share region, leaving index/shape/payload intact."""
    head = packet.extra[:_EXTRA.size]
    share = packet.extra[_EXTRA.size:]
    return replace(packet, extra=head + stamp * len(share))


class TestDefensiveBookkeeping:
    def test_duplicate_index_first_wins(self, signer, block):
        receiver = SaidaReceiver(signer)
        receiver.receive(block[0])
        fake = replace(block[1], extra=block[0].extra)  # same index 0
        receiver.receive(fake)
        assert receiver.duplicate_shares == 1

    def test_invalid_first_shape_rejected(self, signer, block):
        receiver = SaidaReceiver(signer)
        head = _EXTRA.pack(0, 9, 5, 128)  # k > n
        receiver.receive(replace(block[0], extra=head + b"\x00" * 20))
        assert receiver.rejected_shares == 1
        assert receiver.pending_count == 0

    def test_shape_disagreement_rejected(self, signer, block):
        receiver = SaidaReceiver(signer)
        receiver.receive(block[0])  # pins (k, n) = (6, 12)
        _, k, n, sig_len = _EXTRA.unpack_from(block[1].extra, 0)
        lied = _EXTRA.pack(1, k, n + 1, sig_len) + block[1].extra[_EXTRA.size:]
        receiver.receive(replace(block[1], extra=lied))
        assert receiver.rejected_shares == 1

    def test_out_of_range_index_rejected(self, signer, block):
        receiver = SaidaReceiver(signer)
        receiver.receive(block[0])
        _, k, n, sig_len = _EXTRA.unpack_from(block[1].extra, 0)
        head = _EXTRA.pack(n + 5, k, n, sig_len)
        receiver.receive(replace(block[1],
                                 extra=head + block[1].extra[_EXTRA.size:]))
        assert receiver.rejected_shares == 1

    def test_verdicts_are_final(self, signer, block):
        receiver = SaidaReceiver(signer)
        for packet in block:
            receiver.receive(packet)
        assert receiver.verified_count() == len(block)
        forged = replace(block[3], payload=b"late forgery")
        receiver.receive(forged)
        assert receiver.verified[block[3].seq] is True
        assert receiver.duplicate_shares == 1


class TestPollutionRescue:
    def test_single_polluted_share_survived(self, signer, block):
        receiver = SaidaReceiver(signer)
        receiver.receive(_garble_share(block[0]))
        for packet in block[1:]:
            receiver.receive(packet)
        # Block reconstructs from clean shares; the polluted packet's
        # payload is intact, so it verifies too (salvage).
        assert receiver.verified_count() == len(block)

    def test_three_polluted_shares_survived(self, signer, block):
        receiver = SaidaReceiver(signer)
        for i, packet in enumerate(block):
            receiver.receive(_garble_share(packet) if i < 3 else packet)
        assert receiver.verified_count() == len(block)

    def test_polluted_payload_fails_its_own_verdict(self, signer, block):
        receiver = SaidaReceiver(signer)
        tampered = replace(block[2], payload=b"swapped payload!")
        for i, packet in enumerate(block):
            receiver.receive(tampered if i == 2 else packet)
        assert receiver.verified[block[2].seq] is False
        assert sum(receiver.verified.values()) == len(block) - 1

    def test_wrong_signer_block_never_verifies(self, block):
        receiver = SaidaReceiver(HmcStub := HmacStubSigner(key=b"other"))
        assert HmcStub.key != b"saida-hardening"
        for packet in block:
            receiver.receive(packet)
        assert receiver.verified_count() == 0
        assert all(v is False for v in receiver.verified.values())

    def test_attempt_budget_bounds_work(self, signer, scheme):
        """All shares polluted: the budget must cut the search off."""
        from repro.schemes.saida import _MAX_ATTEMPT_FACTOR

        block = scheme.make_block(make_payloads(12), signer)
        receiver = SaidaReceiver(signer)
        for packet in block:
            receiver.receive(_garble_share(packet))
        block_id = block[0].block_id
        assert receiver.verified_count() == 0
        assert receiver._attempts.get(block_id, 0) <= \
            _MAX_ATTEMPT_FACTOR * 12 or block_id not in receiver._attempts
