"""Unit tests for the online (one-time-signature) Gennaro-Rohatgi chain."""

from dataclasses import replace

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import SchemeParameterError
from repro.schemes.rohatgi import RohatgiScheme
from repro.schemes.rohatgi_online import OnlineChainReceiver, OnlineRohatgiScheme
from repro.simulation.sender import make_payloads


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"online")


@pytest.fixture
def scheme():
    return OnlineRohatgiScheme(seed=b"test-seed")


def _session(scheme, signer, n=6):
    packets = scheme.make_block(make_payloads(n), signer)
    receiver = OnlineChainReceiver(signer, scheme._last_keypairs)
    return packets, receiver


class TestStructure:
    def test_same_graph_as_offline(self, scheme):
        online = scheme.build_graph(12)
        offline = RohatgiScheme().build_graph(12)
        assert online == offline

    def test_only_first_packet_ordinary_signed(self, scheme, signer):
        packets = scheme.make_block(make_payloads(5), signer)
        assert packets[0].is_signature_packet
        assert all(p.signature is None for p in packets[1:])

    def test_ots_signatures_present_after_first(self, scheme, signer):
        packets = scheme.make_block(make_payloads(4), signer)
        # extra = 4B header + 32B fingerprint (+ 8KB OTS sig after P_1).
        assert len(packets[0].extra) == 4 + 32
        for packet in packets[1:]:
            assert len(packet.extra) == 4 + 32 + 256 * 32

    def test_overhead_dwarfs_offline(self, scheme):
        online = scheme.metrics(64)
        offline = RohatgiScheme().metrics(64)
        assert online.overhead_bytes > 100 * offline.overhead_bytes
        assert online.delay_slots == 0

    def test_empty_block_rejected(self, scheme, signer):
        with pytest.raises(SchemeParameterError):
            scheme.make_block([], signer)


class TestVerification:
    def test_clean_chain_verifies(self, scheme, signer):
        packets, receiver = _session(scheme, signer)
        for packet in packets:
            assert receiver.receive(packet)
        assert receiver.verified_count() == len(packets)

    def test_single_loss_kills_the_suffix(self, scheme, signer):
        packets, receiver = _session(scheme, signer)
        survivors = [p for i, p in enumerate(packets) if i != 2]
        results = [receiver.receive(p) for p in survivors]
        # Packets before the gap verify; at and after it, nothing does.
        assert results[:2] == [True, True]
        assert not any(results[2:])

    def test_forged_payload_rejected(self, scheme, signer):
        packets, receiver = _session(scheme, signer)
        receiver.receive(packets[0])
        forged = replace(packets[1], payload=b"forged")
        assert not receiver.receive(forged)
        # Forgery breaks the chain forward too.
        assert not receiver.receive(packets[2])

    def test_forged_fingerprint_rejected(self, scheme, signer):
        packets, receiver = _session(scheme, signer)
        extra = bytearray(packets[0].extra)
        extra[10] ^= 1  # flip a fingerprint bit in the signed packet
        bad_first = replace(packets[0], extra=bytes(extra))
        assert not receiver.receive(bad_first)

    def test_wrong_root_signer_rejected(self, scheme, signer):
        packets, _ = _session(scheme, signer)
        receiver = OnlineChainReceiver(HmacStubSigner(key=b"other"),
                                       scheme._last_keypairs)
        assert not receiver.receive(packets[0])

    def test_deterministic_seed(self, signer):
        a = OnlineRohatgiScheme(seed=b"s").make_block(
            make_payloads(3), signer)
        b = OnlineRohatgiScheme(seed=b"s").make_block(
            make_payloads(3), signer)
        assert [p.extra for p in a] == [p.extra for p in b]
