"""Edge-case tests for the TESLA receiver's key handling."""

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.schemes.tesla import TeslaParameters, TeslaReceiver, TeslaSender


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"tesla-edge")


def _session(signer, lag=2, count=12):
    parameters = TeslaParameters(interval=0.05, lag=lag, chain_length=count)
    sender = TeslaSender(parameters, signer, seed=b"\x0e" * 16)
    receiver = TeslaReceiver(sender.bootstrap_packet(), signer)
    packets = [sender.send(b"m%d" % i, i * 0.05) for i in range(count)]
    return sender, receiver, packets


class TestKeyHandling:
    def test_duplicate_disclosures_idempotent(self, signer):
        sender, receiver, packets = _session(signer)
        receiver.receive(packets[0], 0.001)
        discloser = packets[4]  # interval 5 discloses K_3
        receiver.receive(discloser, discloser.send_time + 0.001)
        anchor_after_first = receiver._anchor.index
        # Replay the same disclosure (e.g. network duplication)...
        # a fresh verdict dict entry is not created for a dup seq, but
        # the key path must stay stable.
        receiver._learn_key(3, sender.chain.key(3))
        assert receiver._anchor.index == anchor_after_first

    def test_out_of_order_disclosures(self, signer):
        sender, receiver, packets = _session(signer, count=10)
        for packet in packets:
            receiver.receive(packet, packet.send_time + 0.001)
        # Deliver flush keys newest-first: older keys arrive after the
        # anchor has ratcheted past them; all data must still verify.
        for packet in reversed(sender.flush_keys(10)):
            receiver.receive(packet, 0.6)
        assert receiver.counts().get("verified") == 10

    def test_flush_only_reception(self, signer):
        """A receiver that lost every data packet learns all the keys
        from the flush and simply has nothing to verify."""
        sender, receiver, packets = _session(signer, count=6)
        for packet in sender.flush_keys(6):
            receiver.receive(packet, packet.send_time + 0.001)
        assert receiver.counts() == {}
        assert receiver.pending_count == 0

    def test_skipped_intervals(self, signer):
        """Quiet intervals (no packet sent) do not block later keys."""
        parameters = TeslaParameters(interval=0.05, lag=1, chain_length=20)
        sender = TeslaSender(parameters, signer, seed=b"\x0f" * 16)
        receiver = TeslaReceiver(sender.bootstrap_packet(), signer)
        early = sender.send(b"early", 0.0)       # interval 1
        late = sender.send(b"late", 0.5)         # interval 11: gap of 9
        receiver.receive(early, 0.001)
        receiver.receive(late, 0.501)
        for packet in sender.flush_keys(11):
            receiver.receive(packet, packet.send_time + 0.001)
        counts = receiver.counts()
        assert counts.get("verified") == 2

    def test_verdicts_are_final(self, signer):
        sender, receiver, packets = _session(signer, count=6)
        late = packets[0]
        receiver.receive(late, 5.0)  # far past disclosure: unsafe
        assert receiver.verdicts[late.seq].status == "unsafe"
        # Keys arriving later must not resurrect an unsafe packet.
        for packet in sender.flush_keys(6):
            receiver.receive(packet, 5.1)
        assert receiver.verdicts[late.seq].status == "unsafe"
