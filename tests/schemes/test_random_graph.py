"""Unit tests for the probabilistic construction (Sec. 5)."""

import pytest

from repro.exceptions import SchemeParameterError
from repro.schemes.random_graph import RandomGraphScheme


class TestConstruction:
    def test_seeded_graphs_reproducible(self):
        a = RandomGraphScheme(0.1, seed=7).build_graph(40)
        b = RandomGraphScheme(0.1, seed=7).build_graph(40)
        assert a == b

    def test_different_seeds_differ(self):
        a = RandomGraphScheme(0.1, seed=7).build_graph(40)
        b = RandomGraphScheme(0.1, seed=8).build_graph(40)
        assert a != b

    def test_repaired_graph_validates(self):
        scheme = RandomGraphScheme(0.02, seed=3)
        graph = scheme.build_graph(60)
        graph.validate()

    def test_repairs_counted(self):
        scheme = RandomGraphScheme(0.01, seed=5)
        graph = scheme.build_graph(50)
        graph.validate()
        assert scheme.last_repairs >= 0

    def test_without_repair_may_be_invalid(self):
        scheme = RandomGraphScheme(0.01, seed=5, repair_unreachable=False)
        graph = scheme.build_graph(50)
        # Sparse sampling leaves unreachable vertices (paper's caveat).
        assert graph.unreachable_vertices()

    def test_edge_density_tracks_probability(self):
        n = 80
        p_x = 0.2
        graph = RandomGraphScheme(p_x, seed=11).build_graph(n)
        possible = n * (n - 1) / 2
        density = graph.edge_count / possible
        assert density == pytest.approx(p_x, abs=0.05)

    def test_max_span_bounds_labels(self):
        scheme = RandomGraphScheme(0.5, seed=2, max_span=4)
        graph = scheme.build_graph(50)
        for i, j in graph.edges():
            if i != graph.root:
                assert 0 < i - j <= 4

    def test_all_edges_point_toward_earlier_packets(self):
        graph = RandomGraphScheme(0.3, seed=1).build_graph(30)
        for i, j in graph.edges():
            assert i > j  # carrier sent after target

    def test_parameter_validation(self):
        with pytest.raises(SchemeParameterError):
            RandomGraphScheme(0.0)
        with pytest.raises(SchemeParameterError):
            RandomGraphScheme(1.5)
        with pytest.raises(SchemeParameterError):
            RandomGraphScheme(0.5, max_span=0)
        with pytest.raises(SchemeParameterError):
            RandomGraphScheme(0.5).build_graph(1)

    def test_name(self):
        assert RandomGraphScheme(0.25).name == "random(p=0.25)"
