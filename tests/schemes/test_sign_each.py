"""Unit tests for the sign-each baseline."""

from dataclasses import replace

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import SchemeParameterError
from repro.schemes.sign_each import SignEachScheme, verify_sign_each_packet


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"se")


@pytest.fixture
def scheme():
    return SignEachScheme()


class TestScheme:
    def test_no_graph(self, scheme):
        assert scheme.build_graph(5) is None
        assert scheme.individually_verifiable

    def test_every_packet_signed_individually(self, scheme, signer):
        packets = scheme.make_block([b"a", b"b", b"c"], signer)
        assert all(p.is_signature_packet for p in packets)
        assert len({p.signature for p in packets}) == 3

    def test_each_verifies_alone(self, scheme, signer):
        for packet in scheme.make_block([b"x", b"y"], signer):
            assert verify_sign_each_packet(packet, signer)

    def test_tampering_rejected(self, scheme, signer):
        packet = scheme.make_block([b"x"], signer)[0]
        assert not verify_sign_each_packet(
            replace(packet, payload=b"evil"), signer)

    def test_unsigned_rejected(self, scheme, signer):
        packet = scheme.make_block([b"x"], signer)[0]
        assert not verify_sign_each_packet(
            replace(packet, signature=None), signer)

    def test_empty_block_rejected(self, scheme, signer):
        with pytest.raises(SchemeParameterError):
            scheme.make_block([], signer)


class TestMetrics:
    def test_full_signature_per_packet(self, scheme):
        metrics = scheme.metrics(100, l_sign=128)
        assert metrics.overhead_bytes == 128.0
        assert metrics.mean_hashes == 0.0

    def test_no_delay_or_buffers(self, scheme):
        metrics = scheme.metrics(10)
        assert metrics.delay_slots == 0
        assert metrics.message_buffer == 0
        assert metrics.hash_buffer == 0
