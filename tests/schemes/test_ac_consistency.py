"""Builder ↔ Eq. 10 consistency for the augmented chain.

The scheme builder and the analysis module implement the same Eq. 10
dependency structure through different code paths (send-order edges vs
reversed-index recurrence).  These tests pin them to each other: for
every vertex, the graph's in-edges must be exactly the dependencies
the analysis declares, and the analysis profile must track exact Monte
Carlo on the built graph.
"""

import pytest

from repro.analysis import augmented_chain as ac_analysis
from repro.analysis.montecarlo import graph_monte_carlo
from repro.schemes.augmented_chain import (
    AugmentedChainScheme,
    ac_vertex_coordinates,
)


@pytest.mark.parametrize("a,b,n", [
    (2, 1, 20), (2, 2, 19), (3, 3, 50), (3, 3, 53), (4, 2, 40), (5, 5, 80),
])
class TestBuilderMatchesDeclaredDependencies:
    def test_in_edges_equal_dependencies(self, a, b, n):
        scheme = AugmentedChainScheme(a, b)
        graph = scheme.build_graph(n)
        n_data = n - 1
        for i in range(1, n_data + 1):
            vertex = n - i
            declared = {n - j for j in scheme._dependencies(i, n_data)}
            assert set(graph.predecessors(vertex)) == declared, (
                f"vertex {vertex} (reversed {i}, coords "
                f"{ac_vertex_coordinates(i, b)})"
            )

    def test_every_inserted_vertex_has_two_or_fewer_supports(self, a, b, n):
        graph = AugmentedChainScheme(a, b).build_graph(n)
        for vertex in graph.vertices:
            if vertex != graph.root:
                assert 1 <= graph.in_degree(vertex) <= 2


class TestAnalysisTracksGraph:
    @pytest.mark.parametrize("p", [0.05, 0.2])
    def test_recurrence_upper_bounds_mc_per_packet(self, p):
        a, b, n = 3, 3, 61
        profile = ac_analysis.q_profile(n, a, b, p)
        graph = AugmentedChainScheme(a, b).build_graph(n)
        mc = graph_monte_carlo(graph, p, trials=20000, seed=77)
        for i in range(1, n):
            vertex = n - i
            analytic = profile.q_of_reversed_index(i)
            # Positive path correlation: recurrence >= exact, and the
            # two must not be wildly apart at these sizes.
            assert mc.q[vertex] <= analytic + 0.03
            assert analytic - mc.q[vertex] < 0.25

    def test_boundary_vertices_certain_both_ways(self):
        a, b, n = 3, 2, 40
        profile = ac_analysis.q_profile(n, a, b, 0.4)
        graph = AugmentedChainScheme(a, b).build_graph(n)
        mc = graph_monte_carlo(graph, 0.4, trials=4000, seed=3)
        for i in range(1, n):
            if profile.q_of_reversed_index(i) == 1.0:
                vertex = n - i
                if graph.has_edge(graph.root, vertex) and \
                        graph.in_degree(vertex) == 1:
                    assert mc.q[vertex] == 1.0
