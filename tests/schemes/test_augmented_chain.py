"""Unit tests for the augmented chain C_{a,b}."""

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import SchemeParameterError
from repro.schemes.augmented_chain import (
    AugmentedChainScheme,
    ac_vertex_coordinates,
)


class TestCoordinates:
    def test_paper_labeling(self):
        b = 3
        # i = x(b+1) + y for inserted; chain packets at multiples of b+1.
        assert ac_vertex_coordinates(1, b) == (0, 1)
        assert ac_vertex_coordinates(3, b) == (0, 3)
        assert ac_vertex_coordinates(4, b) == (0, 0)   # chain packet 0
        assert ac_vertex_coordinates(5, b) == (1, 1)
        assert ac_vertex_coordinates(8, b) == (1, 0)   # chain packet 1

    def test_rejects_bad_index(self):
        with pytest.raises(SchemeParameterError):
            ac_vertex_coordinates(0, 3)


class TestGraph:
    def test_validates_across_sizes(self):
        for n in (6, 13, 25, 101, 250):
            AugmentedChainScheme(3, 3).build_graph(n).validate()
        for (a, b) in [(2, 1), (2, 5), (5, 2), (8, 8)]:
            AugmentedChainScheme(a, b).build_graph(100).validate()

    def test_root_is_last(self):
        assert AugmentedChainScheme(3, 3).build_graph(20).root == 20

    def test_every_data_packet_supported(self):
        graph = AugmentedChainScheme(3, 3).build_graph(50)
        for v in graph.vertices:
            if v != graph.root:
                assert graph.in_degree(v) >= 1

    def test_roughly_two_hashes_per_packet(self):
        graph = AugmentedChainScheme(3, 3).build_graph(200)
        assert graph.edge_count / graph.n == pytest.approx(2.0, abs=0.35)

    def test_chain_packet_count(self):
        scheme = AugmentedChainScheme(3, 3)
        assert scheme.chain_packet_count(101) == 25  # 100 data / 4

    def test_block_size_for_chain(self):
        assert AugmentedChainScheme.block_size_for_chain(25, 3) == 101

    def test_parameter_validation(self):
        with pytest.raises(SchemeParameterError):
            AugmentedChainScheme(1, 3)
        with pytest.raises(SchemeParameterError):
            AugmentedChainScheme(3, 0)
        with pytest.raises(SchemeParameterError):
            AugmentedChainScheme.block_size_for_chain(0, 3)

    def test_name(self):
        assert AugmentedChainScheme(3, 3).name == "ac(3,3)"


class TestChainLevelStructure:
    def test_chain_packets_link_chain_packets(self):
        a, b, n = 3, 3, 101
        graph = AugmentedChainScheme(a, b).build_graph(n)
        n_data = n - 1
        # Chain packet x (reversed idx (x+1)(b+1)) for x > a depends on
        # chain x-1 and x-a; in send order the carriers are those
        # packets' send positions.
        x = 5
        vertex = n - (x + 1) * (b + 1)
        carrier_prev = n - x * (b + 1)
        carrier_skip = n - (x - a + 1) * (b + 1)
        assert graph.has_edge(carrier_prev, vertex)
        assert graph.has_edge(carrier_skip, vertex)

    def test_boundary_chain_packets_signed_directly(self):
        a, b, n = 3, 3, 101
        graph = AugmentedChainScheme(a, b).build_graph(n)
        for x in range(a + 1):
            vertex = n - (x + 1) * (b + 1)
            assert graph.has_edge(n, vertex)


class TestPackets:
    def test_block_builds_and_signs_last(self):
        signer = HmacStubSigner(key=b"k")
        scheme = AugmentedChainScheme(2, 2)
        packets = scheme.make_block([b"%d" % i for i in range(12)], signer)
        assert packets[-1].is_signature_packet
        assert sum(1 for p in packets if p.is_signature_packet) == 1

    def test_carried_hashes_match_graph(self):
        signer = HmacStubSigner(key=b"k")
        scheme = AugmentedChainScheme(2, 2)
        n = 12
        packets = scheme.make_block([b"%d" % i for i in range(n)], signer)
        graph = scheme.build_graph(n)
        for packet in packets:
            assert sorted(t for t, _ in packet.carried) == \
                graph.successors(packet.seq)
