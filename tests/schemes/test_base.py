"""Unit tests for the generic graph-driven block builder."""

import pytest

from repro.core.graph import DependenceGraph
from repro.crypto.hashing import sha256, truncated
from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import SchemeParameterError
from repro.schemes.base import build_block
from repro.schemes.rohatgi import RohatgiScheme


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"bb")


def _diamond():
    return DependenceGraph.from_edges(4, 1, [(1, 2), (1, 3), (2, 4), (3, 4)])


class TestBuildBlock:
    def test_send_order_and_seq(self, signer):
        packets = build_block(_diamond(), [b"a", b"b", b"c", b"d"], signer,
                              base_seq=10)
        assert [p.seq for p in packets] == [10, 11, 12, 13]
        assert [p.payload for p in packets] == [b"a", b"b", b"c", b"d"]

    def test_root_signed_only(self, signer):
        packets = build_block(_diamond(), [b"a", b"b", b"c", b"d"], signer)
        assert packets[0].is_signature_packet
        assert sum(p.is_signature_packet for p in packets) == 1

    def test_hash_transitivity(self, signer):
        """A carried hash must cover the target's own carried hashes."""
        graph = _diamond()
        packets = build_block(graph, [b"a", b"b", b"c", b"d"], signer)
        by_seq = {p.seq: p for p in packets}
        for packet in packets:
            for target, digest in packet.carried:
                assert sha256.digest(by_seq[target].auth_bytes()) == digest

    def test_custom_hash_function(self, signer):
        short = truncated("sha256", 8)
        packets = build_block(_diamond(), [b"a", b"b", b"c", b"d"], signer,
                              hash_function=short)
        for packet in packets:
            for _, digest in packet.carried:
                assert len(digest) == 8

    def test_payload_count_mismatch(self, signer):
        with pytest.raises(SchemeParameterError):
            build_block(_diamond(), [b"a", b"b"], signer)

    def test_invalid_graph_rejected(self, signer):
        graph = DependenceGraph(3, root=1)
        graph.add_edge(1, 2)  # vertex 3 unreachable
        with pytest.raises(Exception):
            build_block(graph, [b"a", b"b", b"c"], signer)

    def test_block_id_stamped(self, signer):
        packets = build_block(_diamond(), [b"a", b"b", b"c", b"d"], signer,
                              block_id=7)
        assert all(p.block_id == 7 for p in packets)

    def test_anti_causal_edges_supported(self, signer):
        # Packet 2's hash carried by packet 1 AND packet 3's by 4 — the
        # offline builder handles both directions.
        graph = DependenceGraph.from_edges(
            4, 1, [(1, 2), (1, 4), (4, 3)])
        packets = build_block(graph, [b"a", b"b", b"c", b"d"], signer)
        assert [t for t, _ in packets[3].carried] == [3]

    def test_scheme_default_make_block(self, signer):
        packets = RohatgiScheme().make_block([b"a", b"b"], signer)
        assert len(packets) == 2
