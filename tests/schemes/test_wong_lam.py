"""Unit tests for the Wong-Lam authentication tree scheme."""

import math

import pytest

from repro.crypto.hashing import truncated
from repro.crypto.signatures import HmacStubSigner
from repro.schemes.wong_lam import (
    WongLamScheme,
    decode_proof,
    encode_proof,
    verify_wong_lam_packet,
)
from repro.crypto.merkle import MerkleTree
from repro.exceptions import VerificationError


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"wl")


@pytest.fixture
def scheme():
    return WongLamScheme()


class TestScheme:
    def test_no_dependence_graph(self, scheme):
        assert scheme.build_graph(10) is None
        assert scheme.individually_verifiable

    def test_every_packet_signed(self, scheme, signer):
        packets = scheme.make_block([b"a", b"b", b"c", b"d"], signer)
        assert all(p.is_signature_packet for p in packets)

    def test_all_packets_share_signature(self, scheme, signer):
        packets = scheme.make_block([b"a", b"b", b"c"], signer)
        assert len({p.signature for p in packets}) == 1

    def test_each_packet_verifies_alone(self, scheme, signer):
        payloads = [b"pkt-%d" % i for i in range(9)]
        for packet in scheme.make_block(payloads, signer):
            assert verify_wong_lam_packet(packet, signer)

    def test_tampered_payload_rejected(self, scheme, signer):
        from dataclasses import replace
        packets = scheme.make_block([b"a", b"b", b"c", b"d"], signer)
        tampered = replace(packets[1], payload=b"evil")
        assert not verify_wong_lam_packet(tampered, signer)

    def test_tampered_proof_rejected(self, scheme, signer):
        from dataclasses import replace
        packets = scheme.make_block([b"a", b"b", b"c", b"d"], signer)
        extra = bytearray(packets[1].extra)
        extra[-1] ^= 1
        tampered = replace(packets[1], extra=bytes(extra))
        assert not verify_wong_lam_packet(tampered, signer)

    def test_wrong_signer_rejected(self, scheme, signer):
        packets = scheme.make_block([b"a", b"b"], signer)
        other = HmacStubSigner(key=b"other")
        assert not verify_wong_lam_packet(packets[0], other)

    def test_unsigned_packet_rejected(self, scheme, signer):
        from dataclasses import replace
        packets = scheme.make_block([b"a", b"b"], signer)
        assert not verify_wong_lam_packet(
            replace(packets[0], signature=None), signer)


class TestMetrics:
    def test_overhead_has_log_depth(self, scheme):
        metrics = scheme.metrics(64, l_sign=128, l_hash=16)
        assert metrics.overhead_bytes == 128 + 6 * 16
        assert metrics.mean_hashes == 6

    def test_single_packet_block(self, scheme):
        metrics = scheme.metrics(1, l_sign=128, l_hash=16)
        assert metrics.overhead_bytes == 128

    def test_no_delay_no_buffers(self, scheme):
        metrics = scheme.metrics(64)
        assert metrics.delay_slots == 0
        assert metrics.message_buffer == 0
        assert metrics.hash_buffer == 0

    def test_depth_rounds_up(self, scheme):
        assert scheme.metrics(65).mean_hashes == 7

    def test_actual_packet_overhead_matches_model(self, scheme, signer):
        n = 16
        packets = scheme.make_block([b"%d" % i for i in range(n)], signer)
        model = scheme.metrics(n, l_sign=signer.signature_size, l_hash=32)
        for packet in packets:
            # extra = root + path + framing; signature separate.
            observed = len(packet.signature) + math.ceil(
                math.log2(n)) * 32
            assert observed <= packet.overhead_bytes
            assert packet.overhead_bytes < model.overhead_bytes + 64


class TestProofCodec:
    def test_roundtrip(self):
        tree = MerkleTree([b"a", b"b", b"c", b"d", b"e"])
        proof = tree.proof(2)
        blob = encode_proof(proof, tree.root, 32)
        root, decoded = decode_proof(blob, 2, 32)
        assert root == tree.root
        assert decoded.siblings == proof.siblings

    def test_truncated_hash_roundtrip(self):
        short = truncated("sha256", 10)
        tree = MerkleTree([b"a", b"b", b"c"], short)
        proof = tree.proof(1)
        blob = encode_proof(proof, tree.root, 10)
        root, decoded = decode_proof(blob, 1, 10)
        assert MerkleTree.verify_static(b"b", decoded, root, short)

    def test_truncated_blob_rejected(self):
        tree = MerkleTree([b"a", b"b", b"c", b"d"])
        blob = encode_proof(tree.proof(0), tree.root, 32)
        with pytest.raises(VerificationError):
            decode_proof(blob[:-5], 0, 32)

    def test_garbage_rejected(self):
        with pytest.raises(VerificationError):
            decode_proof(b"\x00", 0, 32)
