"""Unit tests for the SAIDA erasure-coded scheme."""

from dataclasses import replace

import pytest

from repro.analysis import saida as analysis
from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import AnalysisError, SchemeParameterError
from repro.network.channel import Channel
from repro.network.loss import BernoulliLoss, TraceLoss
from repro.schemes.saida import SaidaReceiver, SaidaScheme
from repro.simulation.sender import make_payloads


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"saida-test")


@pytest.fixture
def scheme():
    return SaidaScheme(k_fraction=0.5)


class TestScheme:
    def test_threshold(self, scheme):
        assert scheme.threshold(10) == 5
        assert scheme.threshold(11) == 6
        assert SaidaScheme(1.0).threshold(7) == 7

    def test_no_dependence_graph(self, scheme):
        assert scheme.build_graph(10) is None

    def test_parameter_validation(self):
        with pytest.raises(SchemeParameterError):
            SaidaScheme(0.0)
        with pytest.raises(SchemeParameterError):
            SaidaScheme(1.2)

    def test_block_limits(self, scheme, signer):
        with pytest.raises(SchemeParameterError):
            scheme.make_block([], signer)
        with pytest.raises(SchemeParameterError):
            scheme.make_block(make_payloads(256), signer)

    def test_packets_carry_no_plain_signature(self, scheme, signer):
        packets = scheme.make_block(make_payloads(8), signer)
        assert all(p.signature is None for p in packets)
        assert all(p.carried == () for p in packets)
        assert all(p.extra for p in packets)

    def test_metrics_shape(self, scheme):
        metrics = scheme.metrics(32, l_sign=128, l_hash=16)
        assert metrics.delay_slots == scheme.threshold(32) - 1
        # Share size ~ blob/k; must beat sign-each for real blocks.
        assert metrics.overhead_bytes < 128

    def test_name(self, scheme):
        assert scheme.name == "saida(k=0.5)"


class TestReceiver:
    def test_lossless_all_verify(self, scheme, signer):
        packets = scheme.make_block(make_payloads(12), signer)
        receiver = SaidaReceiver(signer)
        for packet in packets:
            receiver.receive(packet)
        assert receiver.verified_count() == 12

    def test_any_k_subset_suffices(self, scheme, signer):
        n = 12
        k = scheme.threshold(n)
        packets = scheme.make_block(make_payloads(n), signer)
        receiver = SaidaReceiver(signer)
        for packet in packets[-k:]:  # the *last* k — order irrelevant
            receiver.receive(packet)
        assert receiver.verified_count() == k

    def test_below_threshold_nothing_verifies(self, scheme, signer):
        n = 12
        k = scheme.threshold(n)
        packets = scheme.make_block(make_payloads(n), signer)
        receiver = SaidaReceiver(signer)
        for packet in packets[:k - 1]:
            receiver.receive(packet)
        assert receiver.verified_count() == 0
        assert receiver.pending_count == k - 1

    def test_late_arrivals_verify_immediately(self, scheme, signer):
        n = 10
        k = scheme.threshold(n)
        packets = scheme.make_block(make_payloads(n), signer)
        receiver = SaidaReceiver(signer)
        for packet in packets[:k]:
            receiver.receive(packet)
        receiver.receive(packets[-1])
        assert receiver.verified[packets[-1].seq] is True

    def test_forged_payload_rejected_others_fine(self, scheme, signer):
        packets = scheme.make_block(make_payloads(10), signer)
        packets[3] = replace(packets[3], payload=b"forged payload!")
        receiver = SaidaReceiver(signer)
        for packet in packets:
            receiver.receive(packet)
        assert receiver.verified[packets[3].seq] is False
        assert receiver.verified_count() == 9

    def test_wrong_signer_fails_block(self, scheme, signer):
        packets = scheme.make_block(make_payloads(10), signer)
        receiver = SaidaReceiver(HmacStubSigner(key=b"other"))
        for packet in packets:
            receiver.receive(packet)
        assert receiver.verified_count() == 0

    def test_multi_block_isolation(self, scheme, signer):
        a = scheme.make_block(make_payloads(8, tag=b"a"), signer,
                              block_id=0, base_seq=1)
        b = scheme.make_block(make_payloads(8, tag=b"b"), signer,
                              block_id=1, base_seq=9)
        receiver = SaidaReceiver(signer)
        for packet in a + b:
            receiver.receive(packet)
        assert receiver.verified_count() == 16


class TestAnalysis:
    def test_profile_is_flat(self):
        profile = analysis.q_profile(20, 10, 0.3)
        assert len(set(profile)) == 1

    def test_extremes(self):
        assert analysis.q_min(20, 10, 0.0) == 1.0
        assert analysis.q_min(20, 10, 1.0) == 0.0
        assert analysis.q_min(20, 1, 0.99) == 1.0  # self suffices

    def test_cliff_location(self):
        assert analysis.loss_cliff(20, 10) == pytest.approx(0.5)
        n, k = 100, 50
        below = analysis.q_min(n, k, analysis.loss_cliff(n, k) - 0.15)
        above = analysis.q_min(n, k, analysis.loss_cliff(n, k) + 0.15)
        assert below > 0.95
        assert above < 0.05

    def test_matches_simulation(self, scheme, signer):
        n, p = 20, 0.3
        k = scheme.threshold(n)
        received = verified = 0
        for trial in range(300):
            packets = scheme.make_block(make_payloads(n), signer)
            channel = Channel(loss=BernoulliLoss(p, seed=trial),
                              protect_signature_packets=False)
            receiver = SaidaReceiver(signer)
            deliveries = channel.transmit(packets)
            for delivery in deliveries:
                receiver.receive(delivery.packet)
            received += len(deliveries)
            verified += receiver.verified_count()
        assert verified / received == pytest.approx(
            analysis.q_i(n, k, p), abs=0.03)

    def test_burst_indifference(self, scheme, signer):
        """Erasure codes only count losses: a trace with clustered
        losses verifies exactly like the same count spread out."""
        n = 12
        packets = scheme.make_block(make_payloads(n), signer)
        clustered = [True] * 4 + [False] * 8
        spread = [True, False, False] * 4
        for pattern in (clustered, spread):
            channel = Channel(loss=TraceLoss(pattern),
                              protect_signature_packets=False)
            receiver = SaidaReceiver(signer)
            for delivery in channel.transmit(packets):
                receiver.receive(delivery.packet)
            assert receiver.verified_count() == 8

    def test_validation(self):
        with pytest.raises(AnalysisError):
            analysis.q_i(10, 0, 0.1)
        with pytest.raises(AnalysisError):
            analysis.q_i(10, 11, 0.1)
        with pytest.raises(AnalysisError):
            analysis.loss_cliff(10, 0)
