"""Unit tests for the scheme registry / spec parser."""

import pytest

from repro.exceptions import SchemeParameterError
from repro.schemes.augmented_chain import AugmentedChainScheme
from repro.schemes.emss import EmssScheme, GenericOffsetScheme
from repro.schemes.registry import (
    available_schemes,
    make_scheme,
    paper_comparison_schemes,
)
from repro.schemes.rohatgi import RohatgiScheme
from repro.schemes.tesla import TeslaScheme


class TestMakeScheme:
    def test_simple_names(self):
        assert isinstance(make_scheme("rohatgi"), RohatgiScheme)
        assert make_scheme("wong-lam").name == "wong-lam"
        assert make_scheme("sign-each").name == "sign-each"

    def test_emss_args(self):
        scheme = make_scheme("emss(3,2)")
        assert isinstance(scheme, EmssScheme)
        assert (scheme.m, scheme.d) == (3, 2)

    def test_ac_args(self):
        scheme = make_scheme("ac(4,5)")
        assert isinstance(scheme, AugmentedChainScheme)
        assert (scheme.a, scheme.b) == (4, 5)

    def test_offsets(self):
        scheme = make_scheme("offsets(1,5,9)")
        assert isinstance(scheme, GenericOffsetScheme)
        assert scheme.offsets == (1, 5, 9)

    def test_random(self):
        scheme = make_scheme("random(0.1,42)")
        assert scheme.edge_probability == pytest.approx(0.1)
        assert scheme.seed == 42

    def test_tesla_keyword_args(self):
        scheme = make_scheme("tesla(d=5,T=0.2,n=128)")
        assert isinstance(scheme, TeslaScheme)
        assert scheme.parameters.lag == 5
        assert scheme.parameters.interval == pytest.approx(0.2)
        assert scheme.parameters.chain_length == 128

    def test_tesla_defaults(self):
        scheme = make_scheme("tesla")
        assert scheme.parameters.lag == 10

    def test_whitespace_tolerated(self):
        assert make_scheme("  emss( 2 , 1 ) ").name == "emss(2,1)"

    def test_unknown_scheme(self):
        with pytest.raises(SchemeParameterError):
            make_scheme("quantum-chain")

    def test_malformed_spec(self):
        with pytest.raises(SchemeParameterError):
            make_scheme("emss(2,")
        with pytest.raises(SchemeParameterError):
            make_scheme("emss(2)")
        with pytest.raises(SchemeParameterError):
            make_scheme("tesla(lag=5)")


class TestListing:
    def test_available_schemes(self):
        names = available_schemes()
        assert {"rohatgi", "emss", "ac", "tesla",
                "wong-lam", "sign-each"} <= set(names)

    def test_paper_comparison_set(self):
        schemes = paper_comparison_schemes()
        names = [s.name for s in schemes]
        assert "rohatgi" in names
        assert "emss(2,1)" in names
        assert "ac(3,3)" in names
        assert any(name.startswith("tesla") for name in names)
