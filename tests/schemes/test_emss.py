"""Unit tests for EMSS and the generic offset scheme."""

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import SchemeParameterError
from repro.schemes.emss import EmssScheme, GenericOffsetScheme


class TestGraphStructure:
    def test_signature_is_last(self):
        graph = EmssScheme(2, 1).build_graph(10)
        assert graph.root == 10

    def test_e21_edges(self):
        graph = EmssScheme(2, 1).build_graph(6)
        # Packet s's hash carried by s+1 and s+2 (clamped to 6).
        assert graph.has_edge(2, 1)
        assert graph.has_edge(3, 1)
        assert graph.has_edge(5, 4)
        assert graph.has_edge(6, 4)
        assert graph.has_edge(6, 5)

    def test_clamping_merges_duplicates(self):
        graph = EmssScheme(3, 2).build_graph(5)
        # Packet 4: carriers 6, 8, 10 all clamp to 5 -> one edge.
        assert graph.predecessors(4) == [5]

    def test_validates_across_sizes(self):
        for n in (2, 3, 7, 20, 50):
            EmssScheme(2, 1).build_graph(n).validate()
            EmssScheme(3, 4).build_graph(n).validate()

    def test_offsets_property(self):
        assert EmssScheme(3, 2).offsets == [2, 4, 6]

    def test_out_degree_bounded_by_m(self):
        graph = EmssScheme(2, 1).build_graph(30)
        for v in graph.vertices:
            if v != graph.root:
                assert graph.out_degree(v) <= 2

    def test_parameter_validation(self):
        with pytest.raises(SchemeParameterError):
            EmssScheme(0, 1)
        with pytest.raises(SchemeParameterError):
            EmssScheme(2, 0)
        with pytest.raises(SchemeParameterError):
            EmssScheme(2, 1).build_graph(1)

    def test_name(self):
        assert EmssScheme(2, 1).name == "emss(2,1)"


class TestGenericOffsetScheme:
    def test_matches_emss_for_uniform_offsets(self):
        emss = EmssScheme(2, 3).build_graph(20)
        generic = GenericOffsetScheme((3, 6)).build_graph(20)
        assert emss == generic

    def test_irregular_offsets(self):
        graph = GenericOffsetScheme((1, 5, 9)).build_graph(30)
        graph.validate()
        assert graph.has_edge(2, 1)
        assert graph.has_edge(6, 1)
        assert graph.has_edge(10, 1)

    def test_offsets_sorted_and_deduped(self):
        assert GenericOffsetScheme((5, 1, 5)).offsets == (1, 5)

    def test_validation(self):
        with pytest.raises(SchemeParameterError):
            GenericOffsetScheme(())
        with pytest.raises(SchemeParameterError):
            GenericOffsetScheme((0, 1))

    def test_name(self):
        assert GenericOffsetScheme((1, 5)).name == "offsets(1,5)"


class TestMetrics:
    def test_mean_hashes_close_to_m(self):
        metrics = EmssScheme(2, 1).metrics(100)
        assert 1.5 < metrics.mean_hashes <= 2.0

    def test_delay_is_block_length(self):
        metrics = EmssScheme(2, 1).metrics(50)
        assert metrics.delay_slots == 49

    def test_message_buffer_positive(self):
        assert EmssScheme(2, 1).metrics(50).message_buffer > 0


class TestPackets:
    def test_block_signs_last_packet(self):
        signer = HmacStubSigner(key=b"k")
        packets = EmssScheme(2, 1).make_block([b"a", b"b", b"c", b"d"], signer)
        assert packets[-1].is_signature_packet
        assert not packets[0].is_signature_packet

    def test_carried_hash_targets_match_graph(self):
        signer = HmacStubSigner(key=b"k")
        scheme = EmssScheme(2, 1)
        packets = scheme.make_block([b"%d" % i for i in range(6)], signer)
        graph = scheme.build_graph(6)
        for packet in packets:
            vertex = packet.seq  # base_seq = 1
            assert sorted(t for t, _ in packet.carried) == \
                graph.successors(vertex)
