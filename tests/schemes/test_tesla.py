"""Unit tests for TESLA: parameters, sender, receiver, security condition."""

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import SchemeParameterError, SimulationError
from repro.schemes.tesla import (
    BootstrapInfo,
    TeslaParameters,
    TeslaReceiver,
    TeslaScheme,
    TeslaSender,
)


@pytest.fixture
def parameters():
    return TeslaParameters(interval=0.1, lag=2, chain_length=32,
                           t0=0.0, max_clock_offset=0.0)


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"tesla")


@pytest.fixture
def sender(parameters, signer):
    return TeslaSender(parameters, signer, seed=b"\x05" * 16)


def _receiver(sender, signer, clock_offset=0.0):
    bootstrap = sender.bootstrap_packet()
    return TeslaReceiver(bootstrap, signer, clock_offset=clock_offset)


class TestParameters:
    def test_disclosure_delay(self, parameters):
        assert parameters.disclosure_delay == pytest.approx(0.2)

    def test_interval_of(self, parameters):
        assert parameters.interval_of(0.0) == 1
        assert parameters.interval_of(0.05) == 1
        assert parameters.interval_of(0.1) == 2
        assert parameters.interval_of(0.95) == 10

    def test_interval_before_start_rejected(self, parameters):
        with pytest.raises(SimulationError):
            parameters.interval_of(-0.1)

    def test_disclosure_time(self, parameters):
        # K_1 disclosed at the start of interval 1 + lag.
        assert parameters.disclosure_time(1) == pytest.approx(0.2)
        assert parameters.disclosure_time(5) == pytest.approx(0.6)

    def test_validation(self):
        with pytest.raises(SchemeParameterError):
            TeslaParameters(interval=0.0)
        with pytest.raises(SchemeParameterError):
            TeslaParameters(lag=0)
        with pytest.raises(SchemeParameterError):
            TeslaParameters(chain_length=0)
        with pytest.raises(SchemeParameterError):
            TeslaParameters(max_clock_offset=-1)


class TestBootstrap:
    def test_roundtrip(self, parameters):
        info = BootstrapInfo(commitment=b"\x09" * 16, parameters=parameters)
        decoded = BootstrapInfo.decode(info.encode())
        assert decoded.commitment == info.commitment
        assert decoded.parameters == parameters

    def test_malformed_rejected(self):
        with pytest.raises(SimulationError):
            BootstrapInfo.decode(b"\x01\x02")

    def test_receiver_rejects_bad_bootstrap_signature(self, sender, signer):
        from dataclasses import replace
        bootstrap = sender.bootstrap_packet()
        bad = replace(bootstrap, signature=b"\x00" * len(bootstrap.signature))
        with pytest.raises(SimulationError):
            TeslaReceiver(bad, signer)


class TestHappyPath:
    def test_all_packets_verify_without_loss(self, parameters, sender, signer):
        receiver = _receiver(sender, signer)
        count = 10
        packets = [sender.send(b"payload-%d" % i, i * 0.1)
                   for i in range(count)]
        flush = sender.flush_keys(count)
        delay = 0.01
        for packet in packets + flush:
            receiver.receive(packet, packet.send_time + delay)
        counts = receiver.counts()
        assert counts.get("verified") == count
        assert counts.get("unsafe", 0) == 0
        assert counts.get("bad-mac", 0) == 0

    def test_verification_delay_is_disclosure_lag(self, parameters, sender,
                                                  signer):
        receiver = _receiver(sender, signer)
        packets = [sender.send(b"p%d" % i, i * 0.1) for i in range(6)]
        for packet in packets + sender.flush_keys(6):
            receiver.receive(packet, packet.send_time + 0.001)
        verdict = receiver.verdicts[packets[0].seq]
        assert verdict.status == "verified"
        assert verdict.delay == pytest.approx(
            parameters.disclosure_delay, abs=0.05)


class TestLossRecovery:
    def test_lost_disclosure_recovered_from_later_key(self, sender, signer):
        receiver = _receiver(sender, signer)
        packets = [sender.send(b"p%d" % i, i * 0.1) for i in range(8)]
        flush = sender.flush_keys(8)
        # Drop the packet that disclosed K_1 (interval 3's packet).
        survivors = [p for p in packets if p is not packets[2]]
        for packet in survivors + flush:
            receiver.receive(packet, packet.send_time + 0.01)
        assert receiver.verdicts[packets[0].seq].status == "verified"

    def test_all_later_disclosures_lost(self, sender, signer):
        receiver = _receiver(sender, signer)
        packets = [sender.send(b"p%d" % i, i * 0.1) for i in range(4)]
        # Keep only the first two data packets; drop everything that
        # would disclose their keys.
        for packet in packets[:2]:
            receiver.receive(packet, packet.send_time + 0.01)
        assert receiver.verdicts[packets[0].seq].status == "pending"
        assert receiver.pending_count == 2


class TestSecurityCondition:
    def test_late_packet_marked_unsafe(self, parameters, sender, signer):
        receiver = _receiver(sender, signer)
        packet = sender.send(b"late", 0.0)  # interval 1
        # Arrives after K_1's disclosure time (0.2 s).
        receiver.receive(packet, 0.25)
        assert receiver.verdicts[packet.seq].status == "unsafe"

    def test_clock_skew_tightens_condition(self, parameters, signer):
        parameters_skewed = TeslaParameters(
            interval=0.1, lag=2, chain_length=32, max_clock_offset=0.15)
        sender = TeslaSender(parameters_skewed, signer, seed=b"\x05" * 16)
        receiver = _receiver(sender, signer)
        packet = sender.send(b"p", 0.0)
        # Within disclosure time but inside the uncertainty margin.
        receiver.receive(packet, 0.1)
        assert receiver.verdicts[packet.seq].status == "unsafe"

    def test_forged_mac_rejected(self, sender, signer):
        from dataclasses import replace
        receiver = _receiver(sender, signer)
        packet = sender.send(b"genuine", 0.0)
        forged = replace(packet, payload=b"forged!")
        receiver.receive(forged, 0.01)
        for flush_packet in sender.flush_keys(1):
            receiver.receive(flush_packet, flush_packet.send_time + 0.01)
        assert receiver.verdicts[forged.seq].status == "bad-mac"

    def test_forged_key_disclosure_ignored(self, sender, signer):
        from dataclasses import replace
        receiver = _receiver(sender, signer)
        good = sender.send(b"data", 0.2)  # interval 3, discloses K_1
        import repro.schemes.tesla as tesla_module
        interval, tag, idx, _key = tesla_module._decode_extra(
            good.extra, 32)
        forged_extra = tesla_module._encode_extra(
            interval, tag, idx, b"\xff" * 16)
        receiver.receive(replace(good, extra=forged_extra), 0.21)
        # The forged key must not be accepted into the anchor.
        assert receiver._anchor.index == 0


class TestScheme:
    def test_metrics(self):
        scheme = TeslaScheme(TeslaParameters(interval=0.1, lag=7,
                                             chain_length=64))
        metrics = scheme.metrics(64, l_sign=128)
        assert metrics.delay_slots == 7
        assert metrics.message_buffer == 7
        assert metrics.overhead_bytes == pytest.approx(32 + 16 + 128 / 64)

    def test_no_plain_graph(self):
        assert TeslaScheme().build_graph(10) is None

    def test_extended_graph(self):
        graph = TeslaScheme(TeslaParameters(lag=3)).build_extended_graph(5)
        assert graph.lag == 3
        graph.validate()

    def test_sender_refuses_beyond_chain(self, signer):
        parameters = TeslaParameters(interval=0.1, lag=1, chain_length=2)
        sender = TeslaSender(parameters, signer)
        with pytest.raises(SimulationError):
            sender.send(b"too late", 1.0)
