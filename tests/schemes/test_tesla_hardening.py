"""TESLA receiver hardening: replays, forged keys, bogus intervals.

The TESLA security argument assumes the receiver only trusts keys that
authenticate against the bootstrap commitment and never revises a
verdict.  These tests pin those defensive properties against the
adversarial channel's packet classes.
"""

from dataclasses import replace

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.schemes.tesla import (
    TeslaParameters,
    TeslaReceiver,
    TeslaSender,
    _encode_extra,
)


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"tesla-hardening")


@pytest.fixture
def session(signer):
    parameters = TeslaParameters(interval=0.05, lag=2, chain_length=32)
    sender = TeslaSender(parameters, signer, seed=b"\x02" * 16)
    receiver = TeslaReceiver(sender.bootstrap_packet(), signer)
    return sender, receiver


def _run_stream(sender, receiver, count=6):
    packets = [sender.send(b"payload %d" % i, 0.01 + 0.05 * i)
               for i in range(count)]
    for packet in packets:
        receiver.receive(packet, packet.send_time + 0.001)
    last = sender.parameters.interval_of(packets[-1].send_time)
    for packet in sender.flush_keys(last):
        receiver.receive(packet, packet.send_time + 0.001)
    return packets


class TestReplayFinality:
    def test_replay_of_pending_packet_dropped(self, session):
        sender, receiver = session
        packet = sender.send(b"hello", 0.01)
        receiver.receive(packet, 0.011)
        assert receiver.verdicts[packet.seq].status == "pending"
        receiver.receive(packet, 0.012)
        assert receiver.replays_dropped == 1
        assert receiver.pending_count == 1  # not buffered twice

    def test_replay_of_verified_packet_dropped(self, session):
        sender, receiver = session
        packets = _run_stream(sender, receiver)
        assert receiver.verdicts[packets[0].seq].status == "verified"
        receiver.receive(packets[0], 10.0)
        assert receiver.replays_dropped == 1
        assert receiver.verdicts[packets[0].seq].status == "verified"

    def test_seq_colliding_forgery_cannot_overwrite(self, session):
        sender, receiver = session
        packets = _run_stream(sender, receiver)
        forged = replace(packets[2], payload=b"forged payload")
        receiver.receive(forged, 10.0)
        assert receiver.verdicts[packets[2].seq].status == "verified"
        assert receiver.replays_dropped == 1


class TestForgedKeys:
    def test_forged_disclosed_key_rejected(self, session):
        sender, receiver = session
        packet = sender.send(b"hello", 0.01)
        receiver.receive(packet, 0.011)
        # A disclosure-only packet carrying a fabricated key for an
        # in-range index must fail chain authentication.
        fake = replace(
            packet, seq=packet.seq + 50,
            extra=_encode_extra(0, b"\x00" * 32, 3, b"\xde\xad" * 16),
        )
        receiver.receive(fake, 0.2)
        assert receiver.rejected_keys == 1
        # The pending packet is still pending — the fake key must not
        # have flushed (or poisoned) it.
        assert receiver.verdicts[packet.seq].status == "pending"

    def test_key_index_beyond_commitment_rejected(self, session):
        sender, receiver = session
        chain_length = sender.parameters.chain_length
        fake = sender.send(b"x", 0.01)
        fake = replace(
            fake, seq=fake.seq + 50,
            extra=_encode_extra(0, b"\x00" * 32, chain_length + 10_000,
                                b"\x01" * 16),
        )
        receiver.receive(fake, 0.2)
        assert receiver.rejected_keys == 1

    def test_genuine_stream_unaffected_by_forged_keys(self, session):
        sender, receiver = session
        bogus = _encode_extra(0, b"\x00" * 32, 5, b"\xff" * 16)
        template = sender.send(b"seed", 0.01)
        receiver.receive(template, 0.011)
        for i in range(4):
            receiver.receive(replace(template, seq=900 + i, extra=bogus),
                             0.05 * i)
        packets = _run_stream(sender, receiver)
        assert receiver.rejected_keys == 4
        for packet in packets:
            assert receiver.verdicts[packet.seq].status == "verified"


class TestBogusIntervals:
    def test_interval_beyond_chain_not_buffered(self, session):
        sender, receiver = session
        chain_length = sender.parameters.chain_length
        genuine = sender.send(b"x", 0.01)
        _, tag_and_rest = genuine.extra[:12], genuine.extra[12:]
        forged = replace(
            genuine, seq=genuine.seq + 1,
            extra=_encode_extra(chain_length + 7, b"\x00" * 32, 0, b""),
        )
        receiver.receive(forged, 0.02)
        verdict = receiver.verdicts[forged.seq]
        assert verdict.status == "bad-key"
        # It never enters the pending buffer: no key will ever flush it.
        assert receiver.pending_count == 0

    def test_unsafe_packet_flagged_not_buffered(self, session):
        sender, receiver = session
        packet = sender.send(b"x", 0.01)
        # Arrives after its key's disclosure time: security condition
        # fails, so the MAC proves nothing.
        late = sender.parameters.disclosure_time(
            sender.parameters.interval_of(0.01)) + 1.0
        receiver.receive(packet, late)
        assert receiver.verdicts[packet.seq].status == "unsafe"
        assert receiver.pending_count == 0
