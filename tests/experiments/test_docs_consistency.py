"""Documentation stays in lockstep with the code.

DESIGN.md's experiment index, EXPERIMENTS.md's sections and the
README's claims all reference experiment ids and scheme names; these
tests fail when the code moves and the docs don't.
"""

import pathlib
import re

from repro.experiments import ALL_EXPERIMENTS
from repro.schemes.registry import available_schemes

ROOT = pathlib.Path(__file__).resolve().parents[2]


def _read(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


class TestDesignDoc:
    def test_exists_with_inventory(self):
        text = _read("DESIGN.md")
        assert "Experiment index" in text or "experiment index" in text

    def test_paper_figures_all_indexed(self):
        text = _read("DESIGN.md")
        for figure in range(1, 11):
            assert f"fig{figure}" in text.lower() or \
                f"Fig. {figure}" in text, figure

    def test_every_bench_file_mentioned_exists(self):
        text = _read("DESIGN.md")
        for match in re.finditer(r"benchmarks/(test_bench_\w+\.py)", text):
            assert (ROOT / "benchmarks" / match.group(1)).exists(), \
                match.group(1)


class TestExperimentsDoc:
    def test_extension_sections_match_registry(self):
        text = _read("EXPERIMENTS.md")
        for experiment_id in ALL_EXPERIMENTS:
            if experiment_id.startswith("ext-"):
                assert f"`{experiment_id}`" in text, experiment_id

    def test_regeneration_instructions_present(self):
        text = _read("EXPERIMENTS.md")
        assert "repro-experiments" in text


class TestReadme:
    def test_examples_listed_exist(self):
        text = _read("README.md")
        for match in re.finditer(r"`(\w+\.py)`", text):
            name = match.group(1)
            if (ROOT / "examples" / name).exists():
                continue
            assert name in ("setup.py",), f"README references missing {name}"

    def test_registry_schemes_described(self):
        text = _read("README.md").lower()
        for keyword in ("rohatgi", "emss", "tesla", "augmented chain",
                        "wong-lam", "saida"):
            assert keyword in text, keyword

    def test_equation_map_linked(self):
        assert "docs/equations.md" in _read("README.md")
        assert (ROOT / "docs" / "equations.md").exists()


class TestEquationMap:
    def test_every_module_cited_exists(self):
        text = _read("docs/equations.md")
        for match in re.finditer(r"`repro\.([a-z_.]+)`", text):
            dotted = "repro." + match.group(1).rstrip(".")
            parts = dotted.split(".")
            # Accept module paths and module.attr paths.
            candidates = [
                ROOT / "src" / pathlib.Path(*parts).with_suffix(".py"),
                ROOT / "src" / pathlib.Path(*parts[:-1]).with_suffix(".py"),
                ROOT / "src" / pathlib.Path(*parts) / "__init__.py",
            ]
            assert any(c.exists() for c in candidates), dotted

    def test_every_cited_test_file_exists(self):
        text = _read("docs/equations.md")
        for match in re.finditer(r"tests/([\w/]+\.py)", text):
            assert (ROOT / "tests" / match.group(1)).exists(), match.group(1)
