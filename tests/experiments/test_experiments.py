"""Every figure/table experiment runs clean and shows the paper's shapes.

These are the executable assertions behind EXPERIMENTS.md: each
experiment must complete without WARNING notes (a WARNING means a
paper-claimed shape failed to reproduce), and key quantitative shapes
are re-asserted here independently of the experiments' own checks.
"""

import pytest

from repro.experiments import ALL_EXPERIMENTS


@pytest.fixture(scope="module")
def results():
    return {eid: run(fast=True) for eid, run in ALL_EXPERIMENTS.items()}


class TestAllExperimentsRun:
    @pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
    def test_runs_without_warnings(self, results, experiment_id):
        result = results[experiment_id]
        warnings = [n for n in result.notes if "WARNING" in n]
        assert not warnings, warnings

    @pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
    def test_produces_output(self, results, experiment_id):
        result = results[experiment_id]
        assert result.series or result.rows

    @pytest.mark.parametrize("experiment_id", sorted(ALL_EXPERIMENTS))
    def test_renders(self, results, experiment_id):
        text = results[experiment_id].render()
        assert results[experiment_id].experiment_id in text


class TestPaperShapes:
    def test_fig3_monotone_in_alpha(self, results):
        for series in results["fig3"].series.values():
            assert list(series.y) == sorted(series.y, reverse=True)

    def test_fig4_loss_limited_at_generous_ratio(self, results):
        series = results["fig4"].series["alpha=0.2,p=0.3"]
        assert series.y[-1] == pytest.approx(0.7, abs=0.01)

    def test_fig5_q_values_in_range(self, results):
        for series in results["fig5"].series.values():
            assert all(0.0 <= y <= 1.0 for y in series.y)

    def test_fig6_flat_in_b(self, results):
        for row in results["fig6"].rows:
            assert row["tail spread"] <= 0.02

    def test_fig7_m_saturates(self, results):
        for row in results["fig7"].rows:
            span = row["total gain over m"]
            assert row["gain at last m step"] <= max(0.15 * span, 1e-9)

    def test_fig8_ordering(self, results):
        row = results["fig8"].rows[0]
        assert row["rohatgi"] < 0.001
        assert row["emss(2,1)"] > 0.9

    def test_fig9_emss_ac_close(self, results):
        for row in results["fig9"].rows:
            if "max |EMSS - AC| over n" not in row:
                continue
            if row["p"] == 0.1:
                # "very close" at moderate loss.
                assert row["max |EMSS - AC| over n"] < 0.02
            else:
                # At p=0.5 both collapse; AC degrades somewhat slower.
                assert row["max |EMSS - AC| over n"] < 0.3

    def test_fig10_rohatgi_cheapest_delay(self, results):
        rows = {r["scheme"]: r for r in results["fig10"].rows}
        assert rows["rohatgi"]["delay (slots)"] == 0
        assert rows["sign-each"]["bytes/pkt"] > rows["rohatgi"]["bytes/pkt"]

    def test_eq1_contained(self, results):
        for row in results["eq1"].rows:
            assert row["contained"]

    def test_ext_gap_recurrence_upper_bounds(self, results):
        for row in results["ext-gap"].rows:
            assert row["EMSS exact MC"] <= row["EMSS Eq.8"] + 0.03
            assert row["AC exact MC"] <= row["AC Eq.10"] + 0.03

    def test_ext_wire_agreement(self, results):
        for row in results["ext-wire"].rows:
            assert row["wire q_min"] == pytest.approx(
                row["graph q_min"], abs=0.15)
            assert row["wire forged"] == 0

    def test_ext_design_all_satisfied(self, results):
        for row in results["ext-design"].rows:
            assert row["satisfied"], row["method"]
