"""Unit tests for the repro-experiments CLI."""

import pytest

from repro.cli import main
from repro.experiments import ALL_EXPERIMENTS


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert set(out) == set(ALL_EXPERIMENTS)

    def test_run_one(self, capsys):
        assert main(["fig10", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out
        assert "rohatgi" in out

    def test_run_several(self, capsys):
        assert main(["fig3", "fig4", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out
        assert "fig4" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_nothing_to_run(self, capsys):
        assert main([]) == 2
        assert "nothing to run" in capsys.readouterr().err

    def test_json_output(self, capsys):
        import json

        assert main(["fig10", "--fast", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["experiment_id"] == "fig10"
        assert any(row["scheme"] == "rohatgi" for row in payload[0]["rows"])

    def test_json_roundtrips_series(self, capsys):
        import json

        assert main(["fig3", "--fast", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        series = payload[0]["series"]
        assert series
        for curve in series.values():
            assert len(curve["x"]) == len(curve["y"])
