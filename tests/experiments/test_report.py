"""Unit tests for the markdown report generator."""

import io

import pytest

from repro.cli import main
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.common import ExperimentResult
from repro.experiments.report import render_report, write_report


def _fake_experiment(fast=False):
    result = ExperimentResult("figX", "a fake experiment")
    result.rows.append({"scheme": "demo", "q_min": 0.5})
    result.add_series("curve", [1, 2], [0.1, 0.2])
    result.note("an observation")
    return result


def _warning_experiment(fast=False):
    result = ExperimentResult("figY", "a failing experiment")
    result.rows.append({"scheme": "demo", "q_min": 0.0})
    result.note("WARNING: shape broke")
    return result


class TestRenderReport:
    def test_contains_sections_and_content(self):
        text = render_report({"figX": _fake_experiment}, fast=True,
                             timestamp="2026-07-07 00:00 UTC")
        assert "# Reproduction report" in text
        assert "## `figX` — a fake experiment" in text
        assert "demo" in text
        assert "> an observation" in text
        assert "no shape warnings" in text
        assert "2026-07-07 00:00 UTC" in text

    def test_counts_warnings(self):
        text = render_report({"figX": _fake_experiment,
                              "figY": _warning_experiment}, fast=True)
        assert "1 WARNING" in text

    def test_subset_selection(self):
        text = render_report({"figX": _fake_experiment,
                              "figY": _warning_experiment},
                             only=["figX"])
        assert "figY" not in text

    def test_unknown_subset_rejected(self):
        with pytest.raises(KeyError):
            render_report({"figX": _fake_experiment}, only=["nope"])


class TestWriteReport:
    def test_writes_to_path(self, tmp_path):
        path = str(tmp_path / "report.md")
        write_report(path, {"figX": _fake_experiment})
        with open(path, encoding="utf-8") as handle:
            assert "figX" in handle.read()

    def test_writes_to_handle(self):
        buffer = io.StringIO()
        write_report(buffer, {"figX": _fake_experiment})
        assert "figX" in buffer.getvalue()


class TestCliReport:
    def test_cli_report_flag(self, tmp_path, capsys):
        path = str(tmp_path / "out.md")
        assert main(["fig10", "--fast", "--report", path]) == 0
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        assert "fig10" in text
        assert "rohatgi" in text

    def test_cli_report_all_real_experiments_fast(self, tmp_path):
        """The full report runs every real experiment without warnings."""
        path = str(tmp_path / "full.md")
        assert main(["--all", "--fast", "--report", path]) == 0
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        for experiment_id in ALL_EXPERIMENTS:
            assert f"`{experiment_id}`" in text
        assert "no shape warnings" in text
