"""Unit tests for the experiment result infrastructure."""

import pytest

from repro.experiments.common import ExperimentResult, Series, format_table


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("s", (1, 2), (1.0,))

    def test_extrema(self):
        series = Series("s", (1, 2, 3), (0.5, 0.1, 0.9))
        assert series.y_min == 0.1
        assert series.y_max == 0.9

    def test_as_rows(self):
        rows = Series("q", (1, 2), (0.5, 0.6)).as_rows()
        assert rows == [{"x": 1, "q": 0.5}, {"x": 2, "q": 0.6}]


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(empty table)"

    def test_columns_in_first_appearance_order(self):
        text = format_table([{"b": 1, "a": 2}, {"c": 3}])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a") < header.index("c")

    def test_float_rounding(self):
        text = format_table([{"v": 0.123456789}], float_digits=3)
        assert "0.123" in text
        assert "0.1234" not in text

    def test_missing_cells_blank(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert text.count("\n") == 3  # header, divider, two rows


class TestExperimentResult:
    def test_add_series_and_render(self):
        result = ExperimentResult("figX", "demo")
        result.add_series("curve", [1, 2], [0.1, 0.2])
        result.note("observation")
        text = result.render()
        assert "figX" in text
        assert "curve" in text
        assert "observation" in text

    def test_series_table_merges_on_x(self):
        result = ExperimentResult("figX", "demo")
        result.add_series("a", [1, 2], [0.1, 0.2])
        result.add_series("b", [1, 2], [0.3, 0.4])
        table = result.series_table("n")
        assert table == [
            {"n": 1, "a": 0.1, "b": 0.3},
            {"n": 2, "a": 0.2, "b": 0.4},
        ]

    def test_series_table_empty(self):
        assert ExperimentResult("figX", "demo").series_table() == []
