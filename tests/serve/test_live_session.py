"""End-to-end acceptance: determinism, adaptation, model conformance.

One live session — 8 receivers on the local transport under virtual
time, Bernoulli loss ramping 0.05 → 0.3 mid-stream with the
"pollution" adversary on every channel — is the module-scoped
fixture; the tests assert the PR's acceptance criteria against it:

* two runs of the same config produce byte-identical per-receiver
  verification transcripts;
* the adaptive controller demonstrably switches scheme parameters
  when the injected loss rises, asserted on the run manifest;
* the measured per-position ``q_i`` at the adapted parameters sits
  within 3 standard errors of the analytic model evaluated at the
  effective loss rate ``p_eff = 1 - (1-p)(1-c)``;
* no forged content is ever accepted (end-to-end soundness).
"""

import pytest

from repro.analysis.conformance import (
    attack_mix,
    analytic_q_profile,
    deviation_rows,
    effective_loss_rate,
)
from repro.schemes.registry import make_scheme
from repro.serve.service import ServeConfig, run_live_session

RAMP_BLOCK = 20
CONFIG = ServeConfig(
    receivers=8, blocks=40, block_size=12,
    loss_schedule=((0, 0.05), (RAMP_BLOCK, 0.3)),
    attack="pollution", seed=2003,
)


@pytest.fixture(scope="module")
def session():
    return run_live_session(CONFIG)


@pytest.fixture(scope="module")
def rerun():
    return run_live_session(CONFIG)


class TestDeterminism:
    def test_transcripts_byte_identical_across_runs(self, session, rerun):
        assert set(session.transcripts) == set(rerun.transcripts)
        for receiver_id in session.transcripts:
            assert (session.transcripts[receiver_id]
                    == rerun.transcripts[receiver_id])

    def test_every_receiver_closed_every_block(self, session):
        for receiver_id, transcript in session.transcripts.items():
            lines = transcript.decode("utf-8").splitlines()
            assert len(lines) == CONFIG.blocks, receiver_id

    def test_adaptation_trace_identical_across_runs(self, session, rerun):
        first = [event.to_dict() for event in session.events]
        second = [event.to_dict() for event in rerun.events]
        assert first == second


class TestAdaptation:
    def test_controller_switches_after_loss_ramp(self, session):
        trace = session.manifest.parameters["adaptation"]
        assert len(trace) == CONFIG.blocks
        post_ramp = [entry for entry in trace
                     if entry["block_id"] >= RAMP_BLOCK and entry["switched"]]
        assert post_ramp, "no parameter switch after the loss ramp"
        # The re-design is a genuine escalation: the adapted point is
        # designed for a harsher channel than the pre-ramp one.
        before = [entry for entry in trace
                  if entry["block_id"] < RAMP_BLOCK]
        assert max(e["p_design"] for e in post_ramp) > max(
            e["p_design"] for e in before)

    def test_adapted_parameters_differ_from_initial(self, session):
        trace = session.manifest.parameters["adaptation"]
        assert trace[0]["parameters"] != trace[-1]["parameters"]

    def test_every_design_met_the_target(self, session):
        for entry in session.manifest.parameters["adaptation"]:
            if entry["feasible"]:
                assert entry["predicted_q_min"] >= CONFIG.q_min_target


class TestSoundnessEndToEnd:
    def test_no_forged_content_ever_accepted(self, session):
        assert session.forged_accepted == 0
        for stats in session.stats.values():
            assert stats.forged_accepted == 0

    def test_attack_actually_ran(self, session):
        # The invariant is vacuous unless the adversary was live: the
        # pollution mix must have cost real deliveries, and transcripts
        # must show losses/unverified arrivals, not a clean stream.
        expected = CONFIG.receivers * CONFIG.blocks * CONFIG.block_size
        assert session.delivered < expected
        statuses = b"".join(session.transcripts.values())
        assert b'"l"' in statuses or b'"a"' in statuses


class TestUdpTransport:
    def test_udp_session_end_to_end(self):
        # Real datagram endpoints on loopback: no virtual time, no
        # determinism promise, but the full sender → socket → receiver
        # → audit pipeline must close every block soundly.
        config = ServeConfig(receivers=2, blocks=3, block_size=6,
                             transport="udp", loss_schedule=((0, 0.1),),
                             seed=3, timeout_s=30.0)
        result = run_live_session(config)
        assert result.forged_accepted == 0
        for transcript in result.transcripts.values():
            assert len(transcript.decode("utf-8").splitlines()) == 3


class TestModelConformance:
    def test_adapted_q_profile_within_3_se(self, session):
        # The dominant phase at the post-ramp loss rate: the adapted
        # scheme streamed there for most of the second half.
        candidates = {phase: stats for phase, stats in session.stats.items()
                      if phase.endswith("@p=0.3")}
        assert candidates
        phase = max(candidates, key=lambda ph: sum(
            t.received for t in candidates[ph].tallies.values()))
        stats = candidates[phase]
        spec = phase.split("@p=")[0]
        scheme = make_scheme(spec)
        p_eff = effective_loss_rate(0.3, attack_mix("pollution"))
        analytic = analytic_q_profile(scheme, CONFIG.block_size, p_eff)
        rows = deviation_rows(stats, analytic, label=phase)
        worst = max(row["deviation_se"] for row in rows)
        assert worst <= 3.0, (
            f"{phase}: worst deviation {worst:.2f} SE vs model at "
            f"p_eff={p_eff:.3f}")

    def test_predicted_q_min_tracks_model(self, session):
        # The optimizer's promise at the adapted point is the same
        # analytic model the conformance suite validates; the live
        # empirical q_min must come in at or above it minus 3 SE.
        trace = session.manifest.parameters["adaptation"]
        final = trace[-1]
        assert final["predicted_q_min"] >= CONFIG.q_min_target
