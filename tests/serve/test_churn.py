"""End-to-end dynamic membership: the churn acceptance criteria.

One storm session — 4 initial receivers plus 4 joinable spares on the
local transport, the seeded :class:`~repro.serve.membership.\
MembershipPlan` admitting, draining and killing members mid-stream —
is the module fixture; the tests assert the PR's acceptance criteria
against it and against the attacked/flood/flap variants:

* two runs of any churn config produce byte-identical per-receiver
  transcripts and adaptation traces (departures included);
* every member's transcript covers exactly its active interval: first
  line at its join block, last line at the block before it departed —
  a crash victim never settles the block it died under;
* no forged content is ever accepted across the attack-mix x
  churn-spec matrix (bootstrap bursts riding on every join);
* a late joiner's post-join ``q_i`` sits within 3 standard errors of
  the analytic model — joining mid-session costs bootstrap alignment,
  not authentication probability.
"""

import json
from dataclasses import replace

import pytest

from repro.analysis.conformance import analytic_q_profile, deviation_rows
from repro.exceptions import SimulationError
from repro.schemes.registry import make_scheme
from repro.serve.adaptive import AdaptiveController
from repro.serve.cli import _build_parser, config_from_args
from repro.serve.loadgen import run_loadgen
from repro.serve.membership import MembershipPlan
from repro.serve.receiver import LossReport
from repro.serve.service import ServeConfig, run_live_session
from repro.simulation.stats import SimulationStats

CONFIG = ServeConfig(receivers=4, blocks=24, block_size=10,
                     loss_schedule=((0, 0.1),), churn="storm", seed=2003)

ATTACKED = replace(CONFIG, attack="storm")

#: Constant loss, fixed scheme, no adversary: the clean bootstrap
#: conformance setting for the 3-SE late-joiner gate.
FLOOD = ServeConfig(receivers=4, blocks=48, block_size=12,
                    loss_schedule=((0, 0.1),), churn="flood:8",
                    adaptive=False, seed=2003)


@pytest.fixture(scope="module")
def session():
    return run_live_session(CONFIG)


@pytest.fixture(scope="module")
def rerun():
    return run_live_session(CONFIG)


@pytest.fixture(scope="module")
def plan():
    return MembershipPlan.from_spec(CONFIG.churn, CONFIG.receivers,
                                    CONFIG.blocks, CONFIG.seed)


@pytest.fixture(scope="module")
def flood_session():
    return run_live_session(FLOOD)


def _blocks_settled(transcript):
    """The sorted block ids a member's transcript settles."""
    return [json.loads(line)["b"]
            for line in transcript.decode("utf-8").splitlines()]


class TestDeterminism:
    def test_transcripts_byte_identical_across_runs(self, session, rerun):
        assert set(session.transcripts) == set(rerun.transcripts)
        for receiver_id in session.transcripts:
            assert (session.transcripts[receiver_id]
                    == rerun.transcripts[receiver_id])

    def test_adaptation_trace_identical_across_runs(self, session, rerun):
        assert ([e.to_dict() for e in session.events]
                == [e.to_dict() for e in rerun.events])

    def test_attacked_churn_is_deterministic_too(self):
        small = replace(ATTACKED, blocks=12)
        one = run_live_session(small)
        two = run_live_session(small)
        assert one.transcripts == two.transcripts
        assert one.forged_accepted == two.forged_accepted == 0


class TestMembershipExecution:
    def test_manifest_records_the_plan(self, session, plan):
        membership = session.manifest.parameters["membership"]
        assert membership == plan.describe()
        assert session.manifest.parameters["churn"] == "storm"

    def test_plan_actually_churned(self, plan):
        # The fixture seed must exercise all three transition kinds,
        # or the remaining assertions are vacuous.
        counts = plan.counts()
        assert counts["join"] > 0
        assert counts["leave"] + counts["crash"] > 0

    def test_departed_members_keep_their_records(self, session, plan):
        ever_active = set(plan.initial_ids) | set(plan.join_blocks)
        assert set(session.transcripts) == ever_active

    def test_transcripts_cover_exactly_the_active_interval(
            self, session, plan):
        joins = plan.join_blocks
        departures = {e.receiver_id: e.block for e in plan.events
                      if e.kind in ("leave", "crash")}
        for receiver_id, transcript in session.transcripts.items():
            settled = _blocks_settled(transcript)
            first = joins.get(receiver_id, 0)
            # A leaver detaches at the boundary before its block; a
            # crash victim dies before reading it: either way the
            # last settled block is the one before the departure.
            last = departures.get(receiver_id, CONFIG.blocks) - 1
            assert settled == list(range(first, last + 1)), receiver_id

    def test_membership_counters_match_the_plan(self):
        # Counters need a live registry, which loadgen installs.
        result = run_loadgen(replace(CONFIG, blocks=12))
        run = result.metrics_payload["runs"][0]
        counts = run["manifest"]["parameters"]["membership"]["counts"]
        assert sum(counts.values()) > 0
        counters = run["metrics"]["counters"]
        for kind, total in counts.items():
            if total:
                assert counters[f"serve.membership.{kind}"] == total


class TestSoundnessUnderChurn:
    @pytest.mark.parametrize("attack", ["pollution", "dos", "storm"])
    @pytest.mark.parametrize("churn", ["storm", "flood:3", "flap:2"])
    def test_no_forged_content_accepted(self, attack, churn):
        config = ServeConfig(receivers=4, blocks=10, block_size=8,
                             loss_schedule=((0, 0.1),), attack=attack,
                             churn=churn, seed=2003)
        result = run_live_session(config)
        assert result.forged_accepted == 0
        for stats in result.stats.values():
            assert stats.forged_accepted == 0

    def test_bootstrap_burst_is_live_on_join_blocks(self):
        # The flood boundary admits every spare at once under the
        # pollution mix; the per-join bootstrap bursts must inject
        # *more* attack traffic than the same session's base mix
        # alone would (the wrapper arms one extra plan per join cell).
        config = ServeConfig(receivers=2, blocks=6, block_size=8,
                             loss_schedule=((0, 0.1),), attack="pollution",
                             churn="flood:3", seed=2003)
        burst = run_loadgen(config)
        injected = burst.metrics_payload["runs"][0]["metrics"]["counters"][
            "serve.attack.injected"]
        assert injected > 0
        assert burst.ok


class TestLateJoinConformance:
    def test_joiners_settle_every_post_join_block(self, flood_session):
        plan = MembershipPlan.from_spec(FLOOD.churn, FLOOD.receivers,
                                        FLOOD.blocks, FLOOD.seed)
        for joiner, block in plan.join_blocks.items():
            settled = _blocks_settled(flood_session.transcripts[joiner])
            assert settled == list(range(block, FLOOD.blocks))

    def test_late_joiner_q_profile_within_3_se(self, flood_session):
        plan = MembershipPlan.from_spec(FLOOD.churn, FLOOD.receivers,
                                        FLOOD.blocks, FLOOD.seed)
        p = FLOOD.loss_schedule[0][1]
        for joiner in plan.join_blocks:
            transcript = flood_session.transcripts[joiner]
            stats = SimulationStats()
            phases = set()
            for line in transcript.decode("utf-8").splitlines():
                record = json.loads(line)
                phases.add(record["phase"])
                for position, (seq, status, when) in enumerate(
                        record["events"], start=1):
                    stats.record(position, status in ("a", "v"),
                                 status == "v")
            # adaptive=False pins one scheme, hence one phase.
            assert len(phases) == 1
            phase = phases.pop()
            scheme = make_scheme(phase.split("@p=")[0])
            analytic = analytic_q_profile(scheme, FLOOD.block_size, p)
            rows = deviation_rows(stats, analytic, label=f"{joiner}:{phase}")
            worst = max(row["deviation_se"] for row in rows)
            assert worst <= 3.0, (
                f"{joiner}: post-join q_i off the model by "
                f"{worst:.2f} SE at p={p}")


class TestLeaverFolding:
    @staticmethod
    def _report(receiver_id, block_id, received, expected=10):
        return LossReport(receiver_id=receiver_id, block_id=block_id,
                          expected=expected, received=received,
                          window_rate=0.0, ewma_rate=0.0)

    def test_retired_member_folds_out_of_the_design_estimate(self):
        controller = AdaptiveController(block_size=8, membership_aware=True)
        for block_id in range(3):
            controller.observe(block_id, [
                self._report("lossy", block_id, received=2),
                self._report("clean", block_id, received=10),
            ])
        assert controller.estimator.window_rate == pytest.approx(0.4)
        assert controller.retire_receiver("lossy") is True
        # The leaver's stale samples are gone at once, not aged out.
        assert controller.estimator.window_rate == 0.0
        assert controller.retire_receiver("lossy") is False

    def test_flat_controller_declines_to_retire(self):
        controller = AdaptiveController(block_size=8)
        controller.observe(0, [self._report("r00", 0, received=9)])
        assert controller.retire_receiver("r00") is False


class TestConfigAndCli:
    def test_churn_requires_per_block_signing(self):
        with pytest.raises(SimulationError) as err:
            ServeConfig(receivers=2, churn="storm", batch_size=4)
        assert "batch_size" in str(err.value)

    def test_bad_spec_fails_at_construction(self):
        with pytest.raises(SimulationError):
            ServeConfig(receivers=2, churn="drizzle")

    @pytest.mark.parametrize("soak", [False, True])
    def test_cli_round_trip(self, soak):
        parser = _build_parser("test", soak=soak)
        args = parser.parse_args(["--receivers", "2", "--blocks", "4",
                                  "--churn", "flap:1"])
        assert config_from_args(args).churn == "flap:1"
        bare = parser.parse_args(["--receivers", "2"])
        assert config_from_args(bare).churn is None

    def test_loadgen_summary_reports_membership(self):
        config = ServeConfig(receivers=2, blocks=6, block_size=8,
                             churn="flap:1", seed=5)
        result = run_loadgen(config)
        assert result.summary["churn"] == "flap:1"
        assert result.summary["membership_counts"]["join"] == 1
        assert result.summary["final_active"] == 2

    def test_loadgen_summary_omits_membership_without_churn(self):
        result = run_loadgen(ServeConfig(receivers=2, blocks=3,
                                         block_size=8, seed=5))
        assert "churn" not in result.summary
        assert "membership_counts" not in result.summary
