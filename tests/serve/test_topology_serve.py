"""Topology serve sessions: differential identity, redundancy, adaptation.

The acceptance criteria this file pins:

* a star-topology session is **byte-identical** to the independent
  per-receiver channel session under the same config — the edge-seed
  derivation reuses the per-(receiver, block) formula with leaf edges
  indexed by receiver order, so the differential must be exact;
* topology sessions are deterministic: double runs reproduce every
  transcript byte, and the pinned shared-spine session matches its
  versioned golden record (``tests/data/traces/topology-session.
  expected.json``).  The serve loop is single-process by design;
  worker-count invariance of the underlying per-(edge, block) draws
  is pinned at the trial-shard layer
  (``tests/topology/test_conformance_topology.py``);
* ``k = 2`` redundant trees strictly improve the delivered-verified
  ratio over ``k = 1`` on a dual-plane spine at loss ≥ 0.2, with the
  duplicate copies suppressed at the receiver and accounted;
* per-subtree adaptation beats one global controller on a
  heterogeneous (hot-spine) topology;
* loss reports carry subtree labels and the grouped sender keeps
  per-group phases apart.
"""

import json
import os

import pytest

from repro.exceptions import SimulationError
from repro.serve.cli import config_from_args, _build_parser
from repro.serve.loadgen import run_loadgen
from repro.serve.service import ServeConfig, run_live_session
from repro.simulation.golden import (
    record_topology_session,
    topology_session_path,
)

TRACE_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "data",
                         "traces")

BASE = dict(receivers=6, blocks=8, block_size=8, seed=11,
            loss_schedule=((0, 0.1),))


@pytest.fixture(scope="module")
def plain_session():
    return run_live_session(ServeConfig(**BASE))


@pytest.fixture(scope="module")
def star_session():
    return run_live_session(ServeConfig(**BASE, topology="star"))


class TestStarDifferential:
    def test_star_transcripts_byte_identical_to_independent(
            self, plain_session, star_session):
        assert set(star_session.transcripts) == set(plain_session.transcripts)
        for receiver_id in plain_session.transcripts:
            assert (star_session.transcripts[receiver_id]
                    == plain_session.transcripts[receiver_id]), receiver_id

    def test_star_attacked_transcripts_byte_identical(self):
        attacked = dict(BASE, attack="pollution")
        plain = run_live_session(ServeConfig(**attacked))
        star = run_live_session(ServeConfig(**attacked, topology="star"))
        assert star.transcripts == plain.transcripts
        assert star.forged_accepted == 0

    def test_double_run_reproduces_every_byte(self, star_session):
        rerun = run_live_session(ServeConfig(**BASE, topology="star"))
        assert rerun.transcripts == star_session.transcripts


class TestPinnedTopologySession:
    def test_pinned_spine_session_matches_golden_record(self):
        with open(topology_session_path(TRACE_DIR), "r",
                  encoding="utf-8") as handle:
            stored = json.load(handle)
        live = record_topology_session()
        assert live == stored, (
            "the pinned topology session diverged from its golden "
            "record — edge seeding, tree construction or grouped "
            "packetization changed; if intentional, regenerate with "
            "'PYTHONPATH=src python -m repro.simulation.golden "
            "tests/data/traces'")


def _delivered_verified_ratio(result, config) -> float:
    verified = sum(tally.verified for stats in result.stats.values()
                   for tally in stats.tallies.values())
    return verified / (config.blocks * config.block_size * config.receivers)


class TestRedundantTrees:
    @pytest.fixture(scope="class")
    def k_sessions(self):
        base = dict(receivers=8, blocks=16, block_size=12, seed=7,
                    loss_schedule=((0, 0.25),), topology="dualspine:2")
        k1 = ServeConfig(**base, trees=1)
        k2 = ServeConfig(**base, trees=2)
        return (k1, run_live_session(k1)), (k2, run_live_session(k2))

    def test_k2_strictly_improves_delivered_verified_ratio(self,
                                                           k_sessions):
        (k1, r1), (k2, r2) = k_sessions
        ratio_1 = _delivered_verified_ratio(r1, k1)
        ratio_2 = _delivered_verified_ratio(r2, k2)
        assert ratio_2 > ratio_1, (
            f"k=2 ratio {ratio_2:.4f} does not beat k=1 {ratio_1:.4f} "
            f"at spine loss 0.25")

    def test_duplicates_suppressed_only_with_redundancy(self, k_sessions):
        (_k1, r1), (_k2, r2) = k_sessions
        assert r1.duplicates_suppressed == 0
        assert r2.duplicates_suppressed > 0

    def test_redundancy_requires_a_topology(self):
        with pytest.raises(SimulationError):
            ServeConfig(**BASE, trees=2)


class TestSubtreeAdaptation:
    HOT = "spine:2:3,1"
    RAMP = dict(receivers=8, blocks=24, block_size=12, seed=7,
                loss_schedule=((0, 0.05), (8, 0.15), (16, 0.3)))

    @pytest.fixture(scope="class")
    def sessions(self):
        global_cfg = ServeConfig(**self.RAMP, topology=self.HOT)
        sub_cfg = ServeConfig(**self.RAMP, topology=self.HOT,
                              subtree_adaptive=True)
        return ((global_cfg, run_live_session(global_cfg)),
                (sub_cfg, run_live_session(sub_cfg)))

    def test_subtree_adaptation_beats_global_on_hot_spine(self, sessions):
        (global_cfg, global_run), (sub_cfg, sub_run) = sessions
        global_ratio = _delivered_verified_ratio(global_run, global_cfg)
        sub_ratio = _delivered_verified_ratio(sub_run, sub_cfg)
        assert sub_ratio > global_ratio, (
            f"per-subtree {sub_ratio:.4f} does not beat global "
            f"{global_ratio:.4f} on a hot spine")

    def test_reports_carry_subtree_labels(self, sessions):
        (_cfg, _global_run), (_sub_cfg, sub_run) = sessions
        labels = {report.subtree
                  for reports in sub_run.reports.values()
                  for report in reports}
        assert labels == {"s00", "s01"}

    def test_grouped_phases_stay_apart(self, sessions):
        _, (_sub_cfg, sub_run) = sessions
        groups = {phase.split("@")[1] for phase in sub_run.stats}
        assert groups == {"s00", "s01"}

    def test_events_are_stamped_per_group(self, sessions):
        _, (_sub_cfg, sub_run) = sessions
        assert {event.group for event in sub_run.events} == {"s00", "s01"}
        for event in sub_run.events:
            assert event.to_dict()["group"] in ("s00", "s01")

    def test_hot_subtree_designs_heavier_than_clean(self, sessions):
        # Both groups saturate at the design ceiling once the ramp hits
        # 0.3, so compare the whole trajectory: the 3x-hot subtree must
        # never design lighter than its clean sibling and must design
        # strictly heavier on average.
        _, (_sub_cfg, sub_run) = sessions
        trajectory = {"s00": [], "s01": []}
        for event in sub_run.events:
            trajectory[event.group].append(event.p_design)
        paired = list(zip(trajectory["s00"], trajectory["s01"]))
        assert all(hot >= clean for hot, clean in paired)
        assert sum(trajectory["s00"]) > sum(trajectory["s01"]), (
            "the 3x-hot subtree should track a heavier design point")

    def test_validation_gates(self):
        with pytest.raises(SimulationError):
            ServeConfig(**BASE, subtree_adaptive=True)  # no topology
        with pytest.raises(SimulationError):
            ServeConfig(**BASE, topology="spine:2", subtree_adaptive=True,
                        adaptive=False)
        with pytest.raises(SimulationError):
            ServeConfig(**BASE, topology="spine:2", subtree_adaptive=True,
                        batch_size=4)


class TestCliAndLoadgen:
    def test_cli_flags_round_trip(self):
        parser = _build_parser("test-serve", soak=False)
        args = parser.parse_args([
            "--topology", "spine:2:3,1", "--trees", "2",
            "--subtree-adaptive", "--receivers", "4",
        ])
        # trees=2 with a spine spec is valid config-side; the parse
        # itself must carry all three knobs through.
        config = config_from_args(args)
        assert config.topology == "spine:2:3,1"
        assert config.trees == 2
        assert config.subtree_adaptive is True

    def test_loadgen_summary_reports_topology(self):
        config = ServeConfig(receivers=4, blocks=4, block_size=8, seed=11,
                             topology="dualspine:2", trees=2,
                             loss_schedule=((0, 0.2),))
        result = run_loadgen(config)
        assert result.ok
        assert result.summary["topology"] == "dualspine:2"
        assert result.summary["trees"] == 2
        assert result.summary["subtree_adaptive"] is False
        assert result.summary["duplicates_suppressed"] \
            == result.session.duplicates_suppressed > 0

    def test_loadgen_summary_omits_topology_when_absent(self):
        config = ServeConfig(receivers=2, blocks=2, block_size=6, seed=11)
        result = run_loadgen(config)
        assert "topology" not in result.summary
