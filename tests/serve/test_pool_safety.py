"""ReceiverPool failure safety and membership mechanics.

The regression this file pins: a receiver session that raises
mid-block must cancel its sibling tasks and surface the error through
:meth:`~repro.serve.receiver.ReceiverPool.wait_block` /
:meth:`~repro.serve.receiver.ReceiverPool.join` — before this, one
broken session left the per-block barrier waiting forever.  Every
barrier await here sits under a hard ``asyncio.wait_for`` timeout, so
a reintroduced deadlock fails the test instead of hanging the suite.
"""

import asyncio

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import SimulationError
from repro.faults import WireDelivery
from repro.serve.receiver import ReceiverPool
from repro.serve.transport import ControlFrame, LocalTransport, encode_control

IDS = ["r00", "r01", "r02"]
TIMEOUT = 5.0


def _control(block_id, final=False):
    frame = ControlFrame(block_id=block_id, base_seq=1, last_seq=2,
                         scheme="sign-each", phase="test", intact=(),
                         digests=(), final=final)
    return WireDelivery(arrival_time=0.0, data=encode_control(frame),
                        kind="control", seq_hint=None)


async def _pool(ids=IDS):
    transport = LocalTransport()
    await transport.start(ids)
    pool = ReceiverPool(ids, HmacStubSigner(key=b"pool-safety"))
    pool.start(transport)
    return transport, pool


def _poison(pool, receiver_id):
    """Make one session raise on its next block close."""
    def boom(frame, now=None):
        raise RuntimeError("session exploded")
    pool.sessions[receiver_id].close_block = boom


class TestFailureSafety:
    def test_raising_session_fails_wait_block_instead_of_hanging(self):
        async def run():
            transport, pool = await _pool()
            _poison(pool, "r01")
            for receiver_id in IDS:
                await transport.send(receiver_id, [_control(0)])
            # r01 never reports block 0, so without the failure race
            # this barrier would wait forever.
            with pytest.raises(RuntimeError, match="session exploded"):
                await asyncio.wait_for(pool.wait_block(0), timeout=TIMEOUT)
            # The siblings were cancelled, not left running.
            for _ in range(3):
                await asyncio.sleep(0)
            assert pool.active_ids == []
            await transport.close()
        asyncio.run(run())

    def test_failure_surfaces_through_join(self):
        async def run():
            transport, pool = await _pool()
            _poison(pool, "r01")
            await transport.send("r01", [_control(0)])
            with pytest.raises(RuntimeError, match="session exploded"):
                await asyncio.wait_for(pool.join(), timeout=TIMEOUT)
            await transport.close()
        asyncio.run(run())

    def test_later_waits_keep_raising_the_recorded_failure(self):
        async def run():
            transport, pool = await _pool()
            _poison(pool, "r01")
            await transport.send("r01", [_control(0)])
            with pytest.raises(RuntimeError):
                await asyncio.wait_for(pool.wait_block(0), timeout=TIMEOUT)
            with pytest.raises(RuntimeError):
                await asyncio.wait_for(pool.wait_block(1), timeout=TIMEOUT)
            await transport.close()
        asyncio.run(run())

    def test_healthy_pool_still_releases_the_barrier(self):
        async def run():
            transport, pool = await _pool()
            for receiver_id in IDS:
                await transport.send(receiver_id, [_control(0)])
            reports = await asyncio.wait_for(pool.wait_block(0),
                                             timeout=TIMEOUT)
            assert [r.receiver_id for r in reports] == IDS
            for receiver_id in IDS:
                await transport.send(receiver_id, [_control(-1, final=True)])
            await asyncio.wait_for(pool.join(), timeout=TIMEOUT)
            await transport.close()
        asyncio.run(run())


class TestMembershipMechanics:
    def test_crash_shrinks_the_barrier_set(self):
        async def run():
            transport, pool = await _pool()
            await transport.send("r00", [_control(0)])
            await transport.send("r02", [_control(0)])
            await pool.crash("r01")
            assert pool.active_ids == ["r00", "r02"]
            # The barrier releases on the survivors alone — the dead
            # member's missing report cannot wedge it.
            reports = await asyncio.wait_for(pool.wait_block(0),
                                             timeout=TIMEOUT)
            assert [r.receiver_id for r in reports] == ["r00", "r02"]
            # The victim's record survives for the session audit.
            assert "r01" in pool.sessions
            await transport.close()
        asyncio.run(run())

    def test_admit_spawns_into_a_started_pool(self):
        async def run():
            transport, pool = await _pool()
            await transport.open_endpoint("r03")
            pool.admit("r03")
            assert "r03" in pool.active_ids
            for receiver_id in IDS + ["r03"]:
                await transport.send(receiver_id, [_control(0)])
            reports = await asyncio.wait_for(pool.wait_block(0),
                                             timeout=TIMEOUT)
            assert [r.receiver_id for r in reports] == IDS + ["r03"]
            await transport.close()
        asyncio.run(run())

    def test_members_never_rejoin_under_one_identity(self):
        async def run():
            transport, pool = await _pool()
            with pytest.raises(SimulationError):
                pool.admit("r00")
            await transport.close()
        asyncio.run(run())

    def test_retire_drains_the_leaver_and_keeps_its_record(self):
        async def run():
            transport, pool = await _pool()
            await transport.close_endpoint("r01")
            await asyncio.wait_for(pool.retire("r01"), timeout=TIMEOUT)
            assert pool.active_ids == ["r00", "r02"]
            assert "r01" in pool.sessions
            await transport.close()
        asyncio.run(run())

    def test_retire_finished_session_is_quiet(self):
        async def run():
            transport, pool = await _pool()
            await transport.send("r01", [_control(-1, final=True)])
            for _ in range(3):
                await asyncio.sleep(0)
            assert "r01" not in pool.active_ids
            await asyncio.wait_for(pool.retire("r01"), timeout=TIMEOUT)
            await transport.close()
        asyncio.run(run())

    def test_unknown_ids_are_loud(self):
        async def run():
            transport, pool = await _pool()
            with pytest.raises(SimulationError):
                await pool.retire("ghost")
            with pytest.raises(SimulationError):
                await pool.crash("ghost")
            await transport.close()
        asyncio.run(run())
