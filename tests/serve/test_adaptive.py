"""Adaptive controller units: quantization, switching, infeasibility."""

import pytest

from repro.exceptions import SimulationError
from repro.serve.adaptive import DEFAULT_P_GRID, AdaptiveController
from repro.serve.receiver import LossReport


def _report(block_id, lost, total, receiver_id="r00"):
    return LossReport(receiver_id=receiver_id, block_id=block_id,
                      expected=total, received=total - lost,
                      window_rate=0.0, ewma_rate=0.0)


class TestQuantization:
    def test_rounds_up_to_grid(self):
        controller = AdaptiveController(block_size=12)
        assert controller.quantize(0.0) == 0.02
        assert controller.quantize(0.06) == 0.1
        assert controller.quantize(0.3) == 0.3

    def test_clamps_above_grid(self):
        controller = AdaptiveController(block_size=12)
        assert controller.quantize(0.9) == DEFAULT_P_GRID[-1]

    def test_grid_must_be_sorted(self):
        with pytest.raises(SimulationError):
            AdaptiveController(block_size=12, p_grid=(0.3, 0.1))

    def test_estimate_mode_validated(self):
        with pytest.raises(SimulationError):
            AdaptiveController(block_size=12, estimate="median")


class TestInitialDesign:
    def test_initial_choice_matches_optimizer(self):
        controller = AdaptiveController(block_size=12, initial_p=0.05)
        assert controller.choice.scheme == "emss"
        assert controller.choice.q_min >= 0.75
        assert controller.scheme.name == "emss{0}".format(
            "(%d,%d)" % controller.choice.parameters)

    def test_p_design_starts_quantized(self):
        controller = AdaptiveController(block_size=12, initial_p=0.04)
        assert controller.p_design == 0.05


class TestSwitching:
    def test_rising_loss_switches_parameters(self):
        controller = AdaptiveController(block_size=12, initial_p=0.02)
        start = controller.choice.parameters
        # Saturate the window with heavy loss; the design point must
        # move up the grid and the parameters must change.
        event = None
        for block_id in range(4):
            event = controller.observe(block_id,
                                       [_report(block_id, 30, 100)])
        assert event.p_design >= 0.3
        assert controller.choice.parameters != start
        assert any(e.switched for e in controller.events)
        assert controller.choice.q_min >= 0.75

    def test_stable_loss_never_switches(self):
        controller = AdaptiveController(block_size=12, initial_p=0.05)
        for block_id in range(6):
            controller.observe(block_id, [_report(block_id, 5, 100)])
        assert not any(e.switched for e in controller.events)
        assert all(e.p_design == 0.05 for e in controller.events)

    def test_reports_folded_in_sorted_receiver_order(self):
        a = AdaptiveController(block_size=12, initial_p=0.05)
        b = AdaptiveController(block_size=12, initial_p=0.05)
        reports = [_report(0, 3, 50, "r01"), _report(0, 20, 50, "r00")]
        a.observe(0, reports)
        b.observe(0, list(reversed(reports)))
        assert a.events[-1].p_hat == b.events[-1].p_hat

    def test_event_serializes_for_manifest(self):
        controller = AdaptiveController(block_size=12)
        event = controller.observe(0, [_report(0, 0, 100)])
        payload = event.to_dict()
        assert payload["block_id"] == 0
        assert payload["parameters"] == list(event.parameters)
        assert isinstance(payload["switched"], bool)


class TestInfeasibility:
    def test_infeasible_point_keeps_current_choice(self):
        # d capped at 1 makes the top of the grid (p=0.5) unreachable
        # at a 0.99 target; the controller must keep flying on what it
        # has instead of stalling the stream.
        controller = AdaptiveController(block_size=12, initial_p=0.02,
                                        d_values=(1,), q_min_target=0.99)
        before = controller.choice
        event = None
        for block_id in range(4):
            event = controller.observe(block_id,
                                       [_report(block_id, 70, 100)])
        assert not event.feasible
        assert controller.choice == before
