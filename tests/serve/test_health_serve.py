"""Acceptance: the online health plane flying inside live serving.

The contract: health alerts are a pure function of the serve config —
pinned blocks, byte-identical files across reruns, shard-count
invariant under the monitor's merge — the clean staircase never trips
a critical, drift alerts drive the controller's counted refresh hook,
and the CLI surfaces the whole plane (flags, summary, exit codes,
manifest, Prometheus, Perfetto).
"""

import json

import pytest

from repro.cli import main
from repro.obs.health import AlertSink, HealthMonitor, validate_alerts_file
from repro.serve.loadgen import ObsOptions, run_loadgen
from repro.serve.service import ServeConfig, run_live_session

# Ramp to 0.6 leaves the default controller lattice (top 0.5): SLO
# breaches under q:0.9 plus exactly one off-lattice entry.
LOSSY = dict(receivers=4, blocks=16, block_size=10,
             loss_schedule=((0, 0.05), (6, 0.6)), seed=31)
SLO = "q:0.9:8"

# Same shape inside the lattice: the zero-false-positive control.
CLEAN = dict(receivers=4, blocks=16, block_size=10,
             loss_schedule=((0, 0.05), (6, 0.3)), seed=31)


@pytest.fixture(scope="module")
def lossy(tmp_path_factory):
    path = tmp_path_factory.mktemp("health") / "alerts.jsonl"
    result = run_loadgen(ServeConfig(**LOSSY),
                         obs=ObsOptions(alerts_out=str(path), slo=SLO))
    return result, path


class TestPinnedAlerts:
    def test_off_lattice_fires_at_the_pinned_block(self, lossy):
        result, _ = lossy
        drift = [a for a in result.health.alerts if a.kind == "off-lattice"]
        assert [a.block for a in drift] == [11]
        assert drift[0].scope == "_pool"
        assert drift[0].detail["lattice_top"] == "1/2"

    def test_slo_breaches_start_where_the_chain_thins(self, lossy):
        result, _ = lossy
        breaches = [a for a in result.health.alerts
                    if a.kind == "slo-breach"]
        assert (breaches[0].block, breaches[0].scope) == (4, "r:r03")
        assert len(breaches) == 21

    def test_drift_alert_drives_the_refresh_hook(self, lossy):
        result, _ = lossy
        assert result.summary["health"]["refresh_requests"] == 1

    def test_no_criticals_without_soundness_violation(self, lossy):
        result, _ = lossy
        assert result.health.counts()["critical"] == 0
        assert result.session.forged_accepted == 0

    def test_alerts_file_validates(self, lossy):
        result, path = lossy
        assert validate_alerts_file(str(path)) == len(result.health.alerts)


class TestCleanStaircase:
    def test_zero_alerts_inside_the_envelope(self):
        result = run_loadgen(ServeConfig(**CLEAN),
                             obs=ObsOptions(health=True))
        assert result.health.alerts == []
        assert result.summary["health"]["worst_severity"] is None
        assert result.summary["health"]["refresh_requests"] == 0


class TestDeterminism:
    def test_alert_files_byte_identical_across_runs(self, lossy, tmp_path):
        _, first = lossy
        second = tmp_path / "alerts.jsonl"
        run_loadgen(ServeConfig(**LOSSY),
                    obs=ObsOptions(alerts_out=str(second), slo=SLO))
        assert first.read_bytes() == second.read_bytes()

    def test_manifest_health_record_is_reproducible(self, lossy):
        result, _ = lossy
        again = run_loadgen(ServeConfig(**LOSSY),
                            obs=ObsOptions(health=True, slo=SLO))
        assert (result.session.manifest.parameters["health"]
                == again.session.manifest.parameters["health"])


class _ShardRouter(HealthMonitor):
    """Routes per-scope SLO streams across shard monitors.

    Models the cohort-sharding plan: each shard owns a disjoint set of
    receiver scopes, pool-scope detectors live on shard 0, and the
    folded shard states must equal an unsharded monitor bit-for-bit.
    """

    def __init__(self, shards, **kwargs):
        super().__init__(**kwargs)
        self.shards = shards

    def configure_envelope(self, top):
        super().configure_envelope(top)
        for shard in self.shards:
            shard.configure_envelope(top)

    def _route(self, scope):
        return self.shards[sum(ord(c) for c in scope) % len(self.shards)]

    def observe_slo(self, block, scope, expected, verified, t=0.0):
        return self._route(scope).observe_slo(block, scope, expected,
                                              verified, t=t)

    def observe_envelope(self, block, lost, fill, t=0.0):
        return self.shards[0].observe_envelope(block, lost, fill, t=t)

    def observe_sentinels(self, block, **kwargs):
        return self.shards[0].observe_sentinels(block, **kwargs)


class TestShardInvariance:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_sharded_fold_equals_whole(self, workers, tmp_path):
        kwargs = dict(q_target="9/10", deficit=8)
        whole = HealthMonitor(**kwargs)
        run_live_session(ServeConfig(**LOSSY), health=whole)

        shards = [HealthMonitor(**kwargs) for _ in range(workers)]
        router = _ShardRouter(shards, **kwargs)
        run_live_session(ServeConfig(**LOSSY), health=router)
        merged = shards[0]
        for shard in shards[1:]:
            merged = merged.merge(shard)
        assert merged.describe() == whole.describe()

        # The byte-level form of the same statement: writing the merged
        # alerts through a sink reproduces the single-worker file.
        merged_path = tmp_path / "merged.jsonl"
        sink = AlertSink(str(merged_path))
        for alert in merged.alerts:
            sink.append(alert)
        sink.close()
        whole_path = tmp_path / "whole.jsonl"
        whole_sink = AlertSink(str(whole_path))
        for alert in whole.alerts:
            whole_sink.append(alert)
        whole_sink.close()
        assert merged_path.read_bytes() == whole_path.read_bytes()


class TestSubtreeScopes:
    def test_topology_sessions_monitor_subtrees_too(self):
        config = ServeConfig(receivers=6, blocks=10, block_size=8,
                             topology="spine:3", subtree_adaptive=True,
                             loss_schedule=((0, 0.05), (4, 0.5)), seed=17)
        result = run_loadgen(config, obs=ObsOptions(health=True, slo=SLO))
        scopes = {a.scope for a in result.health.alerts}
        assert any(scope.startswith("st:") for scope in scopes)
        assert any(scope.startswith("r:") for scope in scopes)


class TestCliSurface:
    def _argv(self, config, extra):
        argv = ["loadgen", "--receivers", str(config["receivers"]),
                "--blocks", str(config["blocks"]),
                "--block-size", str(config["block_size"]),
                "--seed", str(config["seed"]),
                "--loss", str(config["loss_schedule"][0][1])]
        for block, rate in config["loss_schedule"][1:]:
            argv += ["--ramp", f"{block}:{rate}"]
        return argv + extra

    def test_flags_emit_artifacts_and_summary(self, tmp_path, capsys):
        alerts = tmp_path / "alerts.jsonl"
        prom = tmp_path / "metrics.prom"
        pf = tmp_path / "perfetto.json"
        code = main(self._argv(LOSSY, [
            "--slo", SLO, "--alerts-out", str(alerts),
            "--prom-out", str(prom), "--perfetto-out", str(pf)]))
        assert code == 0  # warnings alone never gate without strict
        assert validate_alerts_file(str(alerts)) == 22
        text = prom.read_text()
        assert "repro_health_alerts_warning_total 22" in text
        assert "repro_health_slo_breaches 21" in text
        payload = json.loads(pf.read_text())
        instants = [e for e in payload["traceEvents"]
                    if e.get("cat") == "alert"]
        assert len(instants) == 22
        assert {e["pid"] for e in instants} == {0}
        summary = json.loads(capsys.readouterr().out)
        assert summary["health"]["kinds"] == {"off-lattice": 1,
                                              "slo-breach": 21}

    def test_strict_health_turns_warnings_into_exit_3(self, capsys):
        code = main(self._argv(LOSSY, ["--slo", SLO, "--strict-health"]))
        assert code == 3
        assert "strict-health" in capsys.readouterr().err

    def test_clean_run_exits_zero_even_strict(self, capsys):
        code = main(self._argv(CLEAN, ["--health", "--strict-health"]))
        assert code == 0
        capsys.readouterr()

    def test_bad_slo_spec_exits_two(self, capsys):
        code = main(self._argv(CLEAN, ["--slo", "q:2.0"]))
        assert code == 2
        assert "SLO target" in capsys.readouterr().err

    def test_serve_subcommand_reports_health_too(self, capsys):
        code = main(["serve", "--receivers", "2", "--blocks", "4",
                     "--block-size", "8", "--seed", "5", "--health",
                     "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["health"]["alerts"] == {"critical": 0, "info": 0,
                                               "warning": 0}


class TestManifestFold:
    def test_manifest_carries_health_plane(self, lossy):
        result, _ = lossy
        manifest = result.session.manifest
        obs = manifest.parameters["observability"]["health"]
        assert obs == {"alerts": 22, "worst_severity": "warning"}
        record = manifest.parameters["health"]
        assert record["config"]["q_target"] == "9/10"
        assert record["config"]["envelope_top"] == "1/2"
        assert len(record["alerts"]) == 22
        assert record["sentinels"]["forged"] == 0
