"""Transports: control-frame encoding, backpressure, UDP loopback."""

import asyncio

import pytest

from repro.exceptions import SimulationError
from repro.faults import WireDelivery
from repro.network.clock import MonotonicClock
from repro.serve.transport import (
    CONTROL_PREFIX,
    ControlFrame,
    LocalTransport,
    UdpTransport,
    decode_control,
    encode_control,
)


def _data(payload, seq=None):
    return WireDelivery(arrival_time=0.0, data=payload, kind="genuine",
                        seq_hint=seq)


class TestControlFrames:
    def test_round_trip(self):
        frame = ControlFrame(block_id=3, base_seq=10, last_seq=21,
                             scheme="emss(2,1)", phase="emss(2,1)@p=0.1",
                             intact=(10, 12, 21),
                             digests=((10, "ab"), (12, "cd")))
        assert decode_control(encode_control(frame)) == frame

    def test_final_frame_round_trip(self):
        frame = ControlFrame(block_id=-1, base_seq=0, last_seq=0,
                             scheme="", phase="", final=True)
        decoded = decode_control(encode_control(frame))
        assert decoded.final

    def test_data_frames_are_not_control(self):
        # A real wire packet starts with seq >= 1 as big-endian u32, so
        # it can never carry the four-zero-byte control prefix.
        assert decode_control(b"\x00\x00\x00\x01rest-of-packet") is None
        assert decode_control(b"arbitrary bytes") is None

    def test_mangled_control_payload_is_garbage(self):
        valid = encode_control(ControlFrame(1, 1, 5, "emss(1,1)", "x"))
        assert decode_control(valid[:-4]) is None
        assert decode_control(CONTROL_PREFIX + b"\xff\xfe") is None

    def test_encoding_is_canonical(self):
        frame = ControlFrame(1, 1, 5, "emss(1,1)", "x", intact=(1, 2))
        assert encode_control(frame) == encode_control(frame)


class TestLocalTransport:
    def test_delivery_in_order(self):
        async def scenario():
            transport = LocalTransport(queue_size=8)
            await transport.start(["r0"])
            await transport.send("r0", [_data(b"\x00\x00\x00\x01a", 1),
                                        _data(b"\x00\x00\x00\x02b", 2)])
            await transport.close()
            return [d.seq_hint async for d in transport.subscribe("r0")]

        assert asyncio.run(scenario()) == [1, 2]

    def test_data_frames_drop_beyond_capacity(self):
        async def scenario():
            transport = LocalTransport(queue_size=2)
            await transport.start(["r0"])
            deliveries = [_data(b"\x00\x00\x00\x01x%d" % i, i)
                          for i in range(1, 6)]
            dropped = await transport.send("r0", deliveries)
            return ([d.seq_hint for d in dropped],
                    transport.queue_drops("r0"))

        dropped, counted = asyncio.run(scenario())
        assert dropped == [3, 4, 5]  # newest dropped, oldest kept
        assert counted == 3

    def test_drop_pattern_is_deterministic(self):
        def run():
            async def scenario():
                transport = LocalTransport(queue_size=3)
                await transport.start(["r0"])
                deliveries = [_data(b"\x00\x00\x00\x01y%d" % i, i)
                              for i in range(10)]
                dropped = await transport.send("r0", deliveries)
                return tuple(d.seq_hint for d in dropped)

            return asyncio.run(scenario())

        assert run() == run()

    def test_control_frames_never_dropped(self):
        async def scenario():
            transport = LocalTransport(queue_size=1)
            await transport.start(["r0"])
            control = encode_control(ControlFrame(0, 1, 3, "emss(1,1)", "x"))
            fills = [_data(b"\x00\x00\x00\x01fill", 1)]
            await transport.send("r0", fills)

            async def drain_one():
                await asyncio.sleep(0)
                gen = transport.subscribe("r0")
                return await gen.__anext__()

            drain = asyncio.create_task(drain_one())
            # Queue is full: the control send must block until the
            # drain task frees a slot, and must never be dropped.
            dropped = await transport.send(
                "r0", [WireDelivery(0.0, control, "control", None)])
            await drain
            return dropped

        assert asyncio.run(scenario()) == []

    def test_unknown_receiver_rejected(self):
        async def scenario():
            transport = LocalTransport()
            await transport.start(["r0"])
            await transport.send("nope", [])

        with pytest.raises(SimulationError):
            asyncio.run(scenario())

    def test_close_wakes_subscribers_even_when_full(self):
        async def scenario():
            transport = LocalTransport(queue_size=1)
            await transport.start(["r0"])
            await transport.send("r0", [_data(b"\x00\x00\x00\x01z", 1)])
            await transport.close()
            return [d.seq_hint async for d in transport.subscribe("r0")]

        assert asyncio.run(scenario()) == [1]


class TestUdpTransport:
    def test_loopback_round_trip(self):
        async def scenario():
            transport = UdpTransport(MonotonicClock())
            await transport.start(["r0", "r1"])
            payload = b"\x00\x00\x00\x01udp-payload"
            await transport.send("r0", [_data(payload, 1)])

            async def first():
                gen = transport.subscribe("r0")
                return await gen.__anext__()

            delivery = await asyncio.wait_for(first(), timeout=5.0)
            await transport.close()
            return delivery

        delivery = asyncio.run(scenario())
        assert delivery.data == b"\x00\x00\x00\x01udp-payload"
        assert delivery.kind == "unknown"
        assert delivery.arrival_time >= 0.0

    def test_send_before_start_rejected(self):
        async def scenario():
            await UdpTransport(MonotonicClock()).send("r0", [])

        with pytest.raises(SimulationError):
            asyncio.run(scenario())
