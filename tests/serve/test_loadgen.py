"""Loadgen packaging, schema validity, and the CLI entry points."""

import json

import pytest

from repro.cli import main
from repro.obs import validate_metrics_file, validate_metrics_payload
from repro.serve.loadgen import run_loadgen
from repro.serve.service import ServeConfig

CONFIG = ServeConfig(receivers=4, blocks=6, block_size=8,
                     attack="pollution", seed=11)


@pytest.fixture(scope="module")
def result():
    return run_loadgen(CONFIG)


class TestLoadgenArtifacts:
    def test_metrics_payload_validates(self, result):
        assert validate_metrics_payload(result.metrics_payload) == 1

    def test_manifest_records_config_and_adaptation(self, result):
        manifest = result.metrics_payload["runs"][0]["manifest"]
        assert manifest["kind"] == "serve"
        assert manifest["parameters"]["receivers"] == 4
        assert manifest["parameters"]["attack"] == "pollution"
        assert len(manifest["parameters"]["adaptation"]) == CONFIG.blocks
        assert manifest["seed_root"] == 11

    def test_trial_counts_lifted_from_serve_counters(self, result):
        manifest = result.metrics_payload["runs"][0]["manifest"]
        counts = manifest["trial_counts"]
        assert counts["serve.block.runs"] == CONFIG.blocks
        assert counts["serve.receiver.sessions"] == CONFIG.receivers

    def test_metrics_cover_transport_and_packets(self, result):
        metrics = result.metrics_payload["runs"][0]["metrics"]
        counters = metrics["counters"]
        assert counters["serve.packets.sent"] > 0
        assert counters["serve.transport.frames"] > 0
        assert "serve.queue_depth" in metrics["histograms"]

    def test_summary_gates(self, result):
        assert result.ok
        assert result.summary["forged_accepted"] == 0
        assert result.summary["receivers"] == 4
        assert {p["phase"] for p in result.summary["phases"]} == set(
            result.session.stats)


class TestServeCli:
    def test_loadgen_writes_validatable_metrics(self, tmp_path, capsys):
        out = tmp_path / "soak.json"
        code = main(["loadgen", "--receivers", "2", "--blocks", "3",
                     "--block-size", "8", "--attack", "pollution",
                     "--seed", "5", "--metrics-out", str(out)])
        assert code == 0
        assert validate_metrics_file(str(out)) == 1
        summary = json.loads(capsys.readouterr().out)
        assert summary["forged_accepted"] == 0
        assert summary["schemes_used"]

    def test_serve_prints_summary(self, capsys):
        code = main(["serve", "--receivers", "2", "--blocks", "3",
                     "--block-size", "8", "--ramp", "2:0.3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "live session" in out
        assert "forged accepted    : 0" in out

    def test_serve_json_mode(self, capsys):
        code = main(["serve", "--receivers", "2", "--blocks", "2",
                     "--block-size", "8", "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["blocks"] == 2

    def test_bad_attack_rejected(self, capsys):
        code = main(["loadgen", "--attack", "zalgo", "--blocks", "1"])
        assert code == 2
        assert "zalgo" in capsys.readouterr().err

    def test_ext_live_experiment_registered(self):
        from repro.experiments import ALL_EXPERIMENTS

        assert "ext-live" in ALL_EXPERIMENTS
