"""Unit tests for the membership layer: plans, specs, burst wiring."""

import pytest

from repro.exceptions import SimulationError
from repro.faults import AdversarialChannel, AttackPlan, BootstrapBurstForgery
from repro.network.channel import Channel
from repro.schemes.registry import available_schemes
from repro.serve.membership import (
    BOOTSTRAP_RULES,
    MembershipEvent,
    MembershipPlan,
    parse_churn_spec,
    storm_channel_factory,
)
from repro.serve.sender import default_channel_factory


def _plan(events=(), universe=("r00", "r01", "r02", "r03"), initial=2,
          blocks=8):
    return MembershipPlan(universe=universe, initial=initial, blocks=blocks,
                          events=tuple(events))


class TestMembershipEvent:
    def test_record_form(self):
        event = MembershipEvent(3, "leave", "r01")
        assert event.to_record() == [3, "leave", "r01"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            MembershipEvent(3, "rejoin", "r01")

    def test_block_zero_rejected(self):
        with pytest.raises(SimulationError):
            MembershipEvent(0, "join", "r02")


class TestPlanValidation:
    def test_duplicate_universe_ids_rejected(self):
        with pytest.raises(SimulationError):
            _plan(universe=("r00", "r00", "r01"))

    def test_initial_bounds(self):
        with pytest.raises(SimulationError):
            _plan(initial=0)
        with pytest.raises(SimulationError):
            _plan(initial=5)

    def test_initial_member_cannot_join(self):
        with pytest.raises(SimulationError) as err:
            _plan([MembershipEvent(2, "join", "r00")])
        assert "spare pool" in str(err.value)

    def test_spare_cannot_leave_before_joining(self):
        with pytest.raises(SimulationError):
            _plan([MembershipEvent(2, "leave", "r02")])

    def test_nobody_joins_twice(self):
        with pytest.raises(SimulationError):
            _plan([MembershipEvent(2, "join", "r02"),
                   MembershipEvent(3, "leave", "r02"),
                   MembershipEvent(5, "join", "r02")])

    def test_unknown_receiver_rejected(self):
        with pytest.raises(SimulationError):
            _plan([MembershipEvent(2, "join", "r99")])

    def test_event_beyond_session_rejected(self):
        with pytest.raises(SimulationError):
            _plan([MembershipEvent(8, "join", "r02")])

    def test_two_events_same_block_same_receiver_rejected(self):
        with pytest.raises(SimulationError):
            _plan([MembershipEvent(2, "join", "r02"),
                   MembershipEvent(2, "leave", "r02")])

    def test_survivor_floor(self):
        with pytest.raises(SimulationError) as err:
            _plan([MembershipEvent(2, "leave", "r00"),
                   MembershipEvent(2, "crash", "r01")])
        assert "survive" in str(err.value)

    def test_departing_all_but_one_is_fine(self):
        plan = _plan([MembershipEvent(2, "leave", "r00")])
        assert plan.final_active() == ["r01"]


class TestPlanAccessors:
    EVENTS = (MembershipEvent(2, "join", "r02"),
              MembershipEvent(2, "leave", "r01"),
              MembershipEvent(4, "crash", "r00"),
              MembershipEvent(5, "join", "r03"))

    def test_events_sorted_leaves_before_joins(self):
        plan = _plan(self.EVENTS)
        boundary = plan.boundary_events(2)
        assert [e.kind for e in boundary] == ["leave", "join"]

    def test_crashes_separated_from_boundary(self):
        plan = _plan(self.EVENTS)
        assert plan.boundary_events(4) == []
        assert [e.receiver_id for e in plan.crash_events(4)] == ["r00"]

    def test_initial_ids_and_index(self):
        plan = _plan(self.EVENTS)
        assert plan.initial_ids == ["r00", "r01"]
        assert plan.index_of("r03") == 3
        with pytest.raises(SimulationError):
            plan.index_of("r99")

    def test_join_blocks_counts_final_active(self):
        plan = _plan(self.EVENTS)
        assert plan.join_blocks == {"r02": 2, "r03": 5}
        assert plan.counts() == {"leave": 1, "join": 2, "crash": 1}
        assert plan.final_active() == ["r02", "r03"]

    def test_describe_is_manifest_ready(self):
        plan = _plan(self.EVENTS)
        record = plan.describe()
        assert record["universe"] == 4
        assert record["initial"] == 2
        assert record["counts"] == plan.counts()
        assert record["final_active"] == ["r02", "r03"]
        assert [2, "leave", "r01"] in record["events"]


class TestParseChurnSpec:
    def test_storm_default_rates(self):
        assert parse_churn_spec("storm") == ("storm", ())

    def test_storm_explicit_rates(self):
        assert parse_churn_spec("storm:1,0.5,0") == ("storm", (1.0, 0.5, 0.0))

    def test_flood_and_flap(self):
        assert parse_churn_spec("flood:6") == ("flood", (6.0,))
        assert parse_churn_spec("flap:3") == ("flap", (3.0,))

    @pytest.mark.parametrize("bad", [
        "storm:1,2", "storm:a,b,c", "storm:-1,0,0", "flood:0", "flood:x",
        "flap:0", "flap:y", "drizzle", "flood", "flap",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(SimulationError):
            parse_churn_spec(bad)


class TestFromSpec:
    def test_universe_doubles_the_initial_roster(self):
        plan = MembershipPlan.from_spec("storm", 4, 16, seed=7)
        assert len(plan.universe) == 8
        assert plan.initial == 4
        assert plan.initial_ids == ["r00", "r01", "r02", "r03"]
        # Sorted order == universe order: channel seeding relies on it.
        assert list(plan.universe) == sorted(plan.universe)

    def test_same_seed_same_plan(self):
        one = MembershipPlan.from_spec("storm", 4, 16, seed=7)
        two = MembershipPlan.from_spec("storm", 4, 16, seed=7)
        assert one == two
        assert one != MembershipPlan.from_spec("storm", 4, 16, seed=8)

    def test_storm_actually_churns(self):
        plan = MembershipPlan.from_spec("storm", 4, 24, seed=7)
        assert sum(plan.counts().values()) > 0

    def test_flood_joins_every_spare_at_one_block(self):
        plan = MembershipPlan.from_spec("flood:5", 4, 12, seed=7)
        assert plan.counts() == {"join": 4, "leave": 0, "crash": 0}
        assert all(e.block == 5 for e in plan.events)
        assert plan.final_active() == sorted(plan.universe)

    def test_flood_block_clamped_to_session(self):
        plan = MembershipPlan.from_spec("flood:99", 2, 6, seed=7)
        assert all(e.block == 5 for e in plan.events)

    def test_flap_members_stay_one_block(self):
        plan = MembershipPlan.from_spec("flap:2", 4, 12, seed=7)
        assert plan.counts() == {"join": 2, "leave": 2, "crash": 0}
        assert plan.final_active() == plan.initial_ids


class TestBootstrapRules:
    def test_every_registered_scheme_has_a_rule(self):
        assert set(BOOTSTRAP_RULES) == set(available_schemes())


class TestStormChannelFactory:
    SEED = 2003

    def _plan(self):
        return _plan_with_join()

    def test_non_join_cells_pass_through_unchanged(self):
        base = default_channel_factory(self.SEED)
        wrapped = storm_channel_factory(base, self._plan(), self.SEED)
        channel = wrapped(0, 3, 0.1)
        assert isinstance(channel, Channel)
        assert not isinstance(channel, AdversarialChannel)

    def test_join_cell_gets_the_burst(self):
        base = default_channel_factory(self.SEED)
        wrapped = storm_channel_factory(base, self._plan(), self.SEED)
        channel = wrapped(2, 3, 0.1)  # r02's universe index is 2
        assert isinstance(channel, AdversarialChannel)
        assert any(isinstance(f, BootstrapBurstForgery)
                   for f in channel.plan.faults)

    def test_recompose_preserves_base_faults(self):
        mix = lambda: AttackPlan(  # noqa: E731
            (BootstrapBurstForgery(burst_rate=0.3, window=2),))
        base = default_channel_factory(self.SEED, attack_plan_factory=mix)
        wrapped = storm_channel_factory(base, self._plan(), self.SEED)
        channel = wrapped(2, 3, 0.1)
        assert isinstance(channel, AdversarialChannel)
        # Base mix's fault first, the bootstrap burst appended after.
        assert len(channel.plan.faults) == 2

    def test_wrapped_factory_is_deterministic(self):
        base = default_channel_factory(self.SEED)
        wrapped = storm_channel_factory(base, self._plan(), self.SEED)
        packets = []
        for factory_run in range(2):
            channel = wrapped(2, 3, 0.1)
            from repro.packets import Packet
            stamped = [Packet(seq=i + 1, block_id=3, payload=b"x%d" % i,
                              send_time=0.0) for i in range(6)]
            packets.append([(d.kind, d.data)
                            for d in channel.transmit_wire(stamped)])
        assert packets[0] == packets[1]


def _plan_with_join():
    return MembershipPlan(
        universe=("r00", "r01", "r02", "r03"), initial=2, blocks=8,
        events=(MembershipEvent(3, "join", "r02"),))
