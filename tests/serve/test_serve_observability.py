"""End-to-end observability of the serving stack.

Pins the tentpole guarantees: instrumented sessions emit byte-identical
lifecycle and timeseries files across runs, lifecycle events cover
every stage of the canonical pipeline, the run manifest folds the
observability tallies, and the CLI flags drive the whole thing.
"""

import json
import re

import pytest

from repro.cli import main
from repro.obs import (
    validate_lifecycle_file,
    validate_timeseries_file,
)
from repro.obs.lifecycle import LIFECYCLE_STAGES, LifecycleTracer
from repro.obs.timeseries import CONTROLLER_ROW, TimeseriesSampler
from repro.serve.loadgen import ObsOptions, run_loadgen
from repro.serve.service import ServeConfig, run_live_session

CONFIG = ServeConfig(receivers=3, blocks=6, block_size=8,
                     attack="pollution",
                     loss_schedule=((0, 0.05), (3, 0.3)), seed=29)


def _run_instrumented(config):
    tracer = LifecycleTracer(config.seed)
    sampler = TimeseriesSampler(interval_s=0.01)
    session = run_live_session(config, lifecycle=tracer,
                               timeseries=sampler)
    return session, tracer, sampler


@pytest.fixture(scope="module")
def instrumented():
    return _run_instrumented(CONFIG)


class TestLifecycleCoverage:
    def test_every_stage_appears(self, instrumented):
        _, tracer, _ = instrumented
        stages = {e["stage"] for e in tracer.events()}
        assert stages == set(LIFECYCLE_STAGES)

    def test_attack_kinds_tagged_on_transport_events(self, instrumented):
        _, tracer, _ = instrumented
        kinds = {e.get("kind") for e in tracer.events()
                 if e["stage"] == "transport" and e["status"] == "deliver"}
        assert "forged" in kinds or "replayed" in kinds or \
            "corrupted" in kinds

    def test_verify_verdict_per_expected_seq(self, instrumented):
        session, tracer, _ = instrumented
        verdicts = [e for e in tracer.events() if e["stage"] == "verify"]
        # One verdict per (receiver, seq) cell the transcripts settled.
        expected = sum(
            len(json.loads(line)["events"])
            for transcript in session.transcripts.values()
            for line in transcript.decode().splitlines())
        assert len(verdicts) == expected > 0

    def test_manifest_folds_observability_tallies(self, instrumented):
        session, tracer, sampler = instrumented
        obs = session.manifest.parameters["observability"]
        assert obs["lifecycle"]["events"] == tracer.events_recorded
        assert obs["lifecycle"]["sample"] == 1
        assert obs["timeseries"]["rows"] == len(sampler.samples)


class TestTimeseriesContent:
    def test_rows_cover_all_receivers_and_controller(self, instrumented):
        _, _, sampler = instrumented
        receivers = {row["r"] for row in sampler.samples}
        assert receivers == set(CONFIG.receiver_ids()) | {CONTROLLER_ROW}

    def test_controller_row_carries_adaptation_state(self, instrumented):
        _, _, sampler = instrumented
        controller_rows = [row for row in sampler.samples
                           if row["r"] == CONTROLLER_ROW]
        assert controller_rows
        for row in controller_rows:
            assert row["scheme"].startswith("emss(")
            assert row["m"] >= 1 and row["d"] >= 1
            assert 0.0 <= row["p_design"] <= 1.0

    def test_receiver_rows_carry_defensive_gauges(self, instrumented):
        _, _, sampler = instrumented
        row = next(r for r in sampler.samples if r["r"] == "r00")
        for gauge in ("buffered", "pending", "delivered", "window_rate",
                      "ewma_rate", "forged_rejected", "undecodable",
                      "replays_dropped"):
            assert gauge in row


class TestByteIdentity:
    def _emit(self, tmp_path, tag, receivers=2, adaptive=True):
        config = ServeConfig(receivers=receivers, blocks=5, block_size=8,
                             attack="pollution", seed=31,
                             adaptive=adaptive)
        obs = ObsOptions(
            lifecycle_out=str(tmp_path / f"lc-{tag}.jsonl"),
            timeseries_out=str(tmp_path / f"ts-{tag}.jsonl"),
            perfetto_out=str(tmp_path / f"pf-{tag}.json"),
            timeseries_interval=0.005,
        )
        run_loadgen(config, obs=obs)
        return {name: open(tmp_path / f"{name}-{tag}"
                           f"{'.json' if name == 'pf' else '.jsonl'}",
                           "rb").read()
                for name in ("lc", "ts", "pf")}

    def test_two_runs_emit_identical_bytes(self, tmp_path):
        first = self._emit(tmp_path, "a")
        second = self._emit(tmp_path, "b")
        assert first == second
        assert all(first.values())  # and they are not trivially empty

    def test_receiver_count_changes_only_add_rows(self, tmp_path):
        # Determinism is per-receiver: with the controller frozen (the
        # pooled loss feedback depends on the audience), r00's
        # lifecycle lines in a 1-receiver run are a subset of the
        # 2-receiver run's.
        one = self._emit(tmp_path, "one", receivers=1, adaptive=False)
        two = self._emit(tmp_path, "two", receivers=2, adaptive=False)
        lines_one = {line for line in one["lc"].splitlines()
                     if b'"r": "r00"' in line}
        lines_two = {line for line in two["lc"].splitlines()
                     if b'"r": "r00"' in line}
        assert lines_one and lines_one <= lines_two


class TestPromCoverage:
    """The gap regression: every serving-plane counter family reaches
    ``--prom-out`` — as a zero-valued series when the feature idles,
    as live counts when it runs."""

    def _prom(self, tmp_path, name, **overrides):
        path = tmp_path / f"{name}.prom"
        config = ServeConfig(receivers=2, blocks=6, block_size=8,
                             seed=5, **overrides)
        run_loadgen(config, obs=ObsOptions(prom_out=str(path)))
        return path.read_text()

    def test_plain_serve_exposes_batch_series(self, tmp_path):
        text = self._prom(tmp_path, "plain")
        assert "repro_serve_batch_signs_total 0" in text
        assert "repro_serve_batch_flushes_total 0" in text

    def test_batched_serve_counts_signs_and_root_verifies(self, tmp_path):
        text = self._prom(tmp_path, "batched", batch_size=3)
        signs = int(re.search(
            r"repro_serve_batch_signs_total (\d+)", text).group(1))
        assert signs > 0
        roots = int(re.search(
            r"repro_serve_batch_root_verifies_total (\d+)", text).group(1))
        assert roots > 0

    def test_table_serve_exposes_design_series(self, tmp_path):
        from repro.design.table import DesignTable, TableSpec
        table = DesignTable.build(
            TableSpec(p_grid=(0.05, 0.1, 0.3, 0.5), families=("emss",)),
            workers=1)
        table_file = str(tmp_path / "table.json")
        table.save(table_file)
        text = self._prom(tmp_path, "table", design_table=table_file)
        for series in ("design_service_lookups", "design_service_hits",
                       "design_service_misses", "design_service_fallbacks",
                       "design_inline_calls", "design_refresh_requests"):
            assert re.search(rf"repro_{series}_total \d+", text), series
        lookups = int(re.search(
            r"repro_design_service_lookups_total (\d+)", text).group(1))
        assert lookups > 0


class TestCliFlags:
    def test_loadgen_emits_and_validates_artifacts(self, tmp_path, capsys):
        lc = tmp_path / "lifecycle.jsonl"
        ts = tmp_path / "timeseries.jsonl"
        prom = tmp_path / "metrics.prom"
        pf = tmp_path / "perfetto.json"
        code = main(["loadgen", "--receivers", "2", "--blocks", "4",
                     "--block-size", "8", "--attack", "pollution",
                     "--seed", "5",
                     "--lifecycle-out", str(lc),
                     "--timeseries-out", str(ts),
                     "--timeseries-interval", "0.005",
                     "--prom-out", str(prom),
                     "--perfetto-out", str(pf)])
        assert code == 0
        assert validate_lifecycle_file(str(lc)) > 0
        assert validate_timeseries_file(str(ts)) > 0
        assert "# TYPE" in prom.read_text()
        payload = json.loads(pf.read_text())
        assert payload["traceEvents"]
        summary = json.loads(capsys.readouterr().out)
        assert summary["lifecycle_events"] > 0
        assert summary["timeseries_samples"] > 0

    def test_trace_sample_flag_thins_the_file(self, tmp_path, capsys):
        full = tmp_path / "full.jsonl"
        thin = tmp_path / "thin.jsonl"
        base = ["loadgen", "--receivers", "2", "--blocks", "4",
                "--block-size", "8", "--seed", "5"]
        assert main(base + ["--lifecycle-out", str(full)]) == 0
        assert main(base + ["--lifecycle-out", str(thin),
                            "--trace-sample", "8"]) == 0
        capsys.readouterr()
        full_lines = set(full.read_text().splitlines())
        thin_lines = set(thin.read_text().splitlines())
        assert len(thin_lines) < len(full_lines)
        assert thin_lines <= full_lines

    def test_trace_sample_rejects_zero(self, capsys):
        with pytest.raises(SystemExit):
            main(["loadgen", "--trace-sample", "0"])

    def test_serve_accepts_observability_flags(self, tmp_path, capsys):
        lc = tmp_path / "lifecycle.jsonl"
        code = main(["serve", "--receivers", "2", "--blocks", "3",
                     "--block-size", "8", "--lifecycle-out", str(lc)])
        assert code == 0
        assert validate_lifecycle_file(str(lc)) > 0
