"""Acceptance: the control plane flying on a precomputed design table.

The contract under test is the tentpole's: with a warm table covering
the controller grid, an adapted session (a) makes **zero** inline
optimizer calls — every grid-point crossing is answered by the
service, asserted via the new registry counters — and (b) produces
transcripts byte-identical to the pre-service inline path, because
table cells store exactly what the inline optimizer would have
returned at the same grid points.
"""

import pytest

from repro.design.service import DesignCoverageError, DesignService
from repro.design.table import DEFAULT_TABLE_P_GRID, DesignTable, TableSpec
from repro.exceptions import DesignError, SimulationError
from repro.obs.registry import MetricsRegistry, use_registry
from repro.serve.adaptive import DEFAULT_P_GRID, AdaptiveController
from repro.serve.service import ServeConfig, run_live_session

RAMP_BLOCK = 20
STAIRCASE = dict(
    receivers=8, blocks=40, block_size=12,
    loss_schedule=((0, 0.05), (RAMP_BLOCK, 0.3)),
    attack="pollution", seed=2003,
)


@pytest.fixture(scope="module")
def table_path(tmp_path_factory):
    table = DesignTable.build(TableSpec(families=("emss", "ac")), workers=1)
    path = str(tmp_path_factory.mktemp("design") / "table.json")
    table.save(path)
    return path


@pytest.fixture(scope="module")
def inline_session():
    return run_live_session(ServeConfig(**STAIRCASE))


@pytest.fixture(scope="module")
def served(table_path):
    with use_registry(MetricsRegistry()) as registry:
        session = run_live_session(
            ServeConfig(design_table=table_path, **STAIRCASE))
    return session, registry


class TestWarmTableParity:
    def test_transcripts_byte_identical_to_inline_path(self, served,
                                                       inline_session):
        session, _ = served
        assert session.transcripts == inline_session.transcripts

    def test_adaptation_trace_identical_to_inline_path(self, served,
                                                       inline_session):
        session, _ = served
        assert ([e.to_dict() for e in session.events]
                == [e.to_dict() for e in inline_session.events])

    def test_zero_inline_optimizer_calls(self, served):
        _, registry = served
        assert registry.counters.get("design.inline.calls", 0) == 0
        assert registry.counters.get("design.service.fallbacks", 0) == 0
        assert registry.counters["design.service.hits"] > 0
        assert registry.counters.get("design.service.misses", 0) == 0

    def test_manifest_records_table_traffic(self, served):
        session, registry = served
        detail = session.manifest.parameters["design_table_detail"]
        assert detail["lookup_hits"] == registry.counters[
            "design.service.hits"]
        assert detail["lookup_misses"] == 0
        assert detail["content_hash"]

    def test_lookups_lift_into_manifest_trial_counts(self, table_path):
        with use_registry(MetricsRegistry()):
            session = run_live_session(ServeConfig(
                receivers=2, blocks=4, design_table=table_path, seed=11))
        counts = session.manifest.trial_counts
        assert counts["design.service.lookups"] > 0


class TestAcFamilySession:
    def test_ac_session_adapts_via_table(self, table_path):
        # Ramp to p = 0.4: the AC optimum at n=12 moves from (2,1) to
        # (2,2), so a served AC session must demonstrably switch.
        config = ServeConfig(
            receivers=8, blocks=40, block_size=12,
            loss_schedule=((0, 0.05), (20, 0.4)),
            seed=2003, design_table=table_path, scheme_family="ac")
        with use_registry(MetricsRegistry()) as registry:
            session = run_live_session(config)
        assert len(session.schemes_used) >= 2
        assert all(spec.startswith("ac(")
                   for spec in session.schemes_used)
        assert registry.counters.get("design.inline.calls", 0) == 0
        assert session.forged_accepted == 0

    def test_unknown_family_rejected_by_config(self):
        with pytest.raises(SimulationError, match="family"):
            ServeConfig(scheme_family="tesla")


class TestControllerServiceWiring:
    def make_service(self, **spec_overrides):
        spec = TableSpec(families=("emss", "ac"), **spec_overrides)
        return DesignService(DesignTable.build(spec, workers=1))

    def test_grids_stay_in_sync(self):
        # The table's default p grid must track the controller's: the
        # staircase only stays inline-free if every controller grid
        # point is a covered table cell.
        assert DEFAULT_TABLE_P_GRID == DEFAULT_P_GRID

    def test_unknown_family_rejected(self):
        with pytest.raises(SimulationError, match="family"):
            AdaptiveController(block_size=12, family="offset")

    def test_service_hit_counts_and_no_inline(self):
        controller = AdaptiveController(block_size=12,
                                        design_service=self.make_service())
        assert controller.table_hits == 1  # the initial design
        assert controller.inline_calls == 0
        gauges = controller.gauges()
        assert gauges["table_hits"] == 1
        assert gauges["inline_fallbacks"] == 0

    def test_uncovered_point_falls_back_inline_and_counts(self):
        # A table over a foreign block-size axis cannot cover n=12:
        # every selection is a counted miss answered inline.
        service = self.make_service(block_sizes=(4,))
        with use_registry(MetricsRegistry()) as registry:
            controller = AdaptiveController(block_size=12,
                                            design_service=service)
        assert controller.table_misses == 1
        assert controller.inline_calls == 1
        assert registry.counters["design.service.fallbacks"] == 1
        assert registry.counters["design.inline.calls"] == 1
        assert controller.gauges()["table_misses"] == 1

    def test_served_choice_equals_inline_choice(self):
        with_table = AdaptiveController(block_size=12,
                                        design_service=self.make_service())
        inline = AdaptiveController(block_size=12)
        assert with_table.choice == inline.choice

    def test_ac_controller_inline_fallback(self):
        controller = AdaptiveController(block_size=12, family="ac")
        assert controller.choice.scheme == "ac"
        assert controller.inline_calls == 1

    def test_missing_table_file_fails_loudly(self):
        with pytest.raises(DesignError, match="cannot read"):
            run_live_session(ServeConfig(
                receivers=2, blocks=2,
                design_table="/nonexistent/table.json"))

    def test_subtree_controllers_share_the_service(self, table_path):
        config = ServeConfig(
            receivers=8, blocks=10, topology="spine:4",
            subtree_adaptive=True, design_table=table_path, seed=5)
        with use_registry(MetricsRegistry()) as registry:
            session = run_live_session(config)
        assert registry.counters.get("design.inline.calls", 0) == 0
        assert registry.counters["design.service.hits"] > 0
        assert session.forged_accepted == 0
