"""Timeseries sampling under dynamic membership.

The gauge rows of each tick must track the *live* pool: a retired or
crashed receiver stops emitting rows at the boundary it departs, a
late joiner starts at its join block, and the emitted file still
validates and stays byte-identical across runs.  (Before the fix the
sampler iterated the full session record, so departed receivers kept
emitting frozen gauges forever.)
"""

import pytest

from repro.obs import validate_timeseries_file
from repro.obs.timeseries import CONTROLLER_ROW, TimeseriesSampler
from repro.serve.loadgen import ObsOptions, run_loadgen
from repro.serve.service import ServeConfig, run_live_session

CHURN = ServeConfig(receivers=4, blocks=24, block_size=10,
                    loss_schedule=((0, 0.1),), churn="storm", seed=2003)


def _sampled(config):
    sampler = TimeseriesSampler(interval_s=0.01)
    session = run_live_session(config, timeseries=sampler)
    return session, sampler.samples


@pytest.fixture(scope="module")
def churn_run():
    return _sampled(CHURN)


def _rows_by_tick(samples):
    ticks = {}
    for row in samples:
        ticks.setdefault(row["t"], []).append(str(row["r"]))
    return ticks


class TestChurnGauges:
    def test_final_tick_matches_final_active(self, churn_run):
        session, samples = churn_run
        membership = session.manifest.parameters["membership"]
        ticks = _rows_by_tick(samples)
        last = ticks[max(ticks)]
        expected = sorted(membership["final_active"]) + [CONTROLLER_ROW]
        assert sorted(last) == sorted(expected)

    def test_departed_receivers_stop_emitting(self, churn_run):
        session, samples = churn_run
        membership = session.manifest.parameters["membership"]
        final_active = set(membership["final_active"])
        departed = {rid for _, kind, rid in membership["events"]
                    if kind in ("leave", "crash")}
        assert departed, "storm plan must include departures"
        last_tick = max(row["t"] for row in samples)
        for rid in departed - final_active:
            times = [row["t"] for row in samples if row["r"] == rid]
            assert times, f"{rid} never sampled while live"
            assert max(times) < last_tick, (
                f"departed receiver {rid} still emitting at the end")

    def test_receiver_rows_are_contiguous_tick_runs(self, churn_run):
        _, samples = churn_run
        ticks = sorted(_rows_by_tick(samples))
        index_of = {t: i for i, t in enumerate(ticks)}
        per_receiver = {}
        for row in samples:
            per_receiver.setdefault(str(row["r"]), []).append(
                index_of[row["t"]])
        for rid, indices in per_receiver.items():
            if rid == CONTROLLER_ROW:
                continue
            span = list(range(min(indices), max(indices) + 1))
            assert indices == span, (
                f"{rid} emitted a gapped tick run: once a member "
                f"departs it must never reappear")

    def test_joiners_absent_before_join(self, churn_run):
        session, samples = churn_run
        membership = session.manifest.parameters["membership"]
        joiners = {rid for _, kind, rid in membership["events"]
                   if kind == "join"}
        assert joiners, "storm plan must include joins"
        first_tick = min(row["t"] for row in samples)
        for rid in joiners:
            times = [row["t"] for row in samples if row["r"] == rid]
            if times:  # crashed-before-first-tick joiners never appear
                assert min(times) > first_tick

    def test_controller_row_every_tick(self, churn_run):
        _, samples = churn_run
        for tick, rows in _rows_by_tick(samples).items():
            assert CONTROLLER_ROW in rows

    def test_file_validates_and_is_deterministic(self, tmp_path):
        paths = []
        for name in ("a.jsonl", "b.jsonl"):
            path = tmp_path / name
            obs = ObsOptions(timeseries_out=str(path),
                             timeseries_interval=0.01)
            run_loadgen(CHURN, obs=obs)
            assert validate_timeseries_file(str(path)) > 0
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()
