"""Unit tests for the Wong-Lam analytic module."""

import pytest

from repro.analysis import wong_lam
from repro.exceptions import AnalysisError


class TestQ:
    def test_always_one(self):
        for p in (0.0, 0.5, 1.0):
            assert wong_lam.q_min(100, p) == 1.0
            assert wong_lam.q_i(7, p) == 1.0

    def test_profile(self):
        assert wong_lam.q_profile(5, 0.9) == [1.0] * 5

    def test_validation(self):
        with pytest.raises(AnalysisError):
            wong_lam.q_min(0, 0.1)
        with pytest.raises(AnalysisError):
            wong_lam.q_min(10, 1.5)
        with pytest.raises(AnalysisError):
            wong_lam.q_i(0, 0.1)


class TestOverhead:
    def test_log_depth(self):
        assert wong_lam.overhead_bytes_per_packet(64, 128, 16) == 128 + 6 * 16
        assert wong_lam.overhead_bytes_per_packet(65, 128, 16) == 128 + 7 * 16

    def test_single_packet(self):
        assert wong_lam.overhead_bytes_per_packet(1, 128, 16) == 128

    def test_validation(self):
        with pytest.raises(AnalysisError):
            wong_lam.overhead_bytes_per_packet(0, 128, 16)
