"""Unit tests for the EMSS recurrence analysis (Eq. 8/9)."""

import pytest

from repro.analysis import emss
from repro.analysis.montecarlo import graph_monte_carlo
from repro.exceptions import AnalysisError
from repro.schemes.emss import EmssScheme


class TestOffsets:
    def test_offset_set(self):
        assert emss.offsets_for(2, 1) == [1, 2]
        assert emss.offsets_for(3, 4) == [4, 8, 12]

    def test_validation(self):
        with pytest.raises(AnalysisError):
            emss.offsets_for(0, 1)


class TestQProfile:
    def test_boundary_matches_eq8(self):
        result = emss.q_profile(10, 2, 1, 0.2)
        assert result.q[0] == result.q[1] == result.q[2] == 1.0

    def test_q_min_attained_in_tail(self):
        result = emss.q_profile(200, 2, 1, 0.2)
        assert result.q_min == pytest.approx(result.q[-1])

    def test_more_copies_help(self):
        p = 0.3
        assert emss.q_min(200, 3, 1, p) >= emss.q_min(200, 2, 1, p)
        assert emss.q_min(200, 2, 1, p) >= emss.q_min(200, 1, 1, p)

    def test_spacing_insensitivity(self):
        # Fig. 7: q_min barely moves with d while m*d << n.
        p = 0.3
        base = emss.q_min(1000, 2, 1, p)
        for d in (2, 5, 10, 20):
            assert emss.q_min(1000, 2, d, p) == pytest.approx(base, abs=0.02)

    def test_large_spacing_eventually_hurts_or_helps_boundary(self):
        # When m*d approaches n the boundary region dominates.
        value = emss.q_min(100, 2, 45, 0.3)
        assert value >= emss.q_min(100, 2, 1, 0.3) - 1e-9


class TestFixedPointBound:
    def test_bound_formula(self):
        p = 0.2
        expected = 1 - (p / (1 - p)) ** 2
        assert emss.q_min_lower_bound_e21(p) == pytest.approx(expected)

    @pytest.mark.parametrize("p", [0.05, 0.1, 0.2, 0.3, 0.4, 0.49])
    def test_recurrence_respects_bound(self, p):
        for n in (50, 200, 1000):
            assert emss.q_min(n, 2, 1, p) >= emss.q_min_lower_bound_e21(p) - 1e-9

    def test_bound_validity_range(self):
        with pytest.raises(AnalysisError):
            emss.q_min_lower_bound_e21(0.5)


class TestAgainstMonteCarlo:
    def test_recurrence_upper_bounds_exact(self):
        """Path failures are positively correlated, so Eq. 8 is an
        upper bound on the exact probability (see ext-gap)."""
        n, p = 150, 0.15
        graph = EmssScheme(2, 1).build_graph(n)
        mc = graph_monte_carlo(graph, p, trials=20000, seed=23)
        recurrence = emss.q_min(n, 2, 1, p)
        assert mc.q_min <= recurrence + 0.02

    def test_monte_carlo_matches_exact_paths(self):
        from repro.core.paths import exact_lambda

        n, p = 7, 0.2
        graph = EmssScheme(2, 1).build_graph(n)
        mc = graph_monte_carlo(graph, p, trials=60000, seed=29)
        for vertex in range(1, n):
            exact = exact_lambda(graph, vertex, p)
            assert mc.q[vertex] == pytest.approx(exact, abs=0.01)

    def test_recurrence_bounds_exact_per_packet(self):
        from repro.core.paths import exact_lambda

        n, p = 7, 0.2
        graph = EmssScheme(2, 1).build_graph(n)
        rec = emss.q_profile(n, 2, 1, p)
        # Reversed indexing: recurrence q_i corresponds to send-order
        # vertex n - i + 1.
        for i in range(2, n + 1):
            vertex = n - i + 1
            assert exact_lambda(graph, vertex, p) <= rec.q[i - 1] + 1e-9


class TestGenericQMin:
    def test_arbitrary_offsets(self):
        value = emss.generic_q_min(100, [1, 7], 0.2)
        assert 0.0 < value <= 1.0

    def test_matches_emss_for_uniform(self):
        assert emss.generic_q_min(100, [1, 2], 0.2) == pytest.approx(
            emss.q_min(100, 2, 1, 0.2))
