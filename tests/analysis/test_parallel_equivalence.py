"""Differential tests: the parallel engine vs its serial counterparts.

The engine's whole contract is that the pool changes *where* chunks
run, never *what* they compute — so every test here asserts exact
equality (``==`` on result objects or full profiles), not approximate
agreement.
"""

import pytest

from repro.analysis.montecarlo import McResult, graph_monte_carlo
from repro.parallel import (
    chunk_sizes,
    parallel_graph_monte_carlo,
    parallel_multicast,
    parallel_tesla_monte_carlo,
    parallel_wire_monte_carlo,
    resolve_chunks,
    spawn_seed_tree,
)
from repro.network.loss import BernoulliLoss, GilbertElliottLoss
from repro.schemes.augmented_chain import AugmentedChainScheme
from repro.schemes.emss import EmssScheme
from repro.schemes.rohatgi import RohatgiScheme
from repro.schemes.tesla import TeslaParameters
from repro.schemes.wong_lam import WongLamScheme
from repro.simulation.multicast import ReceiverSpec, run_multicast_session
from repro.simulation.runner import (
    WireTrialConfig,
    tesla_monte_carlo,
    wire_monte_carlo,
)

def _wong_lam_star(n):
    """Wong–Lam's dependence structure: every packet hangs off P_sign."""
    from repro.core.graph import DependenceGraph

    return DependenceGraph.from_edges(n, 1, [(1, j) for j in range(2, n + 1)])


GRAPH_BUILDERS = [
    ("emss(2,1)", lambda n: EmssScheme(2, 1).build_graph(n)),
    ("ac(3,3)", lambda n: AugmentedChainScheme(3, 3).build_graph(n)),
    ("rohatgi", lambda n: RohatgiScheme().build_graph(n)),
    ("wong-lam-star", _wong_lam_star),
]
LOSS_RATES = [0.1, 0.5]


class TestGraphLevelWorkerInvariance:
    @pytest.mark.parametrize("scheme_name,build", GRAPH_BUILDERS,
                             ids=[name for name, _ in GRAPH_BUILDERS])
    @pytest.mark.parametrize("p", LOSS_RATES)
    def test_identical_across_worker_counts(self, scheme_name, build, p):
        graph = build(40)
        results = [
            parallel_graph_monte_carlo(graph, p, trials=600, seed=101,
                                       workers=workers)
            for workers in (1, 2, 4)
        ]
        for other in results[1:]:
            assert other.q == results[0].q
            assert other.received_counts == results[0].received_counts
            assert other.verified_counts == results[0].verified_counts
            assert other.trials == results[0].trials

    def test_merged_equals_single_shot_over_seed_tree(self):
        graph = EmssScheme(2, 1).build_graph(30)
        trials, seed = 500, 42
        parallel = parallel_graph_monte_carlo(graph, 0.3, trials=trials,
                                              seed=seed, workers=2)
        chunks = resolve_chunks(trials)
        shards = [
            graph_monte_carlo(graph, 0.3, trials=size, seed=chunk_seed)
            for size, chunk_seed in zip(chunk_sizes(trials, chunks),
                                        spawn_seed_tree(seed, chunks))
        ]
        assert parallel == McResult.merge_all(shards)

    def test_explicit_chunks_respected(self):
        graph = RohatgiScheme().build_graph(20)
        one = parallel_graph_monte_carlo(graph, 0.2, trials=50, seed=9,
                                         workers=2, chunks=5)
        two = parallel_graph_monte_carlo(graph, 0.2, trials=50, seed=9,
                                         workers=4, chunks=5)
        assert one == two
        assert one.trials == 50

    def test_unprotected_root_passes_through(self):
        graph = EmssScheme(2, 1).build_graph(20)
        result = parallel_graph_monte_carlo(graph, 0.4, trials=400, seed=3,
                                            workers=2,
                                            root_always_received=False)
        assert result.received_counts[graph.root] < 400


class TestWireLevelWorkerInvariance:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_serial_driver(self, workers):
        config = WireTrialConfig(block_size=8, trials=6, loss_rate=0.25,
                                 seed=13)
        scheme = EmssScheme(2, 1)
        serial = wire_monte_carlo(scheme, config)
        parallel = parallel_wire_monte_carlo(scheme, config, workers=workers)
        assert parallel.tallies == serial.tallies
        assert parallel.delays == serial.delays
        assert (parallel.sent, parallel.dropped, parallel.forged) == \
            (serial.sent, serial.dropped, serial.forged)
        assert parallel.message_buffer_peak == serial.message_buffer_peak
        assert parallel.hash_buffer_peak == serial.hash_buffer_peak

    def test_individually_verifiable_scheme_matches_serial(self):
        config = WireTrialConfig(block_size=8, trials=4, loss_rate=0.3,
                                 seed=29)
        scheme = WongLamScheme()
        serial = wire_monte_carlo(scheme, config)
        parallel = parallel_wire_monte_carlo(scheme, config, workers=2)
        assert parallel.tallies == serial.tallies

    def test_custom_loss_model_matches_serial(self):
        config = WireTrialConfig(block_size=8, trials=4, seed=5)
        scheme = RohatgiScheme()
        loss = GilbertElliottLoss.from_rate_and_burst(0.2, 3.0, seed=17)
        serial = wire_monte_carlo(scheme, config, loss=loss)
        loss = GilbertElliottLoss.from_rate_and_burst(0.2, 3.0, seed=17)
        parallel = parallel_wire_monte_carlo(scheme, config, workers=2,
                                             loss=loss)
        assert parallel.tallies == serial.tallies

    def test_tesla_matches_serial_driver(self):
        parameters = TeslaParameters(interval=0.1, lag=2, chain_length=40)
        serial = tesla_monte_carlo(parameters, 20, 4, 0.2, seed=23)
        parallel = parallel_tesla_monte_carlo(parameters, 20, 4, 0.2,
                                              seed=23, workers=2)
        assert parallel.tallies == serial.tallies
        assert parallel.delays == serial.delays


class TestMulticastWorkerInvariance:
    @staticmethod
    def _audience():
        return [
            ReceiverSpec("lan", BernoulliLoss(0.05, seed=1)),
            ReceiverSpec("wifi", BernoulliLoss(0.3, seed=2)),
            ReceiverSpec("mobile",
                         GilbertElliottLoss.from_rate_and_burst(
                             0.2, 4.0, seed=3)),
        ]

    def test_matches_serial_session(self):
        scheme = EmssScheme(2, 1)
        serial = run_multicast_session(scheme, 16, 2, self._audience())
        parallel = parallel_multicast(scheme, 16, 2, self._audience(),
                                      workers=2)
        assert parallel.packets_sent == serial.packets_sent
        assert set(parallel.per_receiver) == set(serial.per_receiver)
        for name, stats in serial.per_receiver.items():
            assert parallel.per_receiver[name].tallies == stats.tallies
            assert parallel.per_receiver[name].dropped == stats.dropped

    def test_duplicate_receiver_names_rejected(self):
        specs = [ReceiverSpec("a"), ReceiverSpec("a")]
        with pytest.raises(Exception):
            parallel_multicast(EmssScheme(2, 1), 8, 1, specs, workers=1)
