"""Unit tests for exact chain analysis under Markov loss."""

import pytest

from repro.analysis.exact_chain import exact_q_profile
from repro.analysis.exact_chain_markov import (
    gilbert_elliott_q_min,
    markov_chain_q_min,
    markov_chain_q_profile,
)
from repro.analysis.montecarlo import graph_monte_carlo_model
from repro.exceptions import AnalysisError
from repro.network.loss import GilbertElliottLoss
from repro.schemes.emss import EmssScheme

_GE = [[0.95, 0.05], [0.25, 0.75]]
_GE_RATES = [0.0, 1.0]


class TestDegenerations:
    @pytest.mark.parametrize("m", [1, 2, 3])
    @pytest.mark.parametrize("p", [0.0, 0.2, 0.5, 1.0])
    def test_single_state_is_iid(self, m, p):
        markov = markov_chain_q_profile(40, m, [[1.0]], [p])
        iid = exact_q_profile(40, m, p)
        for a, b in zip(markov, iid):
            assert a == pytest.approx(b, abs=1e-12)

    def test_lossless_channel(self):
        profile = markov_chain_q_profile(30, 2, _GE, [0.0, 0.0])
        assert profile == [1.0] * 30

    def test_probabilities_valid(self):
        profile = markov_chain_q_profile(60, 2, _GE, _GE_RATES)
        assert all(0.0 <= q <= 1.0 for q in profile)
        assert profile[0] == 1.0


class TestAgainstMonteCarlo:
    @pytest.mark.parametrize("burst", [2.0, 4.0, 8.0])
    def test_matches_model_driven_monte_carlo(self, burst):
        n, rate = 80, 0.1
        exact = gilbert_elliott_q_min(n, 2, rate, burst)
        model = GilbertElliottLoss.from_rate_and_burst(rate, burst, seed=5)
        graph = EmssScheme(2, 1).build_graph(n)
        mc = graph_monte_carlo_model(graph, model, trials=4000)
        assert mc.q_min == pytest.approx(exact, abs=0.04)


class TestBurstShapes:
    def test_isolated_losses_protect_adjacent_copies(self):
        """Mean burst -> 1 means no two consecutive losses: E_{2,1}
        becomes nearly unbreakable, *better* than iid."""
        n, rate = 120, 0.1
        near_one = gilbert_elliott_q_min(n, 2, rate, 1.01)
        iid = exact_q_profile(n, 2, rate)[-1]
        assert near_one > iid + 0.3

    def test_worst_burst_matches_copy_spread(self):
        """Bursts around the copy spread (2) are the worst case."""
        n, rate = 120, 0.1
        values = {burst: gilbert_elliott_q_min(n, 2, rate, burst)
                  for burst in (1.01, 2.0, 4.0, 16.0)}
        assert values[2.0] == min(values.values())

    def test_longer_reach_softens_bursts(self):
        n, rate, burst = 120, 0.1, 3.0
        m2 = gilbert_elliott_q_min(n, 2, rate, burst)
        m4 = gilbert_elliott_q_min(n, 4, rate, burst)
        assert m4 > m2


class TestValidation:
    def test_matrix_shape(self):
        with pytest.raises(AnalysisError):
            markov_chain_q_profile(10, 2, [[1.0, 0.0]], [0.1])

    def test_non_stochastic(self):
        with pytest.raises(AnalysisError):
            markov_chain_q_profile(10, 2, [[0.7, 0.7], [0.5, 0.5]],
                                   [0.1, 0.2])

    def test_bad_rates(self):
        with pytest.raises(AnalysisError):
            markov_chain_q_profile(10, 2, [[1.0]], [1.5])

    def test_bad_initial(self):
        with pytest.raises(AnalysisError):
            markov_chain_q_profile(10, 2, [[1.0]], [0.1], initial=[0.4])

    def test_bad_sizes(self):
        with pytest.raises(AnalysisError):
            markov_chain_q_profile(0, 2, [[1.0]], [0.1])
        with pytest.raises(AnalysisError):
            markov_chain_q_min(10, 0, [[1.0]], [0.1])
