"""Unit tests for the augmented-chain recurrence (Eq. 10)."""

import pytest

from repro.analysis import augmented_chain as ac
from repro.analysis import emss
from repro.analysis.montecarlo import graph_monte_carlo
from repro.exceptions import AnalysisError
from repro.schemes.augmented_chain import AugmentedChainScheme


class TestChainCount:
    def test_counts(self):
        assert ac.chain_count(101, 3) == 25
        assert ac.chain_count(9, 3) == 2

    def test_validation(self):
        with pytest.raises(AnalysisError):
            ac.chain_count(1, 3)


class TestProfile:
    def test_boundary_chain_packets_unit(self):
        profile = ac.q_profile(101, 3, 3, 0.2)
        for x in range(4):  # x <= a
            assert profile.chain[x] == 1.0

    def test_chain_monotone_decreasing(self):
        profile = ac.q_profile(401, 3, 3, 0.3)
        chain = profile.chain
        for earlier, later in zip(chain[4:], chain[5:]):
            assert later <= earlier + 1e-12

    def test_inserted_values_in_range(self):
        profile = ac.q_profile(101, 3, 3, 0.3)
        for value in profile.inserted.values():
            assert 0.0 <= value <= 1.0

    def test_q_of_reversed_index(self):
        profile = ac.q_profile(101, 3, 3, 0.2)
        # Chain packet 0 sits at reversed index b+1 = 4.
        assert profile.q_of_reversed_index(4) == profile.chain[0]
        assert profile.q_of_reversed_index(1) == profile.inserted[(0, 1)]

    def test_q_of_reversed_index_bounds(self):
        profile = ac.q_profile(21, 3, 3, 0.2)
        with pytest.raises(AnalysisError):
            profile.q_of_reversed_index(4000)


class TestQMin:
    def test_extremes(self):
        assert ac.q_min(101, 3, 3, 0.0) == pytest.approx(1.0)
        assert ac.q_min(101, 3, 3, 1.0) == pytest.approx(0.0)

    def test_matches_emss_fixed_point_at_moderate_loss(self):
        # Fig. 9: C_{3,3} and E_{2,1} nearly coincide.
        for p in (0.1, 0.2, 0.3):
            assert ac.q_min(1000, 3, 3, p) == pytest.approx(
                emss.q_min(1000, 2, 1, p), abs=0.02)

    def test_monotone_in_a_and_b_at_high_loss(self):
        p = 0.5
        for b in (1, 3, 5):
            values = [ac.q_min(1000, a, b, p) for a in (2, 3, 5, 8)]
            assert values == sorted(values)
        for a in (2, 3, 5):
            values = [ac.q_min(1000, a, b, p) for b in (1, 3, 5, 8)]
            assert values == sorted(values)

    def test_insensitive_to_b_with_fixed_first_level(self):
        # Fig. 6: hold the chain size, let n grow with b.
        p = 0.3
        chain_packets = 80
        values = []
        for b in (2, 4, 8):
            n = AugmentedChainScheme.block_size_for_chain(chain_packets, b)
            values.append(ac.q_min(n, 3, b, p))
        assert max(values) - min(values) < 0.02

    def test_validation(self):
        with pytest.raises(AnalysisError):
            ac.q_min(101, 1, 3, 0.2)
        with pytest.raises(AnalysisError):
            ac.q_min(101, 3, 0, 0.2)
        with pytest.raises(AnalysisError):
            ac.q_min(101, 3, 3, 1.2)
        with pytest.raises(AnalysisError):
            ac.q_min(3, 3, 5, 0.2)  # no complete chain packet


class TestAgainstGraph:
    def test_recurrence_upper_bounds_monte_carlo(self):
        n, p = 101, 0.2
        graph = AugmentedChainScheme(3, 3).build_graph(n)
        mc = graph_monte_carlo(graph, p, trials=20000, seed=31)
        assert mc.q_min <= ac.q_min(n, 3, 3, p) + 0.02

    def test_graph_and_recurrence_agree_losslessly(self):
        n = 49
        graph = AugmentedChainScheme(2, 2).build_graph(n)
        mc = graph_monte_carlo(graph, 0.0, trials=10, seed=1)
        assert mc.q_min == 1.0
        assert ac.q_min(n, 2, 2, 0.0) == pytest.approx(1.0)
