"""Unit tests for the Rohatgi closed forms (Sec. 3 example)."""

import pytest

from repro.analysis import rohatgi
from repro.analysis.montecarlo import graph_monte_carlo
from repro.core.paths import exact_lambda
from repro.exceptions import AnalysisError
from repro.schemes.rohatgi import RohatgiScheme


class TestClosedForms:
    def test_first_two_packets_certain(self):
        assert rohatgi.q_i(1, 0.3) == 1.0
        assert rohatgi.q_i(2, 0.3) == 1.0

    def test_geometric_decay(self):
        p = 0.2
        for i in range(3, 10):
            assert rohatgi.q_i(i, p) == pytest.approx((1 - p) ** (i - 2))

    def test_q_min_paper_formula(self):
        assert rohatgi.q_min(10, 0.1) == pytest.approx(0.9 ** 8)

    def test_q_min_is_last_packet(self):
        profile = rohatgi.q_profile(12, 0.25)
        assert min(profile) == profile[-1]
        assert profile[-1] == rohatgi.q_min(12, 0.25)

    def test_extreme_loss_rates(self):
        assert rohatgi.q_min(10, 0.0) == 1.0
        assert rohatgi.q_min(10, 1.0) == 0.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            rohatgi.q_min(1, 0.1)
        with pytest.raises(AnalysisError):
            rohatgi.q_min(10, -0.1)
        with pytest.raises(AnalysisError):
            rohatgi.q_i(0, 0.1)


class TestAgainstGraph:
    def test_matches_exact_path_analysis(self):
        graph = RohatgiScheme().build_graph(8)
        p = 0.3
        for i in range(2, 9):
            assert exact_lambda(graph, i, p) == pytest.approx(
                rohatgi.q_i(i, p))

    def test_matches_monte_carlo(self):
        n, p = 12, 0.2
        graph = RohatgiScheme().build_graph(n)
        mc = graph_monte_carlo(graph, p, trials=40000, seed=17)
        for i in (4, 8, 12):
            assert mc.q[i] == pytest.approx(rohatgi.q_i(i, p), abs=0.02)
