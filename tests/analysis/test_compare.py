"""Unit tests for the cross-scheme comparison API (Fig. 8/9/10)."""

import pytest

from repro.analysis import rohatgi as rohatgi_analysis
from repro.analysis.compare import (
    TeslaEnvironment,
    analytic_q_min,
    overhead_delay_table,
    sweep_block_size,
    sweep_loss,
)
from repro.exceptions import AnalysisError
from repro.schemes.augmented_chain import AugmentedChainScheme
from repro.schemes.base import Scheme
from repro.schemes.emss import EmssScheme, GenericOffsetScheme
from repro.schemes.registry import paper_comparison_schemes
from repro.schemes.rohatgi import RohatgiScheme
from repro.schemes.sign_each import SignEachScheme
from repro.schemes.tesla import TeslaScheme
from repro.schemes.wong_lam import WongLamScheme


class TestDispatch:
    def test_rohatgi(self):
        assert analytic_q_min(RohatgiScheme(), 50, 0.1) == pytest.approx(
            rohatgi_analysis.q_min(50, 0.1))

    def test_individually_verifiable(self):
        assert analytic_q_min(WongLamScheme(), 50, 0.9) == 1.0
        assert analytic_q_min(SignEachScheme(), 50, 0.9) == 1.0

    def test_emss_and_offsets_consistent(self):
        emss_value = analytic_q_min(EmssScheme(2, 3), 100, 0.2)
        generic_value = analytic_q_min(GenericOffsetScheme((3, 6)), 100, 0.2)
        assert emss_value == pytest.approx(generic_value)

    def test_ac(self):
        assert 0.0 < analytic_q_min(AugmentedChainScheme(3, 3), 101, 0.2) <= 1.0

    def test_tesla_uses_environment(self):
        generous = TeslaEnvironment(t_disclose=10.0, mu=0.1, sigma=0.05)
        tight = TeslaEnvironment(t_disclose=0.2, mu=0.19, sigma=0.1)
        scheme = TeslaScheme()
        assert analytic_q_min(scheme, 100, 0.1, generous) > \
            analytic_q_min(scheme, 100, 0.1, tight)

    def test_saida_dispatch(self):
        from repro.analysis import saida as saida_analysis
        from repro.schemes.saida import SaidaScheme

        scheme = SaidaScheme(0.5)
        assert analytic_q_min(scheme, 20, 0.3) == pytest.approx(
            saida_analysis.q_min(20, 10, 0.3))

    def test_unknown_scheme_rejected(self):
        class Mystery(Scheme):
            @property
            def name(self):
                return "mystery"

            def build_graph(self, n):
                return RohatgiScheme().build_graph(n)

        with pytest.raises(AnalysisError):
            analytic_q_min(Mystery(), 10, 0.1)

    def test_environment_xi(self):
        env = TeslaEnvironment(t_disclose=1.0, mu=1.0, sigma=0.5)
        assert env.xi == pytest.approx(0.5)


class TestSweeps:
    def test_loss_sweep_shape(self):
        schemes = paper_comparison_schemes()
        curves = sweep_loss(schemes, 200, [0.1, 0.3, 0.5])
        assert set(curves) == {s.name for s in schemes}
        assert all(len(v) == 3 for v in curves.values())

    def test_loss_sweep_monotone(self):
        curves = sweep_loss([EmssScheme(2, 1)], 200,
                            [0.05, 0.1, 0.2, 0.3, 0.4])
        values = curves["emss(2,1)"]
        assert values == sorted(values, reverse=True)

    def test_block_size_sweep(self):
        curves = sweep_block_size([RohatgiScheme()], [10, 50, 100], 0.1)
        values = curves["rohatgi"]
        assert values == sorted(values, reverse=True)

    def test_empty_scheme_list(self):
        with pytest.raises(AnalysisError):
            sweep_loss([], 100, [0.1])
        with pytest.raises(AnalysisError):
            sweep_block_size([], [100], 0.1)


class TestOverheadDelayTable:
    def test_rows_and_ordering(self):
        schemes = [RohatgiScheme(), WongLamScheme(), SignEachScheme()]
        rows = overhead_delay_table(schemes, 64)
        assert [r["scheme"] for r in rows] == [
            "rohatgi", "wong-lam", "sign-each"]

    def test_chained_cheaper_than_per_packet(self):
        rows = overhead_delay_table(
            [EmssScheme(2, 1), SignEachScheme()], 128,
            l_sign=128, l_hash=16)
        emss_row, sign_row = rows
        assert emss_row["bytes/pkt"] < sign_row["bytes/pkt"]

    def test_fig10_qualitative_facts(self):
        rows = overhead_delay_table(
            [RohatgiScheme(), EmssScheme(2, 1), WongLamScheme(),
             TeslaScheme()], 128)
        by_name = {r["scheme"]: r for r in rows}
        assert by_name["rohatgi"]["delay (slots)"] == 0
        assert by_name["emss(2,1)"]["delay (slots)"] == 127
        assert by_name["wong-lam"]["delay (slots)"] == 0
