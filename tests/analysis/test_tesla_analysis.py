"""Unit tests for TESLA's analytic evaluation (Eq. 6/7)."""

import pytest

from repro.analysis import tesla
from repro.analysis.montecarlo import tesla_lambda_monte_carlo
from repro.exceptions import AnalysisError
from repro.network.delay import gaussian_cdf


class TestXi:
    def test_generous_disclosure(self):
        assert tesla.xi(10.0, 0.1, 0.1) == pytest.approx(1.0, abs=1e-9)

    def test_mean_at_disclosure_gives_half(self):
        assert tesla.xi(1.0, 1.0, 0.2) == pytest.approx(0.5)

    def test_matches_gaussian_cdf(self):
        assert tesla.xi(1.0, 0.4, 0.3) == pytest.approx(
            gaussian_cdf((1.0 - 0.4) / 0.3))

    def test_zero_sigma_step(self):
        assert tesla.xi(1.0, 0.5, 0.0) == 1.0
        assert tesla.xi(1.0, 1.5, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            tesla.xi(0.0, 0.1, 0.1)
        with pytest.raises(AnalysisError):
            tesla.xi(1.0, 0.1, -0.1)


class TestLambda:
    def test_formula(self):
        assert tesla.lambda_i(1, 10, 0.5) == pytest.approx(1 - 0.5 ** 10)
        assert tesla.lambda_i(10, 10, 0.5) == pytest.approx(0.5)

    def test_monotone_decreasing_in_i(self):
        values = [tesla.lambda_i(i, 20, 0.3) for i in range(1, 21)]
        assert values == sorted(values, reverse=True)

    def test_matches_monte_carlo(self):
        n, p = 15, 0.4
        mc = tesla_lambda_monte_carlo(n, p, trials=60000, seed=37)
        for i in (1, 8, 15):
            assert mc.q[i] == pytest.approx(tesla.lambda_i(i, n, p),
                                            abs=0.01)

    def test_bounds(self):
        with pytest.raises(AnalysisError):
            tesla.lambda_i(0, 10, 0.1)
        with pytest.raises(AnalysisError):
            tesla.lambda_i(11, 10, 0.1)


class TestQMin:
    def test_eq7(self):
        p, t_d, mu, sigma = 0.2, 1.0, 0.3, 0.1
        expected = (1 - p) * tesla.xi(t_d, mu, sigma)
        assert tesla.q_min(100, p, t_d, mu, sigma) == pytest.approx(expected)

    def test_q_min_is_tail_of_profile(self):
        profile = tesla.q_profile(50, 0.3, 1.0, 0.2, 0.1)
        assert profile[-1] == pytest.approx(
            tesla.q_min(50, 0.3, 1.0, 0.2, 0.1))
        assert min(profile) == profile[-1]

    def test_block_size_independent(self):
        a = tesla.q_min(10, 0.2, 1.0, 0.3, 0.1)
        b = tesla.q_min(10000, 0.2, 1.0, 0.3, 0.1)
        assert a == b

    def test_alpha_parameterization(self):
        value = tesla.q_min_alpha(0.1, 2.0, 0.25, 0.5)
        assert value == pytest.approx(
            tesla.q_min(1, 0.1, 2.0, 0.5, 0.5))

    def test_normalized_form(self):
        # (T_d - mu)/sigma == (1-alpha) * T_d/sigma.
        p, alpha = 0.2, 0.4
        t_d, sigma = 2.0, 0.25
        ratio = t_d / sigma
        assert tesla.q_min_normalized(p, ratio, alpha) == pytest.approx(
            tesla.q_min(1, p, t_d, alpha * t_d, sigma))

    def test_normalized_validation(self):
        with pytest.raises(AnalysisError):
            tesla.q_min_normalized(0.1, 0.0, 0.5)
        with pytest.raises(AnalysisError):
            tesla.q_min_normalized(0.1, 1.0, 1.5)


class TestShapes:
    def test_q_min_decreasing_in_mu(self):
        values = [tesla.q_min(1, 0.1, 1.0, mu, 0.2)
                  for mu in (0.0, 0.2, 0.5, 0.8, 1.0)]
        assert values == sorted(values, reverse=True)

    def test_q_min_decreasing_in_p(self):
        values = [tesla.q_min(1, p, 1.0, 0.2, 0.1)
                  for p in (0.0, 0.2, 0.5, 0.8)]
        assert values == sorted(values, reverse=True)

    def test_loss_limited_at_generous_disclosure(self):
        for p in (0.1, 0.5, 0.9):
            assert tesla.q_min(1, p, 100.0, 0.1, 0.1) == pytest.approx(1 - p)
