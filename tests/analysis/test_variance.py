"""Unit tests for profile dispersion statistics and the tapered graph."""

import pytest

from repro.analysis.montecarlo import graph_monte_carlo
from repro.analysis.variance import (
    ProfileStats,
    build_tapered_graph,
    profile_stats,
)
from repro.exceptions import AnalysisError, SchemeParameterError


class TestProfileStats:
    def test_basic_statistics(self):
        stats = profile_stats([1.0, 0.5, 0.0])
        assert stats.mean == pytest.approx(0.5)
        assert stats.minimum == 0.0
        assert stats.maximum == 1.0
        assert stats.spread == 1.0
        assert stats.count == 3

    def test_variance_and_std(self):
        stats = profile_stats([0.2, 0.4])
        assert stats.variance == pytest.approx(0.01)
        assert stats.std == pytest.approx(0.1)

    def test_constant_profile(self):
        stats = profile_stats([0.7] * 10)
        assert stats.variance == pytest.approx(0.0, abs=1e-15)
        assert stats.spread == 0.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            profile_stats([])
        with pytest.raises(AnalysisError):
            profile_stats([0.5, 1.2])


class TestTaperedGraph:
    def test_validates(self):
        graph = build_tapered_graph(60)
        graph.validate()
        assert graph.root == 60

    def test_far_packets_carry_more_copies(self):
        n = 60
        graph = build_tapered_graph(n, near_copies=2, far_copies=4,
                                    taper_start=0.5)
        # In-degree = number of hash copies a packet's hash gets
        # (modulo clamping near the root).
        near_vertex = n - 5    # close to the signature
        far_vertex = 5         # far from it
        assert graph.in_degree(far_vertex) > graph.in_degree(near_vertex)

    def test_flattens_profile_vs_uniform(self):
        from repro.schemes.emss import EmssScheme

        n, p = 80, 0.15
        uniform = graph_monte_carlo(EmssScheme(2, 1).build_graph(n), p,
                                    trials=6000, seed=5)
        tapered = graph_monte_carlo(build_tapered_graph(n, 2, 4, 0.4), p,
                                    trials=6000, seed=5)
        assert tapered.q_min > uniform.q_min
        u_stats = profile_stats(list(uniform.q.values()))
        t_stats = profile_stats(list(tapered.q.values()))
        assert t_stats.std < u_stats.std

    def test_parameter_validation(self):
        with pytest.raises(SchemeParameterError):
            build_tapered_graph(1)
        with pytest.raises(SchemeParameterError):
            build_tapered_graph(20, near_copies=0)
        with pytest.raises(SchemeParameterError):
            build_tapered_graph(20, near_copies=3, far_copies=2)
        with pytest.raises(SchemeParameterError):
            build_tapered_graph(20, taper_start=1.5)
