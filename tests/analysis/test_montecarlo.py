"""Unit tests for the vectorized Monte Carlo estimators."""

import pytest

from repro.analysis.montecarlo import (
    graph_monte_carlo,
    graph_monte_carlo_model,
    tesla_lambda_monte_carlo,
)
from repro.core.graph import DependenceGraph
from repro.core.paths import exact_lambda
from repro.exceptions import AnalysisError
from repro.network.loss import BernoulliLoss, GilbertElliottLoss, TraceLoss
from repro.schemes.emss import EmssScheme


@pytest.fixture
def diamond():
    return DependenceGraph.from_edges(4, 1, [(1, 2), (1, 3), (2, 4), (3, 4)])


class TestGraphMonteCarlo:
    def test_matches_exact_on_diamond(self, diamond):
        p = 0.3
        mc = graph_monte_carlo(diamond, p, trials=60000, seed=7)
        assert mc.q[4] == pytest.approx(exact_lambda(diamond, 4, p),
                                        abs=0.01)

    def test_root_always_one_when_protected(self, diamond):
        mc = graph_monte_carlo(diamond, 0.5, trials=2000, seed=7)
        assert mc.q[1] == 1.0
        assert mc.received_counts[1] == 2000

    def test_unprotected_root(self, diamond):
        mc = graph_monte_carlo(diamond, 0.5, trials=8000, seed=7,
                               root_always_received=False)
        assert mc.received_counts[1] < 8000
        # Conditioned on the root being received it still verifies.
        assert mc.q[1] == 1.0

    def test_lossless(self, diamond):
        mc = graph_monte_carlo(diamond, 0.0, trials=10, seed=1)
        assert all(value == 1.0 for value in mc.q.values())

    def test_certain_loss(self, diamond):
        mc = graph_monte_carlo(diamond, 1.0, trials=10, seed=1)
        assert set(mc.q) == {1}  # only the protected root is ever received

    def test_standard_error(self, diamond):
        mc = graph_monte_carlo(diamond, 0.3, trials=10000, seed=7)
        se = mc.standard_error(4)
        assert 0.0 < se < 0.02
        with pytest.raises(AnalysisError):
            mc.standard_error(99)

    def test_reproducible_with_seed(self, diamond):
        a = graph_monte_carlo(diamond, 0.3, trials=500, seed=9)
        b = graph_monte_carlo(diamond, 0.3, trials=500, seed=9)
        assert a.q == b.q

    def test_invalid_graph_rejected(self):
        graph = DependenceGraph(3, root=1)
        graph.add_edge(1, 2)
        with pytest.raises(Exception):
            graph_monte_carlo(graph, 0.1, trials=10)

    def test_validation(self, diamond):
        with pytest.raises(AnalysisError):
            graph_monte_carlo(diamond, 1.5, trials=10)
        with pytest.raises(AnalysisError):
            graph_monte_carlo(diamond, 0.1, trials=0)


class TestModelDrivenMonteCarlo:
    def test_bernoulli_model_matches_iid_estimator(self):
        graph = EmssScheme(2, 1).build_graph(40)
        p = 0.2
        iid = graph_monte_carlo(graph, p, trials=30000, seed=3)
        modeled = graph_monte_carlo_model(
            graph, BernoulliLoss(p, seed=5), trials=3000)
        assert modeled.q_min == pytest.approx(iid.q_min, abs=0.05)

    def test_deterministic_trace(self):
        graph = EmssScheme(2, 1).build_graph(4)
        # Lose vertex 2 every trial; vertex 1 still reaches via 3.
        model = TraceLoss([False, True, False, False])
        mc = graph_monte_carlo_model(graph, model, trials=8)
        assert 2 not in mc.q
        assert mc.q[1] == 1.0
        assert mc.q[3] == 1.0

    def test_trial_validation(self):
        graph = EmssScheme(2, 1).build_graph(4)
        with pytest.raises(AnalysisError):
            graph_monte_carlo_model(graph, BernoulliLoss(0.1), trials=0)

    def test_gilbert_elliott_deterministic_with_seed(self):
        # Regression: burst-loss runs used to be irreproducible when the
        # model was built without a seed; the ``seed`` parameter reseeds
        # the model so two runs agree exactly.
        graph = EmssScheme(2, 1).build_graph(30)

        def run(seed):
            model = GilbertElliottLoss.from_rate_and_burst(0.25, 4.0)
            return graph_monte_carlo_model(graph, model, trials=400,
                                           seed=seed)

        assert run(42) == run(42)
        assert run(42) != run(43)

    def test_seed_overrides_model_state(self):
        graph = EmssScheme(2, 1).build_graph(20)
        model = GilbertElliottLoss.from_rate_and_burst(0.3, 3.0, seed=7)
        first = graph_monte_carlo_model(graph, model, trials=200, seed=5)
        # The model's stream was consumed, but reseeding restores it.
        second = graph_monte_carlo_model(graph, model, trials=200, seed=5)
        assert first == second


class TestTeslaLambdaMonteCarlo:
    def test_certain_loss(self):
        mc = tesla_lambda_monte_carlo(5, 1.0, trials=100, seed=1)
        assert all(value == 0.0 for value in mc.q.values())

    def test_lossless(self):
        mc = tesla_lambda_monte_carlo(5, 0.0, trials=100, seed=1)
        assert all(value == 1.0 for value in mc.q.values())

    def test_validation(self):
        with pytest.raises(AnalysisError):
            tesla_lambda_monte_carlo(0, 0.1)
        with pytest.raises(AnalysisError):
            tesla_lambda_monte_carlo(5, -0.1)
