"""Unit tests for the exact transfer-matrix periodic solver."""

import pytest

from repro.analysis.exact_chain import exact_q_profile
from repro.analysis.exact_periodic import (
    exact_periodic_q_min,
    exact_periodic_q_profile,
    exact_periodic_q_profile_reference,
)
from repro.analysis.montecarlo import graph_monte_carlo
from repro.core.recurrence import solve_recurrence
from repro.exceptions import AnalysisError
from repro.schemes.emss import GenericOffsetScheme


class TestReductions:
    @pytest.mark.parametrize("m", [1, 2, 3, 4])
    def test_matches_run_length_chain_for_contiguous(self, m):
        n, p = 50, 0.25
        general = exact_periodic_q_profile(n, list(range(1, m + 1)), p)
        special = exact_q_profile(n, m, p)
        for a, b in zip(general, special):
            assert a == pytest.approx(b, abs=1e-12)

    def test_lossless(self):
        assert exact_periodic_q_profile(30, [2, 5], 0.0) == [1.0] * 30

    def test_certain_loss_boundary_only(self):
        profile = exact_periodic_q_profile(10, [1, 3], 1.0)
        # Positions whose branch clamps to the root stay certain.
        assert profile[0] == 1.0
        assert profile[1] == 1.0  # i=2: offset 1 clamps
        assert profile[3] == 1.0  # i=4: offset 3 clamps
        assert profile[4] == 0.0  # i=5: no clamp, all support lost


class TestAgainstMonteCarlo:
    @pytest.mark.parametrize("offsets", [(1, 3), (2, 5), (1, 4, 9)])
    def test_matches_graph_monte_carlo(self, offsets):
        n, p = 60, 0.2
        profile = exact_periodic_q_profile(n, list(offsets), p)
        graph = GenericOffsetScheme(tuple(offsets)).build_graph(n)
        mc = graph_monte_carlo(graph, p, trials=40000, seed=3)
        for i in (10, 30, 60):
            vertex = n - i + 1
            assert mc.q[vertex] == pytest.approx(profile[i - 1], abs=0.02)


class TestAgainstRecurrence:
    @pytest.mark.parametrize("offsets", [(1, 2), (1, 7), (3, 5)])
    @pytest.mark.parametrize("p", [0.1, 0.3])
    def test_recurrence_is_upper_bound(self, offsets, p):
        n = 80
        exact = exact_periodic_q_profile(n, list(offsets), p)
        recurrence = solve_recurrence(n, list(offsets), p).q
        for e, r in zip(exact, recurrence):
            assert e <= r + 1e-9

    def test_spacing_matters_exactly_but_not_in_recurrence(self):
        """Eq. 9 is d-invariant; the exact solver is not."""
        n, p = 100, 0.2
        adjacent = exact_periodic_q_min(n, [1, 2], p)
        spread = exact_periodic_q_min(n, [1, 7], p)
        assert spread > adjacent + 0.1
        rec_adjacent = solve_recurrence(n, [1, 2], p).q_min
        rec_spread = solve_recurrence(n, [1, 7], p).q_min
        assert rec_adjacent == pytest.approx(rec_spread, abs=0.02)


class TestAgainstReference:
    """The vectorized oracle vs the dictionary walk it replaced.

    The reference implementation is the original per-state Python
    loop, kept verbatim; the shipping oracle is the ``np.bincount``
    transfer-matrix evaluation.  They must agree to full double
    precision across block sizes, offset shapes (contiguous, sparse,
    rootless starts, max reach) and the loss-rate extremes.
    """

    @pytest.mark.parametrize("n", [1, 2, 17, 80])
    @pytest.mark.parametrize("offsets", [
        (1,), (1, 2), (1, 5, 12), (3,), (2, 3, 5), (1, 16)])
    @pytest.mark.parametrize("p", [0.0, 0.1, 0.35, 1.0])
    def test_oracle_matches_reference_grid(self, n, offsets, p):
        oracle = exact_periodic_q_profile(n, list(offsets), p)
        reference = exact_periodic_q_profile_reference(n, list(offsets), p)
        assert len(oracle) == len(reference) == n
        for got, want in zip(oracle, reference):
            assert got == pytest.approx(want, abs=1e-12)

    def test_reference_validates_like_the_oracle(self):
        with pytest.raises(AnalysisError):
            exact_periodic_q_profile_reference(10, [1, 17], 0.1)
        with pytest.raises(AnalysisError):
            exact_periodic_q_profile_reference(0, [1], 0.1)


class TestValidation:
    def test_offset_bounds(self):
        with pytest.raises(AnalysisError):
            exact_periodic_q_profile(10, [], 0.1)
        with pytest.raises(AnalysisError):
            exact_periodic_q_profile(10, [0], 0.1)
        with pytest.raises(AnalysisError):
            exact_periodic_q_profile(10, [1, 17], 0.1)

    def test_input_bounds(self):
        with pytest.raises(AnalysisError):
            exact_periodic_q_profile(0, [1], 0.1)
        with pytest.raises(AnalysisError):
            exact_periodic_q_profile(10, [1], 1.5)
