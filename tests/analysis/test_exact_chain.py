"""Unit tests for the exact Markov-chain evaluator of E_{m,1}."""

import math

import pytest

from repro.analysis import emss as emss_analysis
from repro.analysis import rohatgi as rohatgi_analysis
from repro.analysis.exact_chain import (
    asymptotic_decay_rate,
    exact_q_min,
    exact_q_profile,
)
from repro.analysis.montecarlo import graph_monte_carlo
from repro.exceptions import AnalysisError
from repro.schemes.emss import EmssScheme


class TestReductions:
    def test_m1_is_rohatgi(self):
        """Offsets {1} form a pure chain: q_i = (1-p)^{i-2}."""
        p, n = 0.25, 12
        profile = exact_q_profile(n, 1, p)
        for i in range(1, n + 1):
            assert profile[i - 1] == pytest.approx(
                rohatgi_analysis.q_i(i, p))

    def test_lossless(self):
        assert exact_q_profile(20, 3, 0.0) == [1.0] * 20

    def test_certain_loss(self):
        profile = exact_q_profile(10, 2, 1.0)
        assert profile[0] == 1.0
        # Every non-root packet is lost; conditioning on receipt, a
        # packet verifies only while the run has not yet reached m.
        assert profile[1] == 1.0  # run 0 before position 2
        assert profile[2] == 1.0  # run 1 before position 3
        assert profile[3] == 0.0  # run 2 (= m): broken


class TestAgainstMonteCarlo:
    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_matches_graph_monte_carlo(self, m):
        n, p = 60, 0.2
        profile = exact_q_profile(n, m, p)
        graph = EmssScheme(m, 1).build_graph(n)
        mc = graph_monte_carlo(graph, p, trials=40000, seed=7)
        for i in (5, 20, 40, 60):
            vertex = n - i + 1  # reversed-to-send-order mapping
            assert mc.q[vertex] == pytest.approx(profile[i - 1], abs=0.015)

    def test_upper_bounded_by_recurrence(self):
        for n in (20, 100, 400):
            for p in (0.1, 0.3):
                assert exact_q_min(n, 2, p) <= \
                    emss_analysis.q_min(n, 2, 1, p) + 1e-9

    def test_monotone_decreasing_profile(self):
        profile = exact_q_profile(100, 2, 0.2)
        for earlier, later in zip(profile[1:], profile[2:]):
            assert later <= earlier + 1e-12


class TestDecayRate:
    def test_m2_closed_form(self):
        p = 0.1
        expected = ((1 - p) + math.sqrt((1 - p) ** 2 + 4 * p * (1 - p))) / 2
        assert asymptotic_decay_rate(2, p) == pytest.approx(expected)

    def test_rate_governs_tail(self):
        p, m = 0.2, 2
        rate = asymptotic_decay_rate(m, p)
        q_400 = exact_q_min(400, m, p)
        q_500 = exact_q_min(500, m, p)
        assert q_500 / q_400 == pytest.approx(rate ** 100, rel=0.01)

    def test_rate_improves_with_m(self):
        p = 0.3
        rates = [asymptotic_decay_rate(m, p) for m in (1, 2, 3, 4)]
        assert rates == sorted(rates)
        assert rates[0] == pytest.approx(1 - p)

    def test_extremes(self):
        assert asymptotic_decay_rate(2, 0.0) == 1.0
        assert asymptotic_decay_rate(2, 1.0) == 0.0


class TestValidation:
    def test_bad_inputs(self):
        with pytest.raises(AnalysisError):
            exact_q_profile(0, 2, 0.1)
        with pytest.raises(AnalysisError):
            exact_q_profile(10, 0, 0.1)
        with pytest.raises(AnalysisError):
            exact_q_profile(10, 2, 1.5)
