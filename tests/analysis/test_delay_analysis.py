"""Unit tests for the receiver-delay distribution analysis."""

import pytest

from repro.analysis.delay import DelayDistribution, worst_delay_distribution
from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import AnalysisError
from repro.network.channel import Channel
from repro.network.delay import GaussianDelay
from repro.schemes.emss import EmssScheme
from repro.schemes.rohatgi import RohatgiScheme
from repro.simulation.session import run_chain_session


class TestDistribution:
    def test_cdf_monotone(self):
        law = DelayDistribution(mean=0.5, std=0.1)
        values = [law.cdf(t) for t in (0.2, 0.4, 0.5, 0.6, 0.8)]
        assert values == sorted(values)
        assert law.cdf(0.5) == pytest.approx(0.5)

    def test_quantile_inverts_cdf(self):
        law = DelayDistribution(mean=1.0, std=0.2)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert law.cdf(law.quantile(q)) == pytest.approx(q, abs=1e-6)

    def test_degenerate_zero_std(self):
        law = DelayDistribution(mean=0.3, std=0.0)
        assert law.cdf(0.29) == 0.0
        assert law.cdf(0.3) == 1.0
        assert law.quantile(0.9) == 0.3

    def test_quantile_validation(self):
        with pytest.raises(AnalysisError):
            DelayDistribution(1.0, 0.1).quantile(0.0)

    def test_buffer_time_alias(self):
        law = DelayDistribution(mean=1.0, std=0.2)
        assert law.buffer_time_for(0.95) == law.quantile(0.95)


class TestWorstDelayDistribution:
    def test_rohatgi_has_zero_mean(self):
        graph = RohatgiScheme().build_graph(20)
        law = worst_delay_distribution(graph, t_transmit=0.01,
                                       jitter_std=0.005)
        assert law.mean == 0.0
        assert law.std == pytest.approx(0.005 * 2 ** 0.5)

    def test_emss_mean_is_block_span(self):
        n = 20
        graph = EmssScheme(2, 1).build_graph(n)
        law = worst_delay_distribution(graph, t_transmit=0.01,
                                       jitter_std=0.0)
        assert law.mean == pytest.approx((n - 1) * 0.01)

    def test_validation(self):
        graph = RohatgiScheme().build_graph(5)
        with pytest.raises(AnalysisError):
            worst_delay_distribution(graph, 0.0, 0.01)
        with pytest.raises(AnalysisError):
            worst_delay_distribution(graph, 0.01, -0.1)

    def test_matches_simulated_delays(self):
        """The analytic law brackets the simulator's measured delays."""
        n, t_transmit, sigma = 16, 0.01, 0.004
        scheme = EmssScheme(2, 1)
        signer = HmacStubSigner(key=b"delay")
        channel = Channel(delay=GaussianDelay(mean=0.05, std=sigma,
                                              seed=9))
        stats = run_chain_session(scheme, n, 40, channel, signer=signer,
                                  t_transmit=t_transmit)
        law = worst_delay_distribution(scheme.build_graph(n), t_transmit,
                                       sigma)
        # The worst packet (first of each block) waits ~ the law's mean.
        assert stats.max_delay <= law.quantile(0.9999) + 1e-6
        assert stats.max_delay >= law.mean - 4 * law.std
