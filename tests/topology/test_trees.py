"""Distribution trees: construction, redundancy bias, path dedup."""

import pytest

from repro.exceptions import SimulationError
from repro.topology import (
    TREE_ALGORITHMS,
    build_tree,
    dualspine_topology,
    redundant_trees,
    shortest_path_tree,
    spine_topology,
    star_topology,
    steiner_tree,
    union_paths,
)

LEAVES = [f"r{i:02d}" for i in range(8)]


class TestConstruction:
    @pytest.mark.parametrize("algorithm", TREE_ALGORITHMS)
    def test_tree_covers_every_leaf(self, algorithm):
        topo = spine_topology(LEAVES, 2)
        tree = build_tree(topo, algorithm)
        assert set(tree.paths) == set(LEAVES)
        for leaf in LEAVES:
            path = tree.path(leaf)
            assert len(path) == 2  # root -> router -> leaf
            assert path[0] in (0, 1)  # a spine edge

    def test_star_paths_are_single_private_edges(self):
        topo = star_topology(LEAVES)
        tree = shortest_path_tree(topo)
        for index, leaf in enumerate(LEAVES):
            assert tree.path(leaf) == (index,)

    def test_steiner_matches_shortest_path_on_trees(self):
        # On a graph that *is* a tree both constructions are forced.
        topo = spine_topology(LEAVES, 4)
        assert steiner_tree(topo).paths == shortest_path_tree(topo).paths

    def test_unknown_algorithm_raises(self):
        with pytest.raises(SimulationError):
            build_tree(star_topology(LEAVES), "mst")

    def test_path_of_unknown_leaf_raises(self):
        tree = shortest_path_tree(star_topology(LEAVES))
        with pytest.raises(SimulationError):
            tree.path("ghost")

    def test_describe_reports_depths(self):
        detail = shortest_path_tree(spine_topology(LEAVES, 2)).describe()
        assert detail["max_depth"] == 2
        assert detail["min_depth"] == 2
        assert detail["edges"] == 10


class TestRedundancy:
    def test_dualspine_trees_are_plane_disjoint(self):
        topo = dualspine_topology(LEAVES, 2)
        trees = redundant_trees(topo, 2)
        leaf_edges = frozenset(
            topo.edge_index(u, v)
            for leaf in LEAVES for u, v in topo.graph.edges(leaf))
        interior_0 = trees[0].edges - leaf_edges
        interior_1 = trees[1].edges - leaf_edges
        assert interior_0 and interior_1
        assert not interior_0 & interior_1, (
            "redundant trees share interior edges on a dual-plane graph")

    def test_tree_zero_is_the_plain_construction(self):
        topo = dualspine_topology(LEAVES, 2)
        trees = redundant_trees(topo, 2)
        assert trees[0].paths == shortest_path_tree(topo).paths

    def test_penalty_does_not_mutate_the_topology_graph(self):
        topo = dualspine_topology(LEAVES, 2)
        before = {(u, v): data["weight"]
                  for u, v, data in topo.graph.edges(data=True)}
        redundant_trees(topo, 3)
        after = {(u, v): data["weight"]
                 for u, v, data in topo.graph.edges(data=True)}
        assert before == after

    def test_k_must_be_positive(self):
        with pytest.raises(SimulationError):
            redundant_trees(star_topology(LEAVES), 0)

    def test_union_paths_dedups_identical_routes(self):
        # On a star there is only one route; k=2 must collapse to it.
        topo = star_topology(LEAVES)
        trees = redundant_trees(topo, 2)
        for index, leaf in enumerate(LEAVES):
            assert union_paths(trees, leaf) == ((index,),)

    def test_union_paths_keeps_distinct_routes_in_tree_order(self):
        topo = dualspine_topology(LEAVES, 2)
        trees = redundant_trees(topo, 2)
        for leaf in LEAVES:
            paths = union_paths(trees, leaf)
            assert paths == (trees[0].path(leaf), trees[1].path(leaf))
