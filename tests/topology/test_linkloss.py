"""Edge loss bank and path loss: seeds, caching, delivery math."""

import pytest

from repro.exceptions import SimulationError
from repro.network.loss import BernoulliLoss
from repro.topology import (
    EDGE_LOSS_MODELS,
    EdgeLossBank,
    PathLoss,
    delivery_probability,
    spine_topology,
    star_topology,
)

LEAVES = [f"r{i:02d}" for i in range(4)]


def _star_bank(seed=7, **kwargs):
    return EdgeLossBank(star_topology(LEAVES), seed, **kwargs)


class TestBank:
    def test_edge_seed_matches_channel_factory_formula(self):
        bank = _star_bank(seed=42)
        assert bank.edge_seed(0, 0) == 42 + 7919 + 104729
        assert bank.edge_seed(3, 5) == 42 + 7919 * 4 + 104729 * 6

    def test_draws_are_slot_order_independent(self):
        early = _star_bank()
        late = _star_bank()
        # One bank is asked slot 5 first, the other walks 0..5; the
        # cached sequences must agree (lazily extended in slot order).
        late_draw = late.lost(0, 0, 0.3, 5)
        early_draws = [early.lost(0, 0, 0.3, slot) for slot in range(6)]
        assert late_draw == early_draws[5]
        assert [late.lost(0, 0, 0.3, slot) for slot in range(6)] \
            == early_draws

    def test_rate_is_pinned_per_edge_block_cell(self):
        bank = _star_bank()
        bank.lost(0, 0, 0.3, 0)
        with pytest.raises(SimulationError):
            bank.lost(0, 0, 0.4, 1)
        # A different block is a fresh cell: new rate is fine.
        bank.lost(0, 1, 0.4, 0)
        assert bank.cells_touched == 2

    def test_loss_scale_clamps_to_one(self):
        topo = spine_topology(LEAVES, 2, spine_scales=(10.0, 1.0))
        bank = EdgeLossBank(topo, 7)
        assert bank.edge_rate(0, 0.5) == 1.0
        assert bank.edge_rate(1, 0.5) == 0.5

    def test_gilbert_elliott_falls_back_on_degenerate_rates(self):
        bank = _star_bank(model="gilbert-elliott")
        # rate 0 and 1 have no burst structure: Bernoulli fallback,
        # which is deterministic regardless of seed.
        assert bank.lost(0, 0, 0.0, 0) is False
        topo = spine_topology(LEAVES, 2, spine_scales=(10.0, 1.0))
        hot = EdgeLossBank(topo, 7, model="gilbert-elliott")
        assert hot.lost(0, 0, 0.5, 0) is True  # scaled to rate 1.0

    def test_unknown_model_and_bad_burst_raise(self):
        with pytest.raises(SimulationError):
            _star_bank(model="markov")
        with pytest.raises(SimulationError):
            _star_bank(mean_burst=0.5)
        assert set(EDGE_LOSS_MODELS) == {"bernoulli", "gilbert-elliott"}


class TestPathLoss:
    def test_single_edge_equals_bernoulli_at_derived_seed(self):
        bank = _star_bank(seed=11)
        loss = PathLoss(bank, 3, ((2,),), 0.35)
        reference = BernoulliLoss(0.35, seed=bank.edge_seed(2, 3))
        assert [loss.is_lost() for _ in range(64)] \
            == [reference.is_lost() for _ in range(64)]

    def test_multi_edge_path_is_and_over_edges(self):
        topo = spine_topology(LEAVES, 2)
        bank = EdgeLossBank(topo, 7)
        leaf_edge = topo.edge_index("s00", "r00")
        loss = PathLoss(bank, 0, ((0, leaf_edge),), 0.3)
        for slot in range(32):
            expected = (bank.lost(0, 0, 0.3, slot)
                        or bank.lost(leaf_edge, 0, 0.3, slot))
            # Re-querying replays the cached draws, so the comparison
            # is against exactly what PathLoss consumed.
            assert loss.is_lost() == expected

    def test_duplicates_counted_not_redelivered(self):
        # Two disjoint single-edge paths at rate 0: both always up,
        # one delivery + one suppressed duplicate per slot.
        bank = _star_bank()
        loss = PathLoss(bank, 0, ((0,), (1,)), 0.0)
        assert [loss.is_lost() for _ in range(5)] == [False] * 5
        assert loss.duplicates_suppressed == 5

    def test_reset_replays_the_same_draws(self):
        bank = _star_bank()
        loss = PathLoss(bank, 0, ((0,), (1,)), 0.4)
        first = [loss.is_lost() for _ in range(16)]
        dup_first = loss.duplicates_suppressed
        loss.reset()
        assert [loss.is_lost() for _ in range(16)] == first
        assert loss.duplicates_suppressed == dup_first

    def test_mean_loss_rate_uses_inclusion_exclusion(self):
        bank = _star_bank()
        loss = PathLoss(bank, 0, ((0,), (1,)), 0.4)
        # P(both private paths down) = 0.4 * 0.4
        assert loss.mean_loss_rate == pytest.approx(0.16)

    def test_validation(self):
        bank = _star_bank()
        with pytest.raises(SimulationError):
            PathLoss(bank, 0, (), 0.1)
        with pytest.raises(SimulationError):
            PathLoss(bank, 0, ((0,),), 1.5)


class TestDeliveryProbability:
    def test_shared_edges_counted_once(self):
        # Paths (a, b) and (a, c): shared edge a must not be squared.
        rates = {0: 0.2, 1: 0.3, 2: 0.4}
        got = delivery_probability(((0, 1), (0, 2)), rates)
        # P(a up) * P(b up or c up) = 0.8 * (1 - 0.3*0.4)
        assert got == pytest.approx(0.8 * (1.0 - 0.12))

    def test_matches_brute_force_enumeration(self):
        rates = {0: 0.3, 1: 0.2, 2: 0.25, 3: 0.15}
        paths = ((0, 2), (1, 2), (3,))
        brute = 0.0
        for mask in range(16):
            up = {edge: bool(mask & (1 << edge)) for edge in range(4)}
            prob = 1.0
            for edge in range(4):
                prob *= (1.0 - rates[edge]) if up[edge] else rates[edge]
            if any(all(up[edge] for edge in path) for path in paths):
                brute += prob
        assert delivery_probability(paths, rates) == pytest.approx(brute)

    def test_degenerate_rates(self):
        assert delivery_probability(((0,),), {0: 0.0}) == pytest.approx(1.0)
        assert delivery_probability(((0,),), {0: 1.0}) == pytest.approx(0.0)
