"""TopologyChannel: Channel semantics, factory seeds, star differential."""

import pytest

from repro.analysis.conformance import attack_mix
from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import SimulationError
from repro.network.loss import BernoulliLoss
from repro.schemes.registry import make_scheme
from repro.serve.sender import default_channel_factory
from repro.simulation.sender import StreamSender, make_payloads
from repro.topology import (
    EdgeLossBank,
    PathLoss,
    TopologyChannel,
    dualspine_topology,
    redundant_trees,
    shortest_path_tree,
    star_topology,
    topology_channel_factory,
)

LEAVES = [f"r{i:02d}" for i in range(6)]
SEED = 42


def _block(block_id=0):
    scheme = make_scheme("emss(2,1)")
    signer = HmacStubSigner(key=b"topology-channel-test")
    sender = StreamSender(scheme, signer, 12)
    for _ in range(block_id):
        sender.send_block(make_payloads(12))
    return sender.send_block(make_payloads(12))


class TestChannel:
    def test_requires_a_path_loss(self):
        with pytest.raises(SimulationError):
            TopologyChannel(BernoulliLoss(0.1, seed=1), "r00")

    def test_signature_packets_are_protected_by_default(self):
        topo = star_topology(LEAVES)
        bank = EdgeLossBank(topo, SEED)
        loss = PathLoss(bank, 0, ((0,),), 1.0)  # every slot down
        channel = TopologyChannel(loss, "r00")
        deliveries = channel.transmit(_block())
        assert all(d.packet.is_signature_packet for d in deliveries)
        assert deliveries, "the protected signature packet must survive"

    def test_duplicates_forwarded_from_path_loss(self):
        topo = dualspine_topology(LEAVES, 2)
        trees = redundant_trees(topo, 2)
        factory = topology_channel_factory(SEED, topo, trees)
        channel = factory(0, 0, 0.0)
        channel.transmit(_block())
        assert channel.duplicates_suppressed > 0


class TestFactory:
    def test_star_passive_deliveries_match_independent_channels(self):
        topo = star_topology(LEAVES)
        tree = shortest_path_tree(topo)
        topo_factory = topology_channel_factory(SEED, topo, [tree])
        plain_factory = default_channel_factory(SEED)
        for receiver in range(len(LEAVES)):
            for block_id in range(3):
                packets = _block(block_id)
                got = topo_factory(receiver, block_id, 0.25).transmit(packets)
                want = plain_factory(receiver, block_id,
                                     0.25).transmit(packets)
                assert [(d.packet.seq, d.arrival_time) for d in got] \
                    == [(d.packet.seq, d.arrival_time) for d in want], (
                        f"receiver {receiver} block {block_id}")

    def test_star_attacked_wire_bytes_match_independent_channels(self):
        topo = star_topology(LEAVES)
        tree = shortest_path_tree(topo)
        plan = lambda: attack_mix("pollution")  # noqa: E731
        topo_factory = topology_channel_factory(SEED, topo, [tree], plan)
        plain_factory = default_channel_factory(SEED, plan)
        packets = _block()
        for receiver in (0, 3, 5):
            got = topo_factory(receiver, 0, 0.2).transmit_wire(packets)
            want = plain_factory(receiver, 0, 0.2).transmit_wire(packets)
            assert [(d.data, d.arrival_time, d.kind) for d in got] \
                == [(d.data, d.arrival_time, d.kind) for d in want]

    def test_receiver_index_must_be_a_leaf(self):
        topo = star_topology(LEAVES)
        factory = topology_channel_factory(SEED, topo,
                                           [shortest_path_tree(topo)])
        with pytest.raises(SimulationError):
            factory(len(LEAVES), 0, 0.1)

    def test_trees_must_belong_to_the_topology(self):
        topo = star_topology(LEAVES)
        other = star_topology(LEAVES)
        with pytest.raises(SimulationError):
            topology_channel_factory(SEED, topo, [shortest_path_tree(other)])
        with pytest.raises(SimulationError):
            topology_channel_factory(SEED, topo, [])

    def test_factory_exposes_shared_bank(self):
        topo = star_topology(LEAVES)
        factory = topology_channel_factory(SEED, topo,
                                           [shortest_path_tree(topo)])
        factory(0, 0, 0.1).transmit(_block())
        assert factory.bank.cells_touched == 1
        assert set(factory.paths_by_leaf) == set(LEAVES)
