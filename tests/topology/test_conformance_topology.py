"""Statistical conformance of topology loss against the analytic models.

Two claims, held to the same 3-standard-error bar as the rest of the
conformance suite:

* **marginals** — on a star topology the induced per-receiver loss is
  the paper's independent Bernoulli model, so every registered
  scheme's wire-level ``q_i`` must match its analytic profile at the
  leaf's path loss rate (and on a multi-hop spine path, at the
  inclusion–exclusion rate the path implies);
* **correlation** — sibling leaves behind a shared spine edge must
  show *positive* delivery correlation matching the closed-form edge
  product ``Cov = l_a · l_b · s (1 - s)``, measured in Fisher-z SEs.

All runs are seeded; the trial counts keep every pinned deviation
comfortably under the bar while staying fast enough for tier 1.
"""

import pytest

from repro.analysis.conformance import DEFAULT_SPECS, default_scheme
from repro.exceptions import SimulationError
from repro.topology import (
    dualspine_topology,
    parallel_topology_trials,
    path_loss_rate,
    redundant_trees,
    shortest_path_tree,
    sibling_delivery_correlation,
    spine_topology,
    star_topology,
    topology_conformance_deviations,
    topology_wire_stats,
)

LEAVES = [f"r{i:02d}" for i in range(4)]
BLOCK = 12
TRIALS = 400
SEED = 7
RATE = 0.15

SCHEME_NAMES = sorted(DEFAULT_SPECS)


@pytest.fixture(scope="module")
def star():
    topo = star_topology(LEAVES)
    return topo, [shortest_path_tree(topo)]


@pytest.fixture(scope="module")
def spine():
    topo = spine_topology(LEAVES, 2)
    return topo, [shortest_path_tree(topo)]


class TestStarMarginals:
    @pytest.mark.parametrize("name", SCHEME_NAMES)
    def test_every_scheme_within_three_se_of_analytic(self, star, name):
        topo, trees = star
        rows = topology_conformance_deviations(
            default_scheme(name), topo, trees, "r01", BLOCK, RATE, TRIALS,
            seed=SEED)
        worst = max(rows, key=lambda row: row["deviation_se"])
        assert worst["deviation_se"] < 3.0, (
            f"{name} on star: position {worst['position']} deviates "
            f"{worst['deviation_se']:.2f} SE from the analytic model")

    def test_star_path_rate_is_the_base_rate(self, star):
        topo, trees = star
        for leaf in LEAVES:
            assert path_loss_rate(topo, trees, leaf, RATE) \
                == pytest.approx(RATE)


class TestSpineMarginals:
    def test_two_hop_path_rate_compounds(self, spine):
        topo, trees = spine
        # Spine edge and leaf edge both at RATE: 1 - (1-p)^2.
        assert path_loss_rate(topo, trees, "r00", RATE) \
            == pytest.approx(1.0 - (1.0 - RATE) ** 2)

    def test_emss_on_spine_leaf_within_three_se(self, spine):
        topo, trees = spine
        rows = topology_conformance_deviations(
            default_scheme("emss"), topo, trees, "r00", BLOCK, RATE, TRIALS,
            seed=SEED)
        assert max(row["deviation_se"] for row in rows) < 3.0

    def test_hot_spine_scale_shifts_the_marginal(self):
        topo = spine_topology(LEAVES, 2, spine_scales=(2.0, 1.0))
        trees = [shortest_path_tree(topo)]
        hot = path_loss_rate(topo, trees, "r00", RATE)
        clean = path_loss_rate(topo, trees, "r03", RATE)
        assert hot == pytest.approx(1.0 - (1.0 - 2 * RATE) * (1.0 - RATE))
        assert hot > clean


class TestSiblingCorrelation:
    def test_pinned_spine_session_matches_closed_form(self, spine):
        topo, trees = spine
        report = sibling_delivery_correlation(topo, trees, "r00", "r01",
                                              0.2, 20000, seed=SEED)
        assert report["shared_edges"] == 1
        assert report["predicted"] > 0
        assert report["measured"] > 0, "siblings must correlate positively"
        assert report["deviation_se"] < 3.0, (
            f"measured {report['measured']:.4f} vs closed-form "
            f"{report['predicted']:.4f}: {report['deviation_se']:.2f} SE")

    def test_cross_subtree_leaves_share_no_edge(self, spine):
        topo, trees = spine
        report = sibling_delivery_correlation(topo, trees, "r00", "r03",
                                              0.2, 20000, seed=SEED)
        assert report["shared_edges"] == 0
        assert report["predicted"] == pytest.approx(0.0)
        assert report["deviation_se"] < 3.0

    def test_star_leaves_are_uncorrelated(self, star):
        topo, trees = star
        report = sibling_delivery_correlation(topo, trees, "r00", "r01",
                                              0.2, 20000, seed=SEED)
        assert report["shared_edges"] == 0
        assert report["predicted"] == pytest.approx(0.0)
        assert report["deviation_se"] < 3.0

    def test_rejects_redundant_paths_and_tiny_samples(self, spine):
        topo, trees = spine
        with pytest.raises(SimulationError):
            sibling_delivery_correlation(topo, trees, "r00", "r01", 0.2, 4)
        dual_topo = dualspine_topology(LEAVES, 2)
        dual_trees = redundant_trees(dual_topo, 2)
        with pytest.raises(SimulationError):
            sibling_delivery_correlation(dual_topo, dual_trees, "r00", "r01",
                                         0.2, 1000)


class TestShardingDeterminism:
    def test_parallel_fold_identical_across_worker_counts(self, star):
        topo, trees = star
        scheme = default_scheme("emss")
        baseline = parallel_topology_trials(scheme, topo, trees, "r00",
                                            BLOCK, RATE, 60, seed=SEED,
                                            workers=1)
        for workers in (2, 4):
            shard = parallel_topology_trials(scheme, topo, trees, "r00",
                                             BLOCK, RATE, 60, seed=SEED,
                                             workers=workers)
            assert shard.tallies == baseline.tallies
            assert shard.sent == baseline.sent
            assert shard.dropped == baseline.dropped

    def test_wire_stats_equals_sharded_run(self, star):
        topo, trees = star
        scheme = default_scheme("rohatgi")
        serial = topology_wire_stats(scheme, topo, trees, "r00", BLOCK,
                                     RATE, 60, seed=SEED)
        sharded = parallel_topology_trials(scheme, topo, trees, "r00",
                                           BLOCK, RATE, 60, seed=SEED,
                                           workers=2, chunks=4)
        assert sharded.tallies == serial.tallies
