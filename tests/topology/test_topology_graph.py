"""Topology construction: validation, edge identity, subtree structure."""

import networkx as nx
import pytest

from repro.exceptions import SimulationError
from repro.topology import (
    TOPOLOGY_SPECS,
    Topology,
    dualspine_topology,
    make_topology,
    spine_topology,
    star_topology,
)

LEAVES = [f"r{i:02d}" for i in range(8)]


class TestStar:
    def test_leaf_edges_indexed_by_receiver_order(self):
        topo = star_topology(LEAVES)
        for index, leaf in enumerate(LEAVES):
            assert topo.edge_index("root", leaf) == index
        assert topo.edge_count == len(LEAVES)

    def test_subtree_of_is_the_leaf_itself(self):
        topo = star_topology(LEAVES)
        for leaf in LEAVES:
            assert topo.subtree_of(leaf) == leaf
        assert topo.subtree_groups() == {leaf: [leaf] for leaf in LEAVES}


class TestSpine:
    def test_spine_edges_come_first_then_leaf_edges(self):
        topo = spine_topology(LEAVES, 2)
        assert topo.edge_index("root", "s00") == 0
        assert topo.edge_index("root", "s01") == 1
        assert topo.edge_index("s00", "r00") == 2
        assert topo.edge_index("s01", "r07") == 9

    def test_contiguous_group_assignment(self):
        topo = spine_topology(LEAVES, 2)
        groups = topo.subtree_groups()
        assert groups == {"s00": LEAVES[:4], "s01": LEAVES[4:]}

    def test_spine_scales_apply_per_router(self):
        topo = spine_topology(LEAVES, 2, spine_scales=(3.0, 1.0))
        assert topo.edge_scale("root", "s00") == 3.0
        assert topo.edge_scale("root", "s01") == 1.0
        assert topo.scale_of_index(0) == 3.0

    def test_rejects_more_groups_than_leaves(self):
        with pytest.raises(SimulationError):
            spine_topology(LEAVES[:2], 3)
        with pytest.raises(SimulationError):
            spine_topology(LEAVES, 0)
        with pytest.raises(SimulationError):
            spine_topology(LEAVES, 2, spine_scales=(1.0,))


class TestDualspine:
    def test_two_planes_reach_every_router(self):
        topo = dualspine_topology(LEAVES, 2)
        assert topo.edge_index("root", "pA") == 0
        assert topo.edge_index("root", "pB") == 1
        for router in ("s00", "s01"):
            assert topo.graph.has_edge("pA", router)
            assert topo.graph.has_edge("pB", router)
        # Plane B is weighted epsilon heavier so deterministic
        # construction prefers plane A first.
        assert topo.graph.edges["root", "pB"]["weight"] > \
            topo.graph.edges["root", "pA"]["weight"]


class TestValidation:
    def test_root_must_be_in_graph_and_not_a_leaf(self):
        graph = nx.Graph()
        graph.add_edge("root", "a", index=0)
        with pytest.raises(SimulationError):
            Topology(graph, "missing", ["a"])
        with pytest.raises(SimulationError):
            Topology(graph, "root", ["root"])

    def test_edges_need_dense_unique_indices(self):
        graph = nx.Graph()
        graph.add_edge("root", "a", index=0)
        graph.add_edge("a", "b", index=2)  # gap
        with pytest.raises(SimulationError):
            Topology(graph, "root", ["b"])

    def test_graph_must_be_connected(self):
        graph = nx.Graph()
        graph.add_edge("root", "a", index=0)
        graph.add_edge("x", "y", index=1)
        with pytest.raises(SimulationError):
            Topology(graph, "root", ["a"])

    def test_negative_loss_scale_rejected(self):
        graph = nx.Graph()
        graph.add_edge("root", "a", index=0, loss_scale=-0.5)
        with pytest.raises(SimulationError):
            Topology(graph, "root", ["a"])

    def test_duplicate_and_unknown_leaves_rejected(self):
        graph = nx.Graph()
        graph.add_edge("root", "a", index=0)
        with pytest.raises(SimulationError):
            Topology(graph, "root", ["a", "a"])
        with pytest.raises(SimulationError):
            Topology(graph, "root", ["ghost"])
        with pytest.raises(SimulationError):
            Topology(graph, "root", [])

    def test_subtree_of_rejects_non_leaf(self):
        topo = spine_topology(LEAVES, 2)
        with pytest.raises(SimulationError):
            topo.subtree_of("s00")


class TestMakeTopology:
    def test_spec_grammar(self):
        assert make_topology("star", LEAVES).name == "star"
        assert make_topology("spine:2", LEAVES).name == "spine:2"
        assert make_topology("dualspine:4", LEAVES).name == "dualspine:4"
        assert make_topology("  SPINE:2 ", LEAVES).name == "spine:2"

    @pytest.mark.parametrize("spec", ["ring", "spine:", "spine:x",
                                      "dualspine:1.5", ""])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(SimulationError):
            make_topology(spec, LEAVES)

    def test_spec_table_is_accurate(self):
        assert "star" in TOPOLOGY_SPECS
        assert any(spec.startswith("spine:") for spec in TOPOLOGY_SPECS)
        assert any(spec.startswith("dualspine:") for spec in TOPOLOGY_SPECS)

    def test_describe_is_manifest_ready(self):
        detail = make_topology("spine:2", LEAVES).describe()
        assert detail["name"] == "spine:2"
        assert detail["leaves"] == len(LEAVES)
        assert detail["subtrees"] == 2
        assert detail["root"] == "root"
