"""Unit tests for the Eq. 1 topology bounds."""

import pytest

from repro.core.bounds import (
    lambda_bounds,
    lambda_bounds_from_sizes,
    loss_event_probability,
)
from repro.core.graph import DependenceGraph
from repro.core.paths import exact_lambda
from repro.exceptions import AnalysisError


class TestLossEventProbability:
    def test_empty_set_never_loses(self):
        assert loss_event_probability(0, 0.3) == 0.0

    def test_single_packet(self):
        assert loss_event_probability(1, 0.3) == pytest.approx(0.3)

    def test_growth_with_size(self):
        values = [loss_event_probability(k, 0.2) for k in range(6)]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            loss_event_probability(-1, 0.3)
        with pytest.raises(AnalysisError):
            loss_event_probability(2, 1.5)


class TestBoundsFromSizes:
    def test_single_path(self):
        p = 0.2
        bounds = lambda_bounds_from_sizes([3], p)
        # One path: both bounds coincide at (1-p)^3.
        assert bounds.lower == pytest.approx((1 - p) ** 3)
        assert bounds.upper == pytest.approx((1 - p) ** 3)

    def test_lower_le_upper(self):
        bounds = lambda_bounds_from_sizes([1, 2, 5], 0.3)
        assert bounds.lower <= bounds.upper

    def test_lower_is_shortest_path_survival(self):
        p = 0.25
        bounds = lambda_bounds_from_sizes([4, 2, 7], p)
        assert bounds.lower == pytest.approx((1 - p) ** 2)

    def test_upper_is_disjoint_product(self):
        p = 0.5
        bounds = lambda_bounds_from_sizes([1, 1], p)
        assert bounds.upper == pytest.approx(1 - p ** 2)

    def test_exponent_form_bounds_upper(self):
        bounds = lambda_bounds_from_sizes([2, 3, 4], 0.3)
        # The paper's exponent form upper-bounds the true best case.
        assert bounds.exponent_lower >= bounds.upper - 1e-12

    def test_empty_theta_family(self):
        bounds = lambda_bounds_from_sizes([], 0.3)
        assert bounds.lower == 0.0
        assert bounds.upper == 0.0
        assert bounds.path_count == 0

    def test_contains(self):
        bounds = lambda_bounds_from_sizes([2, 3], 0.2)
        assert bounds.contains(bounds.lower)
        assert bounds.contains(bounds.upper)
        assert not bounds.contains(bounds.upper + 0.01)


class TestBoundsOnGraphs:
    def _check_containment(self, graph, target, p):
        bounds = lambda_bounds(graph, target, p)
        exact = exact_lambda(graph, target, p)
        assert bounds.contains(exact, tolerance=1e-9), (
            f"exact {exact} outside [{bounds.lower}, {bounds.upper}]"
        )

    @pytest.mark.parametrize("p", [0.05, 0.2, 0.5, 0.8])
    def test_diamond(self, p):
        graph = DependenceGraph.from_edges(
            4, 1, [(1, 2), (1, 3), (2, 4), (3, 4)])
        self._check_containment(graph, 4, p)

    @pytest.mark.parametrize("p", [0.1, 0.4])
    def test_shared_prefix(self, p):
        graph = DependenceGraph.from_edges(
            5, 1, [(1, 2), (2, 3), (2, 4), (3, 5), (4, 5)])
        self._check_containment(graph, 5, p)

    def test_disjoint_paths_attain_upper(self):
        graph = DependenceGraph.from_edges(
            4, 1, [(1, 2), (1, 3), (2, 4), (3, 4)])
        p = 0.3
        bounds = lambda_bounds(graph, 4, p)
        assert exact_lambda(graph, 4, p) == pytest.approx(bounds.upper)

    def test_nested_paths_attain_lower(self):
        # Single chain plus a shortcut: paths fully nested.
        graph = DependenceGraph.from_edges(
            4, 1, [(1, 2), (2, 3), (3, 4), (2, 4)])
        p = 0.3
        bounds = lambda_bounds(graph, 4, p)
        assert exact_lambda(graph, 4, p) == pytest.approx(bounds.lower)
