"""Unit tests for the generic Eq. 9 recurrence solver."""

import pytest

from repro.core.recurrence import (
    RecurrenceResult,
    q_min_from_profile,
    solve_recurrence,
)
from repro.exceptions import AnalysisError


class TestEquationEight:
    """The E_{2,1} instance, Eq. 8, against hand computation."""

    def test_boundary_conditions(self):
        # The paper's Eq. 8 i.c.: q_1 = q_2 = q_3 = 1.
        result = solve_recurrence(6, [1, 2], 0.2)
        assert result.q[0] == 1.0
        assert result.q[1] == 1.0
        assert result.q[2] == 1.0

    def test_first_recursive_step(self):
        p = 0.2
        result = solve_recurrence(6, [1, 2], p)
        # q_4 = 1 - (1-(1-p)q_3)(1-(1-p)q_2) with q_2 = q_3 = 1.
        assert result.q[3] == pytest.approx(1 - p ** 2)

    def test_second_recursive_step(self):
        p = 0.2
        result = solve_recurrence(6, [1, 2], p)
        q4 = 1 - p ** 2
        expected = 1 - (1 - (1 - p) * q4) * (1 - (1 - p))
        assert result.q[4] == pytest.approx(expected)

    def test_monotone_decreasing(self):
        result = solve_recurrence(50, [1, 2], 0.3)
        for earlier, later in zip(result.q, result.q[1:]):
            assert later <= earlier + 1e-12

    def test_fixed_point_floor(self):
        # q_inf = 1 - (p/(1-p))^2 for p < 1/2.
        p = 0.2
        result = solve_recurrence(500, [1, 2], p)
        floor = 1 - (p / (1 - p)) ** 2
        assert result.q_min == pytest.approx(floor, abs=1e-6)
        assert result.q_min >= floor - 1e-12


class TestGeneralOffsets:
    def test_single_offset_is_rohatgi_like(self):
        p = 0.25
        result = solve_recurrence(10, [1], p)
        # Pure chain: q_i = (1-p)^(i-2) for i >= 2 in this indexing.
        for i in range(2, 11):
            assert result.q[i - 1] == pytest.approx((1 - p) ** (i - 2))

    def test_larger_offset_sets_dominate(self):
        p = 0.3
        small = solve_recurrence(100, [1, 2], p).q
        large = solve_recurrence(100, [1, 2, 3], p).q
        assert all(b >= a - 1e-12 for a, b in zip(small, large))

    def test_extremes_of_p(self):
        assert solve_recurrence(20, [1, 2], 0.0).q_min == pytest.approx(1.0)
        result = solve_recurrence(20, [1, 2], 1.0)
        assert result.q_min == pytest.approx(0.0)

    def test_boundary_extent_scales_with_max_offset(self):
        # i <= max(A) is the stated boundary, and i = max(A)+1 clamps
        # its longest branch to the root — so 1.0 through index 7.
        result = solve_recurrence(20, [3, 6], 0.4)
        assert all(q == 1.0 for q in result.q[:7])
        assert result.q[7] < 1.0

    def test_negative_offsets_converge(self):
        # A packet also stores its hash one slot away from the root.
        result = solve_recurrence(30, [1, 2, -1], 0.3)
        baseline = solve_recurrence(30, [1, 2], 0.3)
        assert result.iterations > 1
        assert result.q_min >= baseline.q_min - 1e-12

    def test_duplicate_offsets_collapse(self):
        a = solve_recurrence(20, [1, 2, 2], 0.3).q
        b = solve_recurrence(20, [1, 2], 0.3).q
        assert a == b


class TestValidation:
    def test_empty_offsets(self):
        with pytest.raises(AnalysisError):
            solve_recurrence(10, [], 0.1)

    def test_zero_offset(self):
        with pytest.raises(AnalysisError):
            solve_recurrence(10, [0, 1], 0.1)

    def test_all_negative(self):
        with pytest.raises(AnalysisError):
            solve_recurrence(10, [-1, -2], 0.1)

    def test_bad_p(self):
        with pytest.raises(AnalysisError):
            solve_recurrence(10, [1], 1.5)

    def test_bad_n(self):
        with pytest.raises(AnalysisError):
            solve_recurrence(0, [1], 0.1)


class TestHelpers:
    def test_q_min_from_profile(self):
        assert q_min_from_profile([1.0, 0.5, 0.9]) == 0.5

    def test_q_min_rejects_empty(self):
        with pytest.raises(AnalysisError):
            q_min_from_profile([])

    def test_q_min_rejects_out_of_range(self):
        with pytest.raises(AnalysisError):
            q_min_from_profile([0.5, 1.2])

    def test_result_properties(self):
        result = solve_recurrence(5, [1], 0.1)
        assert isinstance(result, RecurrenceResult)
        assert result.n == 5
        assert result.q_min == min(result.q)
