"""Unit tests for dependence-graph persistence."""

import io
import json

import pytest

from repro.core.graph import DependenceGraph
from repro.core.serialize import (
    graph_from_json,
    graph_to_json,
    load_graph,
    save_graph,
)
from repro.exceptions import GraphError
from repro.schemes.augmented_chain import AugmentedChainScheme
from repro.schemes.emss import EmssScheme


class TestRoundtrip:
    @pytest.mark.parametrize("graph", [
        EmssScheme(2, 1).build_graph(20),
        AugmentedChainScheme(3, 3).build_graph(33),
        DependenceGraph.from_edges(4, 1, [(1, 2), (1, 3), (2, 4), (3, 4)]),
    ])
    def test_identity(self, graph):
        assert graph_from_json(graph_to_json(graph)) == graph

    def test_canonical_output(self):
        a = DependenceGraph(4, root=1)
        a.add_edges([(1, 2), (2, 3), (3, 4)])
        b = DependenceGraph(4, root=1)
        b.add_edges([(3, 4), (1, 2), (2, 3)])  # insertion order differs
        assert graph_to_json(a) == graph_to_json(b)

    def test_file_roundtrip(self, tmp_path):
        graph = EmssScheme(2, 1).build_graph(12)
        path = str(tmp_path / "graph.json")
        save_graph(graph, path)
        assert load_graph(path) == graph

    def test_stream_roundtrip(self):
        graph = EmssScheme(3, 2).build_graph(15)
        buffer = io.StringIO()
        save_graph(graph, buffer)
        buffer.seek(0)
        assert load_graph(buffer) == graph

    def test_designed_graph_survives(self):
        from repro.design.disjoint import disjoint_paths_design

        graph = disjoint_paths_design(30, 2)
        assert graph_from_json(graph_to_json(graph)) == graph


class TestValidationOnBoundaries:
    def test_invalid_graph_refuses_to_serialize(self):
        graph = DependenceGraph(3, root=1)
        graph.add_edge(1, 2)  # vertex 3 unreachable
        with pytest.raises(GraphError):
            graph_to_json(graph)

    def test_malformed_json(self):
        with pytest.raises(GraphError):
            graph_from_json("not json at all{")

    def test_non_object_payload(self):
        with pytest.raises(GraphError):
            graph_from_json("[1, 2, 3]")

    def test_wrong_version(self):
        with pytest.raises(GraphError):
            graph_from_json('{"format": 9, "n": 2, "root": 1, "edges": []}')

    def test_missing_fields(self):
        with pytest.raises(GraphError):
            graph_from_json('{"format": 1, "n": 2}')

    def test_invalid_payload_graph_rejected(self):
        # Edges describing a cycle must fail Definition 1 on load.
        payload = {"format": 1, "n": 3, "root": 1,
                   "edges": [[1, 2], [2, 3], [3, 2]]}
        with pytest.raises(GraphError):
            graph_from_json(json.dumps(payload))
