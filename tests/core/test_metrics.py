"""Unit tests for graph-derived metrics (Eq. 2-4 and buffers)."""

import pytest

from repro.core.graph import DependenceGraph
from repro.core.metrics import (
    compute_metrics,
    deterministic_delays,
    hash_buffer_size,
    max_deterministic_delay,
    mean_hashes_per_packet,
    message_buffer_size,
    overhead_bytes_per_packet,
)
from repro.exceptions import GraphError
from repro.schemes.emss import EmssScheme
from repro.schemes.rohatgi import RohatgiScheme


@pytest.fixture
def rohatgi8():
    return RohatgiScheme().build_graph(8)


@pytest.fixture
def emss8():
    return EmssScheme(2, 1).build_graph(8)


class TestOverhead:
    def test_mean_hashes_eq2(self, rohatgi8):
        assert mean_hashes_per_packet(rohatgi8) == pytest.approx(7 / 8)

    def test_emss_roughly_two_hashes(self, emss8):
        assert 1.0 < mean_hashes_per_packet(emss8) <= 2.0

    def test_bytes_eq3(self, rohatgi8):
        d = overhead_bytes_per_packet(rohatgi8, l_sign=128, l_hash=16)
        assert d == pytest.approx((128 + 16 * 7) / 8)

    def test_sign_copies_multiply(self, rohatgi8):
        single = overhead_bytes_per_packet(rohatgi8, 128, 16, sign_copies=1)
        triple = overhead_bytes_per_packet(rohatgi8, 128, 16, sign_copies=3)
        assert triple == pytest.approx(single + 2 * 128 / 8)

    def test_validation(self, rohatgi8):
        with pytest.raises(GraphError):
            overhead_bytes_per_packet(rohatgi8, -1, 16)
        with pytest.raises(GraphError):
            overhead_bytes_per_packet(rohatgi8, 128, 16, sign_copies=0)


class TestBuffers:
    def test_rohatgi_paper_example(self, rohatgi8):
        # "1 hash buffer and no message buffer is needed"
        assert hash_buffer_size(rohatgi8) == 1
        assert message_buffer_size(rohatgi8) == 0

    def test_emss_buffers(self, emss8):
        # Hashes flow toward the signature: message buffering only.
        assert message_buffer_size(emss8) > 0
        assert hash_buffer_size(emss8) == 0

    def test_empty_graph(self):
        graph = DependenceGraph(1, root=1)
        assert message_buffer_size(graph) == 0
        assert hash_buffer_size(graph) == 0

    def test_mixed_direction(self):
        graph = DependenceGraph.from_edges(
            5, 3, [(3, 1), (3, 5), (1, 4), (5, 2)])
        # (5,2): label 3 -> message buffer 3; (1,4): label -3 -> hash buffer 3
        assert message_buffer_size(graph) == 3
        assert hash_buffer_size(graph) == 3


class TestDelay:
    def test_rohatgi_zero_delay(self, rohatgi8):
        delays = deterministic_delays(rohatgi8)
        assert all(d == 0 for d in delays.values())

    def test_emss_eq4(self, emss8):
        # Signature last: t_d(P_i) = (n - i) slots.
        delays = deterministic_delays(emss8)
        n = emss8.n
        for vertex, delay in delays.items():
            assert delay == n - vertex
        assert max_deterministic_delay(emss8) == n - 1

    def test_partial_delay_structure(self):
        # root=1, chain to 3, but 4 depends on 5 (sent later).
        graph = DependenceGraph.from_edges(
            5, 1, [(1, 2), (2, 3), (1, 5), (5, 4)])
        delays = deterministic_delays(graph)
        assert delays[2] == 0
        assert delays[4] == 1  # waits for packet 5
        assert delays[5] == 0

    def test_unreachable_raises(self):
        graph = DependenceGraph(3, root=1)
        graph.add_edge(1, 2)
        with pytest.raises(GraphError):
            deterministic_delays(graph)


class TestComputeMetrics:
    def test_bundle_consistency(self, emss8):
        metrics = compute_metrics(emss8, l_sign=100, l_hash=10)
        assert metrics.n == 8
        assert metrics.edge_count == emss8.edge_count
        assert metrics.mean_hashes == pytest.approx(
            mean_hashes_per_packet(emss8))
        assert metrics.delay_slots == max_deterministic_delay(emss8)

    def test_as_row_keys(self, emss8):
        row = compute_metrics(emss8).as_row()
        assert {"n", "edges", "hashes/pkt", "bytes/pkt",
                "msg buffer", "hash buffer", "delay (slots)"} <= set(row)
