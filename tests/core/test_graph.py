"""Unit tests for the DependenceGraph (Definition 1 invariants)."""

import pytest

from repro.core.graph import DependenceGraph
from repro.exceptions import GraphError


@pytest.fixture
def chain5():
    graph = DependenceGraph(5, root=1)
    for i in range(1, 5):
        graph.add_edge(i, i + 1)
    return graph


class TestConstruction:
    def test_vertices_are_one_based(self):
        graph = DependenceGraph(4, root=1)
        assert list(graph.vertices) == [1, 2, 3, 4]

    def test_rejects_empty_block(self):
        with pytest.raises(GraphError):
            DependenceGraph(0, root=1)

    def test_rejects_root_out_of_range(self):
        with pytest.raises(GraphError):
            DependenceGraph(3, root=4)
        with pytest.raises(GraphError):
            DependenceGraph(3, root=0)

    def test_single_vertex_block_is_valid(self):
        graph = DependenceGraph(1, root=1)
        graph.validate()


class TestEdges:
    def test_label_is_index_difference(self, chain5):
        assert chain5.label(2, 3) == -1
        graph = DependenceGraph(5, root=5)
        graph.add_edge(5, 2)
        assert graph.label(5, 2) == 3

    def test_rejects_self_loop(self):
        graph = DependenceGraph(3, root=1)
        with pytest.raises(GraphError):
            graph.add_edge(2, 2)

    def test_rejects_duplicate_edge(self, chain5):
        with pytest.raises(GraphError):
            chain5.add_edge(1, 2)

    def test_rejects_edge_into_root(self):
        graph = DependenceGraph(3, root=1)
        with pytest.raises(GraphError):
            graph.add_edge(2, 1)

    def test_rejects_out_of_range_vertex(self):
        graph = DependenceGraph(3, root=1)
        with pytest.raises(GraphError):
            graph.add_edge(1, 4)

    def test_degree_accessors(self, chain5):
        assert chain5.out_degree(1) == 1
        assert chain5.in_degree(1) == 0
        assert chain5.in_degree(3) == 1
        assert chain5.successors(2) == [3]
        assert chain5.predecessors(3) == [2]

    def test_edge_count(self, chain5):
        assert chain5.edge_count == 4

    def test_remove_edge(self, chain5):
        chain5.remove_edge(4, 5)
        assert not chain5.has_edge(4, 5)
        with pytest.raises(GraphError):
            chain5.remove_edge(4, 5)

    def test_missing_label_lookup(self, chain5):
        with pytest.raises(GraphError):
            chain5.label(1, 5)


class TestValidation:
    def test_valid_chain(self, chain5):
        chain5.validate()
        assert chain5.is_valid()

    def test_detects_cycle(self):
        graph = DependenceGraph(4, root=1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.add_edge(3, 2)  # would-be cycle is legal to add...
        with pytest.raises(GraphError):
            graph.validate()  # ...but fails validation

    def test_detects_unreachable(self):
        graph = DependenceGraph(4, root=1)
        graph.add_edge(1, 2)
        # 3 and 4 unreachable
        assert graph.unreachable_vertices() == {3, 4}
        with pytest.raises(GraphError):
            graph.validate()

    def test_topological_order_respects_edges(self, chain5):
        order = chain5.topological_order()
        position = {v: i for i, v in enumerate(order)}
        for i, j in chain5.edges():
            assert position[i] < position[j]

    def test_topological_order_rejects_cycle(self):
        graph = DependenceGraph(3, root=1)
        graph.add_edge(1, 2)
        graph.add_edge(2, 3)
        graph.add_edge(3, 2)
        with pytest.raises(GraphError):
            graph.topological_order()


class TestCopyAndEquality:
    def test_copy_is_independent(self, chain5):
        clone = chain5.copy()
        clone.remove_edge(4, 5)
        assert chain5.has_edge(4, 5)
        assert not clone.has_edge(4, 5)

    def test_equality_by_structure(self, chain5):
        assert chain5 == chain5.copy()

    def test_inequality_on_different_edges(self, chain5):
        other = chain5.copy()
        other.remove_edge(4, 5)
        assert chain5 != other

    def test_from_edges_validates(self):
        graph = DependenceGraph.from_edges(3, 1, [(1, 2), (2, 3)])
        assert graph.edge_count == 2
        with pytest.raises(GraphError):
            DependenceGraph.from_edges(3, 1, [(1, 2)])  # 3 unreachable

    def test_unhashable(self, chain5):
        with pytest.raises(TypeError):
            hash(chain5)

    def test_repr(self, chain5):
        assert "n=5" in repr(chain5)
