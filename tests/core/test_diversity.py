"""Unit tests for path-diversity analysis (Menger numbers, λ floors)."""

import pytest

from repro.core.diversity import (
    disjoint_path_count,
    disjoint_paths,
    diversity_lambda_floor,
    diversity_profile,
)
from repro.core.graph import DependenceGraph
from repro.core.paths import exact_lambda
from repro.exceptions import AnalysisError, GraphError
from repro.schemes.emss import EmssScheme
from repro.schemes.rohatgi import RohatgiScheme


@pytest.fixture
def diamond():
    return DependenceGraph.from_edges(4, 1, [(1, 2), (1, 3), (2, 4), (3, 4)])


class TestDisjointPathCount:
    def test_chain_has_one(self):
        graph = RohatgiScheme().build_graph(6)
        assert disjoint_path_count(graph, 6) == 1

    def test_diamond_has_two(self, diamond):
        assert disjoint_path_count(diamond, 4) == 2

    def test_direct_edge_counts(self, diamond):
        assert disjoint_path_count(diamond, 2) == 1

    def test_shared_vertex_limits_diversity(self):
        # Two paths both through vertex 2: Menger number 1.
        graph = DependenceGraph.from_edges(
            5, 1, [(1, 2), (2, 3), (2, 4), (3, 5), (4, 5)])
        assert disjoint_path_count(graph, 5) == 1

    def test_emss_diversity_equals_m(self):
        for m in (1, 2, 3):
            graph = EmssScheme(m, 1).build_graph(16)
            # The farthest-from-root vertex enjoys m disjoint chains.
            assert disjoint_path_count(graph, 1) == m

    def test_root_rejected(self, diamond):
        with pytest.raises(GraphError):
            disjoint_path_count(diamond, 1)

    def test_unreachable_gives_zero(self):
        graph = DependenceGraph(3, root=1)
        graph.add_edge(1, 2)
        assert disjoint_path_count(graph, 3) == 0


class TestDisjointPathsFamily:
    def test_family_is_internally_disjoint(self, diamond):
        family = disjoint_paths(diamond, 4)
        interiors = [set(path[1:-1]) for path in family]
        for i, a in enumerate(interiors):
            for b in interiors[i + 1:]:
                assert not (a & b)

    def test_family_paths_are_real(self, diamond):
        for path in disjoint_paths(diamond, 4):
            assert path[0] == diamond.root
            assert path[-1] == 4
            for u, v in zip(path, path[1:]):
                assert diamond.has_edge(u, v)

    def test_profile_covers_all_vertices(self, diamond):
        profile = diversity_profile(diamond)
        assert set(profile) == {2, 3, 4}
        assert profile[4] == 2


class TestLambdaFloor:
    def test_floor_below_exact(self, diamond):
        for p in (0.1, 0.3, 0.6):
            floor = diversity_lambda_floor(diamond, 4, p)
            assert floor <= exact_lambda(diamond, 4, p) + 1e-12

    def test_floor_exact_for_purely_disjoint_graph(self, diamond):
        # The diamond's two paths ARE the whole path family.
        p = 0.25
        assert diversity_lambda_floor(diamond, 4, p) == pytest.approx(
            exact_lambda(diamond, 4, p))

    def test_unreachable_floor_zero(self):
        graph = DependenceGraph(3, root=1)
        graph.add_edge(1, 2)
        assert diversity_lambda_floor(graph, 3, 0.2) == 0.0

    def test_validation(self, diamond):
        with pytest.raises(AnalysisError):
            diversity_lambda_floor(diamond, 4, 1.5)
