"""Unit tests for Θ-set enumeration and exact λ (Definition 2)."""

import pytest

from repro.core.graph import DependenceGraph
from repro.core.paths import (
    all_depths,
    exact_lambda,
    path_count,
    shortest_depth,
    theta_sets,
)
from repro.exceptions import GraphError


@pytest.fixture
def diamond():
    # 1 -> {2, 3} -> 4 : two disjoint interior paths.
    return DependenceGraph.from_edges(4, 1, [(1, 2), (1, 3), (2, 4), (3, 4)])


@pytest.fixture
def chain():
    return DependenceGraph.from_edges(4, 1, [(1, 2), (2, 3), (3, 4)])


class TestThetaSets:
    def test_diamond_interiors(self, diamond):
        thetas = theta_sets(diamond, 4)
        assert sorted(thetas) == [frozenset({2}), frozenset({3})]

    def test_chain_single_path(self, chain):
        assert theta_sets(chain, 4) == [frozenset({2, 3})]

    def test_root_theta_is_empty(self, diamond):
        assert theta_sets(diamond, 1) == [frozenset()]

    def test_direct_edge_empty_interior(self, diamond):
        assert theta_sets(diamond, 2) == [frozenset()]

    def test_limit_caps_enumeration(self, diamond):
        assert len(theta_sets(diamond, 4, limit=1)) == 1


class TestPathCount:
    def test_diamond(self, diamond):
        assert path_count(diamond, 4) == 2

    def test_chain(self, chain):
        assert path_count(chain, 4) == 1

    def test_root(self, diamond):
        assert path_count(diamond, 1) == 1

    def test_fibonacci_structure(self):
        # Offsets {1,2} toward the root give Fibonacci path counts.
        n = 10
        graph = DependenceGraph(n, root=1)
        for j in range(2, n + 1):
            graph.add_edge(j - 1, j)
            if j >= 3:
                graph.add_edge(j - 2, j)
        counts = [path_count(graph, v) for v in range(1, n + 1)]
        fib = [1, 1]
        while len(fib) < n:
            fib.append(fib[-1] + fib[-2])
        assert counts == fib


class TestDepths:
    def test_shortest_depth(self, diamond, chain):
        assert shortest_depth(diamond, 4) == 1
        assert shortest_depth(chain, 4) == 2
        assert shortest_depth(chain, 2) == 0

    def test_all_depths(self, chain):
        assert all_depths(chain) == {1: 0, 2: 0, 3: 1, 4: 2}

    def test_unreachable_raises(self):
        graph = DependenceGraph(3, root=1)
        graph.add_edge(1, 2)
        with pytest.raises(GraphError):
            shortest_depth(graph, 3)


class TestExactLambda:
    def test_chain_closed_form(self, chain):
        p = 0.2
        assert exact_lambda(chain, 4, p) == pytest.approx((1 - p) ** 2)

    def test_diamond_closed_form(self, diamond):
        p = 0.3
        # Two disjoint single-vertex interiors: 1 - p^2.
        assert exact_lambda(diamond, 4, p) == pytest.approx(1 - p ** 2)

    def test_root_always_one(self, diamond):
        assert exact_lambda(diamond, 1, 0.5) == 1.0

    def test_no_loss_gives_one(self, chain):
        assert exact_lambda(chain, 4, 0.0) == 1.0

    def test_certain_loss_gives_zero_beyond_direct(self, chain):
        assert exact_lambda(chain, 4, 1.0) == 0.0
        assert exact_lambda(chain, 2, 1.0) == 1.0  # direct edge

    def test_shared_vertex_correlation(self):
        # 1->2, 2->3, 2->4, 3->5, 4->5: both paths to 5 share vertex 2.
        graph = DependenceGraph.from_edges(
            5, 1, [(1, 2), (2, 3), (2, 4), (3, 5), (4, 5)])
        p = 0.3
        survive = 1 - p
        # lambda = P(2 alive) * (1 - P(3 dead)P(4 dead))
        expected = survive * (1 - (1 - survive) ** 2)
        assert exact_lambda(graph, 5, p) == pytest.approx(expected)

    def test_invalid_p(self, chain):
        with pytest.raises(GraphError):
            exact_lambda(chain, 4, 1.5)

    def test_path_limit_guard(self):
        graph = DependenceGraph(12, root=1)
        for j in range(2, 13):
            graph.add_edge(j - 1, j)
            if j >= 3:
                graph.add_edge(j - 2, j)
        with pytest.raises(GraphError):
            exact_lambda(graph, 12, 0.1, limit=4)
