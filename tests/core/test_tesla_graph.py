"""Unit tests for the extended TESLA dependence-graph (Sec. 3.2)."""

import pytest

from repro.core.tesla_graph import (
    BOOTSTRAP,
    KeyVertex,
    MessageVertex,
    TeslaDependenceGraph,
)
from repro.exceptions import GraphError


@pytest.fixture
def graph():
    return TeslaDependenceGraph(5, lag=2)


class TestStructure:
    def test_vertex_count(self, graph):
        # n messages + n keys + bootstrap.
        assert graph.vertex_count == 2 * 5 + 1

    def test_edge_count(self, graph):
        # n bootstrap->key edges plus sum_{j} j key->message edges.
        assert graph.edge_count == 5 + sum(range(1, 6))

    def test_validates(self, graph):
        graph.validate()

    def test_authenticating_keys(self, graph):
        keys = graph.authenticating_keys(3)
        assert [k.index for k in keys] == [3, 4, 5]

    def test_authenticating_keys_bounds(self, graph):
        with pytest.raises(GraphError):
            graph.authenticating_keys(0)
        with pytest.raises(GraphError):
            graph.authenticating_keys(6)

    def test_carrier_packet(self, graph):
        key = KeyVertex(3, 2)
        assert graph.carrier_packet(key) == 5
        # Final keys ride in post-stream flush packets.
        assert graph.carrier_packet(KeyVertex(5, 2)) == 7

    def test_root_is_bootstrap(self, graph):
        assert graph.root == BOOTSTRAP

    def test_every_key_attached_to_bootstrap(self, graph):
        edges = set(graph.edges())
        for key in graph.key_vertices():
            assert (BOOTSTRAP, key) in edges

    def test_later_keys_cover_earlier_messages(self, graph):
        edges = set(graph.edges())
        for key in graph.key_vertices():
            for message in graph.message_vertices():
                expected = message.index <= key.index
                assert ((key, message) in edges) == expected


class TestValidation:
    def test_rejects_bad_n(self):
        with pytest.raises(GraphError):
            TeslaDependenceGraph(0)

    def test_rejects_bad_lag(self):
        with pytest.raises(GraphError):
            TeslaDependenceGraph(5, lag=0)

    def test_vertex_str(self):
        assert str(MessageVertex(3)) == "P3"
        assert str(KeyVertex(3, 2)) == "K(3,2)"

    def test_repr(self, graph):
        assert "n=5" in repr(graph)
        assert "lag=2" in repr(graph)
