"""Unit tests for graph rendering (Fig. 1 / Fig. 2 support)."""

from repro.core.render import edge_signature, tesla_to_dot, to_ascii, to_dot
from repro.core.tesla_graph import TeslaDependenceGraph
from repro.schemes.emss import EmssScheme
from repro.schemes.rohatgi import RohatgiScheme


class TestDot:
    def test_contains_all_edges(self):
        graph = RohatgiScheme().build_graph(4)
        dot = to_dot(graph)
        assert "P1 -> P2" in dot
        assert "P3 -> P4" in dot

    def test_root_is_double_circle(self):
        dot = to_dot(RohatgiScheme().build_graph(3))
        assert "P1 [shape=doublecircle" in dot

    def test_labels_present(self):
        graph = EmssScheme(2, 1).build_graph(5)
        dot = to_dot(graph)
        assert 'label="1"' in dot or 'label="2"' in dot

    def test_valid_digraph_syntax(self):
        dot = to_dot(RohatgiScheme().build_graph(3), name="test_graph")
        assert dot.startswith("digraph test_graph {")
        assert dot.endswith("}")


class TestAscii:
    def test_one_line_per_vertex(self):
        graph = RohatgiScheme().build_graph(5)
        lines = to_ascii(graph).splitlines()
        assert len(lines) == 5

    def test_root_marked(self):
        text = to_ascii(RohatgiScheme().build_graph(3))
        assert "P1*" in text

    def test_leaf_marked(self):
        text = to_ascii(RohatgiScheme().build_graph(3))
        assert "(leaf)" in text


class TestTeslaDot:
    def test_renders_both_vertex_kinds(self):
        dot = tesla_to_dot(TeslaDependenceGraph(3, 1))
        assert "bootstrap" in dot
        assert "P1" in dot
        assert "K(1,1)" in dot


class TestEdgeSignature:
    def test_rohatgi_signature(self):
        assert edge_signature(RohatgiScheme().build_graph(4)) == [-1, -1, -1]

    def test_emss_signature_labels(self):
        labels = set(edge_signature(EmssScheme(2, 1).build_graph(10)))
        # Carriers sit 1 and 2 after their targets (plus root clamps).
        assert 1 in labels
        assert 2 in labels
