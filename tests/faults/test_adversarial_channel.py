"""Unit tests for the adversarial channel wrapper."""

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.faults import (
    AdversarialChannel,
    AttackPlan,
    BitFlipCorruption,
    ForgedInjection,
    ReplayDuplication,
)
from repro.network.channel import Channel
from repro.network.loss import BernoulliLoss
from repro.packets import packet_from_wire
from repro.schemes.rohatgi import RohatgiScheme
from repro.simulation.sender import make_payloads


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"adv-channel-test")


@pytest.fixture
def block(signer):
    return RohatgiScheme().make_block(make_payloads(6), signer)


def _attacked(plan, loss=None, protect=True):
    return AdversarialChannel(
        Channel(loss=loss, protect_signature_packets=protect), plan)


class TestCounters:
    def test_corruption_counted(self, block):
        adv = _attacked(AttackPlan((BitFlipCorruption(1.0, seed=1),)))
        deliveries = adv.transmit_wire(block)
        # The signature packet is protected; the other five corrupt.
        assert adv.corrupted == len(block) - 1
        kinds = [d.kind for d in deliveries]
        assert kinds.count("corrupted") == len(block) - 1

    def test_injection_and_replay_counted(self, block):
        adv = _attacked(AttackPlan((
            ForgedInjection(1.0, seed=2),
            ReplayDuplication(1.0, copies=2, seed=3),
        )))
        deliveries = adv.transmit_wire(block)
        assert adv.injected == len(block)
        assert adv.replayed == 2 * len(block)
        assert len(deliveries) == 4 * len(block)

    def test_passive_statistics_unchanged(self, block):
        adv = _attacked(AttackPlan((BitFlipCorruption(1.0, seed=1),)),
                        loss=BernoulliLoss(0.3, seed=11))
        adv.transmit_wire(block)
        assert adv.sent == len(block)
        honest = Channel(loss=BernoulliLoss(0.3, seed=11))
        honest.transmit(block)
        assert adv.dropped == honest.dropped


class TestSemantics:
    def test_protected_signature_packet_never_corrupted(self, block):
        adv = _attacked(AttackPlan((BitFlipCorruption(1.0, seed=1),)))
        deliveries = adv.transmit_wire(block)
        sig = next(d for d in deliveries if d.seq_hint == block[0].seq)
        assert sig.kind == "genuine"
        assert packet_from_wire(sig.data) == block[0].with_send_time(
            packet_from_wire(sig.data).send_time)

    def test_unprotected_signature_packet_corruptible(self, block):
        adv = _attacked(AttackPlan((BitFlipCorruption(1.0, seed=1),)),
                        protect=False)
        adv.transmit_wire(block)
        assert adv.corrupted == len(block)

    def test_forged_arrives_strictly_after_genuine(self, block):
        adv = _attacked(AttackPlan((ForgedInjection(1.0, seed=2),)))
        deliveries = adv.transmit_wire(block)
        genuine_pos = {d.seq_hint: i for i, d in enumerate(deliveries)
                       if d.kind == "genuine"}
        for i, delivery in enumerate(deliveries):
            if delivery.kind == "forged":
                seq = packet_from_wire(delivery.data).seq
                assert i > genuine_pos[seq]

    def test_ground_truth_hints(self, block):
        adv = _attacked(AttackPlan((ForgedInjection(1.0, seed=2),
                                    ReplayDuplication(1.0, seed=3))))
        for delivery in adv.transmit_wire(block):
            if delivery.kind == "forged":
                assert delivery.seq_hint is None
            else:
                assert delivery.seq_hint is not None

    def test_arrival_order_sorted(self, block):
        adv = _attacked(AttackPlan((ReplayDuplication(1.0, copies=3,
                                                      seed=5),)))
        deliveries = adv.transmit_wire(block)
        times = [d.arrival_time for d in deliveries]
        assert times == sorted(times)


class TestDeterminism:
    def test_reseed_reproduces_stream(self, block):
        def run():
            plan = AttackPlan((BitFlipCorruption(0.5),
                               ForgedInjection(0.5),
                               ReplayDuplication(0.5)))
            plan.reseed(123)
            adv = _attacked(plan, loss=BernoulliLoss(0.2, seed=7))
            return [(d.arrival_time, d.data, d.kind, d.seq_hint)
                    for d in adv.transmit_wire(block)]

        assert run() == run()

    def test_reset_restores_counters_and_stream(self, block):
        plan = AttackPlan((BitFlipCorruption(0.5, seed=9),))
        adv = _attacked(plan)
        first = adv.transmit_wire(block)
        counted = adv.corrupted
        adv.reset()
        assert (adv.corrupted, adv.injected, adv.replayed) == (0, 0, 0)
        second = adv.transmit_wire(block)
        assert adv.corrupted == counted
        assert [d.data for d in first] == [d.data for d in second]
