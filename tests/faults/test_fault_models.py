"""Unit tests for the adversarial fault models."""

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import SimulationError
from repro.faults import (
    AttackPlan,
    BitFlipCorruption,
    ForgedInjection,
    ReorderJitter,
    ReplayDuplication,
    TruncationCorruption,
)
from repro.faults.models import FRESH_SEQ_OFFSET
from repro.packets import WIRE_HEADER_SIZE, Packet, packet_from_wire
from repro.schemes.rohatgi import RohatgiScheme
from repro.simulation.sender import make_payloads


@pytest.fixture
def wire():
    return Packet(seq=3, block_id=0, payload=b"x" * 40,
                  extra=b"y" * 24).to_wire()


@pytest.fixture
def genuine_packet():
    signer = HmacStubSigner(key=b"fault-test")
    return RohatgiScheme().make_block(make_payloads(4), signer)[1]


class TestValidation:
    def test_rates_must_be_probabilities(self):
        for bad in (-0.1, 1.5):
            with pytest.raises(SimulationError):
                BitFlipCorruption(bad)
            with pytest.raises(SimulationError):
                TruncationCorruption(bad)
            with pytest.raises(SimulationError):
                ForgedInjection(bad)
            with pytest.raises(SimulationError):
                ReplayDuplication(bad)

    def test_bitflip_needs_positive_flips(self):
        with pytest.raises(SimulationError):
            BitFlipCorruption(0.5, max_flips=0)

    def test_replay_delay_window(self):
        with pytest.raises(SimulationError):
            ReplayDuplication(0.5, min_delay=0.0)
        with pytest.raises(SimulationError):
            ReplayDuplication(0.5, min_delay=0.2, max_delay=0.1)
        with pytest.raises(SimulationError):
            ReplayDuplication(0.5, copies=0)

    def test_jitter_width_nonnegative(self):
        with pytest.raises(SimulationError):
            ReorderJitter(-0.1)

    def test_forged_epsilon_positive(self):
        with pytest.raises(SimulationError):
            ForgedInjection(0.5, epsilon=0.0)


class TestBitFlip:
    def test_header_never_touched(self, wire):
        model = BitFlipCorruption(1.0, max_flips=8, seed=5)
        for _ in range(50):
            mutated = model.corrupt(wire)
            assert mutated is not None
            assert len(mutated) == len(wire)
            assert mutated[:WIRE_HEADER_SIZE] == wire[:WIRE_HEADER_SIZE]
            assert mutated != wire

    def test_header_only_buffer_passes_through(self):
        model = BitFlipCorruption(1.0, seed=5)
        assert model.corrupt(b"\x00" * WIRE_HEADER_SIZE) is None

    def test_rate_zero_never_corrupts(self, wire):
        model = BitFlipCorruption(0.0, seed=5)
        assert all(model.corrupt(wire) is None for _ in range(20))

    def test_corruption_rate_exposed(self):
        assert BitFlipCorruption(0.3).corruption_rate == 0.3


class TestTruncation:
    def test_strict_prefix(self, wire):
        model = TruncationCorruption(1.0, seed=9)
        for _ in range(50):
            mutated = model.corrupt(wire)
            assert mutated is not None
            assert len(mutated) < len(wire)
            assert wire.startswith(mutated)

    def test_empty_buffer_passes_through(self):
        assert TruncationCorruption(1.0, seed=9).corrupt(b"") is None


class TestForgedInjection:
    def test_colliding_forgery_decodes_with_genuine_seq(self, genuine_packet):
        model = ForgedInjection(1.0, collide=True, seed=13)
        (offset, forged_wire), = model.forge(genuine_packet)
        assert offset > 0
        forged = packet_from_wire(forged_wire)
        assert forged.seq == genuine_packet.seq
        assert forged.payload != genuine_packet.payload
        assert forged.carried == genuine_packet.carried

    def test_fresh_seq_forgery(self, genuine_packet):
        model = ForgedInjection(1.0, collide=False, seed=13)
        (_, forged_wire), = model.forge(genuine_packet)
        assert packet_from_wire(forged_wire).seq == (
            genuine_packet.seq + FRESH_SEQ_OFFSET)


class TestReplay:
    def test_offsets_within_window_and_copies(self, wire):
        model = ReplayDuplication(1.0, min_delay=0.01, max_delay=0.02,
                                  copies=3, seed=17)
        offsets = model.replay(wire)
        assert len(offsets) == 3
        assert all(0.01 <= o <= 0.02 for o in offsets)


class TestJitter:
    def test_within_width(self):
        model = ReorderJitter(0.5, seed=21)
        assert all(0.0 <= model.jitter() < 0.5 for _ in range(100))

    def test_zero_width(self):
        assert ReorderJitter(0.0, seed=21).jitter() == 0.0


class TestReseed:
    def test_same_seed_same_stream(self, wire):
        a, b = BitFlipCorruption(0.5), BitFlipCorruption(0.5)
        a.reseed(99)
        b.reseed(99)
        assert [a.corrupt(wire) for _ in range(30)] == \
               [b.corrupt(wire) for _ in range(30)]

    def test_different_seeds_differ(self, wire):
        a, b = BitFlipCorruption(0.5), BitFlipCorruption(0.5)
        a.reseed(99)
        b.reseed(100)
        assert [a.corrupt(wire) for _ in range(30)] != \
               [b.corrupt(wire) for _ in range(30)]

    def test_reset_restores_stream(self, wire):
        model = TruncationCorruption(0.7, seed=3)
        first = [model.corrupt(wire) for _ in range(20)]
        model.reset()
        assert [model.corrupt(wire) for _ in range(20)] == first


class TestAttackPlan:
    def test_members_must_be_fault_models(self):
        with pytest.raises(SimulationError):
            AttackPlan(("not a fault",))

    def test_corruption_rate_composes(self):
        plan = AttackPlan((BitFlipCorruption(0.2), TruncationCorruption(0.1),
                           ReplayDuplication(0.5)))
        assert plan.corruption_rate == pytest.approx(1 - 0.8 * 0.9)

    def test_empty_plan_rate_zero(self):
        assert AttackPlan().corruption_rate == 0.0

    def test_reseed_gives_members_distinct_streams(self, wire):
        plan = AttackPlan((BitFlipCorruption(0.5), BitFlipCorruption(0.5)))
        plan.reseed(42)
        first, second = plan.faults
        assert [first.corrupt(wire) for _ in range(30)] != \
               [second.corrupt(wire) for _ in range(30)]

    def test_plan_reseed_deterministic(self, wire):
        plans = [AttackPlan((BitFlipCorruption(0.5), TruncationCorruption(0.3)))
                 for _ in range(2)]
        streams = []
        for plan in plans:
            plan.reseed(7)
            streams.append([fault.corrupt(wire)
                            for fault in plan.faults for _ in range(10)])
        assert streams[0] == streams[1]
