"""Churn-storm fault injection: the generator and the bootstrap burst."""

import pickle

import pytest

from repro.exceptions import SimulationError
from repro.faults import AttackPlan, BootstrapBurstForgery
from repro.faults.churn import CHURN_KINDS, ChurnEvent, churn_storm
from repro.faults.models import FRESH_SEQ_OFFSET
from repro.packets import Packet, packet_from_wire


def _packet(seq=5, block_id=0):
    return Packet(seq=seq, block_id=block_id, payload=b"payload",
                  send_time=0.0)


class TestChurnEvent:
    def test_valid_event(self):
        event = ChurnEvent(3, "join", 2)
        assert (event.block, event.kind, event.member) == (3, "join", 2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            ChurnEvent(1, "rejoin", 0)

    def test_block_zero_rejected(self):
        # Block 0 membership is the initial set, not an event.
        with pytest.raises(SimulationError):
            ChurnEvent(0, "join", 0)

    def test_negative_member_rejected(self):
        with pytest.raises(SimulationError):
            ChurnEvent(1, "leave", -1)


class TestChurnStorm:
    def test_same_seed_same_stream(self):
        a = churn_storm(7, 4, 4, 16)
        b = churn_storm(7, 4, 4, 16)
        assert a == b

    def test_different_seeds_diverge(self):
        a = churn_storm(7, 4, 4, 16)
        b = churn_storm(8, 4, 4, 16)
        assert a != b

    def test_each_member_joins_and_departs_at_most_once(self):
        events = churn_storm(3, 4, 8, 24, join_rate=1.0, leave_rate=0.5,
                             crash_rate=0.5)
        joins = [e.member for e in events if e.kind == "join"]
        departures = [e.member for e in events if e.kind != "join"]
        assert len(joins) == len(set(joins))
        assert len(departures) == len(set(departures))
        # Initial members never join; spares depart only after joining.
        assert all(m >= 4 for m in joins)
        join_blocks = {e.member: e.block for e in events if e.kind == "join"}
        for event in events:
            if event.kind != "join" and event.member >= 4:
                assert join_blocks[event.member] < event.block

    def test_survivor_floor_holds_every_block(self):
        events = churn_storm(11, 2, 2, 32, join_rate=0.1, leave_rate=2.0,
                             crash_rate=2.0)
        active = set(range(2))
        for block in range(1, 32):
            for event in [e for e in events if e.block == block]:
                if event.kind == "join":
                    active.add(event.member)
                else:
                    active.discard(event.member)
            assert active, f"block {block} emptied the session"

    def test_sorted_by_block_then_kind_order(self):
        events = churn_storm(5, 4, 6, 20, join_rate=1.0, leave_rate=1.0,
                             crash_rate=0.5)
        keys = [(e.block, CHURN_KINDS.index(e.kind), e.member)
                for e in events]
        assert keys == sorted(keys)

    def test_flood_block_joins_entire_pool(self):
        events = churn_storm(7, 4, 4, 12, join_rate=0.0, leave_rate=0.0,
                             crash_rate=0.0, flood_block=3)
        assert [e.kind for e in events] == ["join"] * 4
        assert all(e.block == 3 for e in events)
        assert sorted(e.member for e in events) == [4, 5, 6, 7]

    def test_flappers_join_then_leave_one_block_later(self):
        events = churn_storm(7, 4, 4, 12, join_rate=0.0, leave_rate=0.0,
                             crash_rate=0.0, flappers=2)
        by_member = {}
        for event in events:
            by_member.setdefault(event.member, []).append(event)
        assert set(by_member) == {4, 5}
        for k, member in enumerate((4, 5)):
            join, leave = by_member[member]
            assert (join.kind, join.block) == ("join", 1 + k)
            assert (leave.kind, leave.block) == ("leave", 2 + k)

    def test_validation(self):
        with pytest.raises(SimulationError):
            churn_storm(7, 0, 4, 12)
        with pytest.raises(SimulationError):
            churn_storm(7, 4, -1, 12)
        with pytest.raises(SimulationError):
            churn_storm(7, 4, 4, 12, join_rate=-0.1)
        with pytest.raises(SimulationError):
            churn_storm(7, 4, 4, 12, flappers=5)
        with pytest.raises(SimulationError):
            churn_storm(7, 4, 4, 12, flood_block=12)


class TestBootstrapBurstForgery:
    def test_burst_confined_to_window(self):
        model = BootstrapBurstForgery(burst_rate=1.0, window=4,
                                      tail_rate=0.0, seed=3)
        forged = [model.forge(_packet(seq=i + 1)) for i in range(10)]
        assert all(len(f) == 1 for f in forged[:4])
        assert all(f == [] for f in forged[4:])

    def test_reset_rearms_the_burst(self):
        model = BootstrapBurstForgery(burst_rate=1.0, window=2, seed=3)
        assert model.forge(_packet()) and model.forge(_packet())
        assert model.forge(_packet()) == []
        model.reset()
        assert len(model.forge(_packet())) == 1

    def test_forgery_collides_on_sequence_by_default(self):
        model = BootstrapBurstForgery(burst_rate=1.0, window=1, seed=3)
        (offset, wire), = model.forge(_packet(seq=9))
        assert offset > 0
        forged = packet_from_wire(wire)
        assert forged.seq == 9
        assert forged.payload != _packet(seq=9).payload

    def test_fresh_sequence_mode(self):
        model = BootstrapBurstForgery(burst_rate=1.0, window=1,
                                      collide=False, seed=3)
        (_, wire), = model.forge(_packet(seq=9))
        assert packet_from_wire(wire).seq == 9 + FRESH_SEQ_OFFSET

    def test_corruption_rate_is_zero(self):
        # The burst injects, never tampers: the effective-loss model
        # must not shift under the storm mix.
        assert BootstrapBurstForgery(seed=1).corruption_rate == 0.0

    def test_reseed_determinism_and_divergence(self):
        one = BootstrapBurstForgery(burst_rate=0.5, window=8, seed=0)
        two = BootstrapBurstForgery(burst_rate=0.5, window=8, seed=0)
        one.reseed(41)
        two.reseed(41)
        packets = [_packet(seq=i + 1) for i in range(8)]
        assert [one.forge(p) for p in packets] == [
            two.forge(p) for p in packets]
        two.reseed(42)
        assert [one.forge(p) for p in packets] != [
            two.forge(p) for p in packets]

    def test_plan_pickles(self):
        # Worker-sharded trial runners ship plans to subprocesses.
        plan = AttackPlan((BootstrapBurstForgery(burst_rate=0.6, window=8,
                                                 seed=5),))
        clone = pickle.loads(pickle.dumps(plan))
        plan.reseed(17)
        clone.reseed(17)
        packet = _packet()
        assert clone.faults[0].forge(packet) == plan.faults[0].forge(packet)

    def test_rate_validation(self):
        with pytest.raises(SimulationError):
            BootstrapBurstForgery(burst_rate=1.5)
        with pytest.raises(SimulationError):
            BootstrapBurstForgery(tail_rate=-0.1)
