"""Unit tests for the SAIDA session runner."""

import pytest

from repro.analysis import saida as analysis
from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import SimulationError
from repro.network.channel import Channel
from repro.network.loss import BernoulliLoss
from repro.schemes.saida import SaidaScheme
from repro.simulation.session import run_saida_session


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"saida-sess")


class TestSaidaSession:
    def test_lossless_everything_verifies(self, signer):
        stats = run_saida_session(SaidaScheme(0.5), 16, 4, Channel(),
                                  signer=signer)
        assert stats.q_min == 1.0

    def test_matches_closed_form(self, signer):
        scheme = SaidaScheme(0.5)
        n, p = 20, 0.35
        stats = run_saida_session(
            scheme, n, 150,
            Channel(loss=BernoulliLoss(p, seed=3),
                    protect_signature_packets=False),
            signer=signer)
        predicted = analysis.q_i(n, scheme.threshold(n), p)
        assert stats.overall_q == pytest.approx(predicted, abs=0.05)

    def test_buffer_peak_bounded_by_threshold(self, signer):
        scheme = SaidaScheme(0.5)
        stats = run_saida_session(scheme, 20, 3, Channel(), signer=signer)
        assert stats.message_buffer_peak <= scheme.threshold(20)

    def test_validation(self, signer):
        with pytest.raises(SimulationError):
            run_saida_session(SaidaScheme(0.5), 10, 0, Channel(),
                              signer=signer)

    def test_above_cliff_collapses(self, signer):
        scheme = SaidaScheme(0.8)  # survives only < 20% loss
        stats = run_saida_session(
            scheme, 20, 60,
            Channel(loss=BernoulliLoss(0.5, seed=4),
                    protect_signature_packets=False),
            signer=signer)
        assert stats.overall_q < 0.05
