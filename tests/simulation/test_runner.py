"""Unit tests for the Monte Carlo runners."""

import pytest

from repro.exceptions import SimulationError
from repro.schemes.emss import EmssScheme
from repro.schemes.rohatgi import RohatgiScheme
from repro.schemes.tesla import TeslaParameters
from repro.schemes.wong_lam import WongLamScheme
from repro.simulation.runner import (
    WireTrialConfig,
    tesla_monte_carlo,
    wire_monte_carlo,
)
from repro.analysis import rohatgi as rohatgi_analysis
from repro.analysis import tesla as tesla_analysis


class TestWireMonteCarlo:
    def test_rohatgi_matches_closed_form(self):
        n, p = 10, 0.2
        config = WireTrialConfig(block_size=n, trials=400, loss_rate=p,
                                 seed=3)
        stats = wire_monte_carlo(RohatgiScheme(), config)
        profile = stats.q_profile()
        for position in (3, 6, 10):
            expected = rohatgi_analysis.q_i(position, p)
            assert profile[position] == pytest.approx(expected, abs=0.08)

    def test_individually_verifiable_path(self):
        config = WireTrialConfig(block_size=8, trials=10, loss_rate=0.3)
        stats = wire_monte_carlo(WongLamScheme(), config)
        assert stats.q_min == 1.0

    def test_no_forgeries_in_loss_only_world(self):
        config = WireTrialConfig(block_size=16, trials=20, loss_rate=0.4)
        stats = wire_monte_carlo(EmssScheme(2, 1), config)
        assert stats.forged == 0

    def test_trials_validation(self):
        with pytest.raises(SimulationError):
            wire_monte_carlo(RohatgiScheme(),
                             WireTrialConfig(trials=0))


class TestTeslaMonteCarlo:
    def test_matches_eq7_at_zero_delay(self):
        parameters = TeslaParameters(interval=0.05, lag=4, chain_length=64)
        p = 0.3
        stats = tesla_monte_carlo(parameters, 50, trials=60, loss_rate=p)
        # With no network delay xi = 1, so q_min -> 1 - p at the tail.
        profile = stats.q_profile()
        tail = profile[max(profile)]
        assert tail == pytest.approx(1 - p, abs=0.1)

    def test_gaussian_delay_reduces_q(self):
        parameters = TeslaParameters(interval=0.05, lag=4, chain_length=64)
        t_disclose = parameters.disclosure_delay
        mu, sigma = 0.15, 0.05
        stats = tesla_monte_carlo(parameters, 50, trials=60, loss_rate=0.0,
                                  delay_mean=mu, delay_std=sigma)
        predicted_xi = tesla_analysis.xi(t_disclose, mu, sigma)
        assert stats.overall_q == pytest.approx(predicted_xi, abs=0.12)

    def test_trials_validation(self):
        parameters = TeslaParameters(chain_length=8)
        with pytest.raises(SimulationError):
            tesla_monte_carlo(parameters, 4, trials=0, loss_rate=0.1)
