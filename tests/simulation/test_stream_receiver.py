"""Unit tests for the ordered-delivery stream receiver."""

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.schemes.emss import EmssScheme
from repro.schemes.rohatgi import RohatgiScheme
from repro.simulation.sender import StreamSender, make_payloads
from repro.simulation.stream_receiver import StreamReceiver


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"stream")


class TestInOrderDelivery:
    def test_forward_chain_delivers_immediately(self, signer):
        packets = RohatgiScheme().make_block(make_payloads(5), signer)
        receiver = StreamReceiver(signer)
        seen = []
        for packet in packets:
            seen.extend(d.seq for d in receiver.receive(packet, 0.0))
        assert seen == [1, 2, 3, 4, 5]

    def test_end_signed_block_releases_in_one_batch(self, signer):
        packets = EmssScheme(2, 1).make_block(make_payloads(5), signer)
        receiver = StreamReceiver(signer)
        for packet in packets[:-1]:
            assert receiver.receive(packet, 0.0) == []
        batch = receiver.receive(packets[-1], 1.0)
        # Signature packet itself still carries a payload here.
        assert [d.seq for d in batch] == [1, 2, 3, 4, 5]

    def test_out_of_order_arrival_reordered(self, signer):
        packets = EmssScheme(2, 1).make_block(make_payloads(4), signer)
        receiver = StreamReceiver(signer)
        order = [packets[3], packets[1], packets[0], packets[2]]
        delivered = []
        for packet in order:
            delivered.extend(d.seq for d in receiver.receive(packet, 0.0))
        assert delivered == [1, 2, 3, 4]

    def test_callback_invoked_in_order(self, signer):
        packets = EmssScheme(2, 1).make_block(make_payloads(4), signer)
        seen = []
        receiver = StreamReceiver(signer, on_deliver=lambda d: seen.append(d.seq))
        for packet in reversed(packets):
            receiver.receive(packet, 0.0)
        assert seen == [1, 2, 3, 4]

    def test_payload_content_preserved(self, signer):
        payloads = make_payloads(3)
        packets = RohatgiScheme().make_block(payloads, signer)
        receiver = StreamReceiver(signer)
        out = []
        for packet in packets:
            out.extend(d.payload for d in receiver.receive(packet, 0.0))
        assert out == payloads


class TestGapHandling:
    def test_gap_blocks_delivery(self, signer):
        packets = RohatgiScheme().make_block(make_payloads(5), signer)
        receiver = StreamReceiver(signer)
        receiver.receive(packets[0], 0.0)
        # Lose packet 2: 3 can never verify either (chain break); 1 only.
        assert [d.seq for d in receiver.delivered] == [1]

    def test_skip_gap_releases_later_verified(self, signer):
        packets = EmssScheme(2, 1).make_block(make_payloads(6), signer)
        receiver = StreamReceiver(signer)
        # Drop packets 1 and 2 entirely; deliver the rest.
        for packet in packets[2:]:
            receiver.receive(packet, 0.0)
        assert receiver.delivered == []
        assert receiver.pending == 4
        released = receiver.skip_gap(2)
        assert [d.seq for d in released] == [3, 4, 5, 6]
        assert receiver.skipped == 2

    def test_finish_block_evicts_and_skips(self, signer):
        sender = StreamSender(EmssScheme(2, 1), signer, block_size=5)
        block0 = sender.send_block(make_payloads(5))
        block1 = sender.send_block(make_payloads(5))
        receiver = StreamReceiver(signer)
        # Block 0 loses its signature packet: nothing verifies.
        for packet in block0[:-1]:
            receiver.receive(packet, 0.0)
        released = receiver.finish_block(0, last_seq=5)
        assert released == []
        assert receiver.skipped == 5
        assert receiver.verifier.buffered_count == 0
        # Block 1 flows normally afterwards.
        delivered = []
        for packet in block1:
            delivered.extend(d.seq for d in receiver.receive(packet, 1.0))
        assert delivered == [p.seq for p in block1]

    def test_skip_gap_noop_for_past(self, signer):
        packets = RohatgiScheme().make_block(make_payloads(3), signer)
        receiver = StreamReceiver(signer)
        for packet in packets:
            receiver.receive(packet, 0.0)
        assert receiver.skip_gap(2) == []
        assert receiver.skipped == 0


class TestAdversarial:
    def test_forged_payload_never_delivered(self, signer):
        from dataclasses import replace

        packets = RohatgiScheme().make_block(make_payloads(3), signer)
        receiver = StreamReceiver(signer)
        receiver.receive(packets[0], 0.0)
        receiver.receive(replace(packets[1], payload=b"evil"), 0.0)
        receiver.skip_gap(3)
        assert all(d.payload != b"evil" for d in receiver.delivered)
