"""Golden-trace regression: wire format and verification semantics.

Each file pair under ``tests/data/traces/`` pins one scheme's fully
deterministic session (see :mod:`repro.simulation.golden`):

* ``<name>.trace.jsonl`` — the recorded deliveries, packet bytes
  hex-encoded.  Regenerating the session today must reproduce it
  byte-for-byte, so any wire-format change (packet layout, hashing,
  signing, channel behavior) shows up as a diff against a versioned
  file.
* ``<name>.expected.json`` — the outcome of replaying the stored trace
  into a fresh receiver.  Any verification-semantics change shows up
  here even if the bytes still parse.

After an *intentional* format change, regenerate with::

    PYTHONPATH=src python -m repro.simulation.golden tests/data/traces
"""

import json
import os

import pytest

from repro.analysis.conformance import DEFAULT_SPECS
from repro.schemes.registry import available_schemes
from repro.simulation.golden import (
    expected_path,
    record_golden,
    replay_golden,
    trace_path,
)
from repro.simulation.trace import SessionTrace

TRACE_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "data",
                         "traces")

SCHEME_NAMES = sorted(DEFAULT_SPECS)


def test_every_registered_scheme_has_a_golden_trace():
    """Registering a scheme without recording a golden fails here."""
    missing = [
        name for name in available_schemes()
        if not (os.path.exists(trace_path(TRACE_DIR, name))
                and os.path.exists(expected_path(TRACE_DIR, name)))
    ]
    assert not missing, (
        f"no golden trace for {missing}; record one with "
        f"'PYTHONPATH=src python -m repro.simulation.golden "
        f"tests/data/traces'")


@pytest.mark.parametrize("name", SCHEME_NAMES)
def test_regenerated_session_matches_golden_bytes(name):
    """Sender + channel reproduce the stored trace byte-for-byte."""
    with open(trace_path(TRACE_DIR, name), "r", encoding="utf-8") as handle:
        stored = handle.read()
    live = record_golden(name).trace.to_string()
    assert live == stored, (
        f"{name}: regenerated session differs from the golden trace — "
        f"the wire format changed; if intentional, regenerate the "
        f"goldens (see module docstring)")


@pytest.mark.parametrize("name", SCHEME_NAMES)
def test_replaying_golden_trace_reproduces_outcome(name):
    """A fresh receiver verifies exactly the recorded positions."""
    trace = SessionTrace.load(trace_path(TRACE_DIR, name))
    with open(expected_path(TRACE_DIR, name), "r",
              encoding="utf-8") as handle:
        expected = json.load(handle)
    assert replay_golden(name, trace) == expected, (
        f"{name}: replaying the stored trace no longer reproduces the "
        f"stored outcome — verification semantics changed; if "
        f"intentional, regenerate the goldens (see module docstring)")


@pytest.mark.parametrize("name", SCHEME_NAMES)
def test_golden_traces_round_trip(name):
    """load() of a dumped trace compares equal record-for-record."""
    trace = SessionTrace.load(trace_path(TRACE_DIR, name))
    assert len(trace) > 0
    import io

    rewritten = SessionTrace.load(io.StringIO(trace.to_string()))
    assert rewritten == trace
