"""Unit tests for signature-packet replication."""

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import SimulationError
from repro.network.channel import Channel
from repro.network.loss import TraceLoss
from repro.schemes.emss import EmssScheme
from repro.simulation.receiver import ChainReceiver
from repro.simulation.sender import make_payloads, replicate_signature_packets


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"rep")


def _block(signer, n=5):
    return EmssScheme(2, 1).make_block(make_payloads(n), signer)


class TestReplication:
    def test_copies_inserted_after_original(self, signer):
        packets = replicate_signature_packets(_block(signer), 3)
        seqs = [p.seq for p in packets]
        assert seqs == [1, 2, 3, 4, 5, 5, 5]

    def test_one_copy_is_identity(self, signer):
        block = _block(signer)
        assert replicate_signature_packets(block, 1) == block

    def test_validation(self, signer):
        with pytest.raises(SimulationError):
            replicate_signature_packets(_block(signer), 0)

    def test_duplicate_delivery_is_idempotent(self, signer):
        packets = replicate_signature_packets(_block(signer), 3)
        receiver = ChainReceiver(signer)
        for packet in packets:
            receiver.receive(packet, 0.0)
        assert receiver.verified_count() == 5

    def test_replication_survives_first_copy_loss(self, signer):
        packets = replicate_signature_packets(_block(signer), 2)
        # Drop only the first signature transmission (position 5 of 6).
        trace = [False, False, False, False, True, False]
        channel = Channel(loss=TraceLoss(trace),
                          protect_signature_packets=False)
        receiver = ChainReceiver(signer)
        for delivery in channel.transmit(packets):
            receiver.receive(delivery.packet, delivery.arrival_time)
        assert receiver.verified_count() == 5

    def test_unreplicated_block_dies_with_signature(self, signer):
        packets = _block(signer)
        trace = [False, False, False, False, True]
        channel = Channel(loss=TraceLoss(trace),
                          protect_signature_packets=False)
        receiver = ChainReceiver(signer)
        for delivery in channel.transmit(packets):
            receiver.receive(delivery.packet, delivery.arrival_time)
        assert receiver.verified_count() == 0
