"""Unit tests for the generic cascade receiver."""

from dataclasses import replace

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.schemes.emss import EmssScheme
from repro.schemes.rohatgi import RohatgiScheme
from repro.simulation.receiver import ChainReceiver


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"rcv")


def _block(scheme, n, signer):
    return scheme.make_block([b"payload-%d" % i for i in range(n)], signer)


class TestForwardChain:
    def test_in_order_everything_verifies_immediately(self, signer):
        packets = _block(RohatgiScheme(), 5, signer)
        receiver = ChainReceiver(signer)
        for i, packet in enumerate(packets):
            outcome = receiver.receive(packet, float(i))
            assert outcome.verified, f"packet {packet.seq}"
            assert outcome.delay == 0.0

    def test_gap_stalls_suffix(self, signer):
        packets = _block(RohatgiScheme(), 5, signer)
        receiver = ChainReceiver(signer)
        for packet in packets[:2] + packets[3:]:
            receiver.receive(packet, 0.0)
        assert receiver.outcomes[1].verified
        assert receiver.outcomes[2].verified
        assert not receiver.outcomes[4].verified
        assert not receiver.outcomes[5].verified

    def test_hash_buffer_peak_is_one(self, signer):
        packets = _block(RohatgiScheme(), 6, signer)
        receiver = ChainReceiver(signer)
        for packet in packets:
            receiver.receive(packet, 0.0)
        assert receiver.hash_buffer_peak <= 1


class TestBackwardChain:
    def test_buffered_until_signature(self, signer):
        packets = _block(EmssScheme(2, 1), 5, signer)
        receiver = ChainReceiver(signer)
        for packet in packets[:-1]:
            receiver.receive(packet, packet.seq * 0.1)
        assert receiver.verified_count() == 0
        assert receiver.buffered_count == 4
        receiver.receive(packets[-1], 0.5)
        assert receiver.verified_count() == 5
        assert receiver.buffered_count == 0

    def test_cascade_verification_times(self, signer):
        packets = _block(EmssScheme(2, 1), 4, signer)
        receiver = ChainReceiver(signer)
        for packet in packets:
            receiver.receive(packet, packet.seq * 0.1)
        # All verified at the signature packet's arrival time.
        for outcome in receiver.outcomes.values():
            assert outcome.verified_time == pytest.approx(0.4)

    def test_message_buffer_peak(self, signer):
        packets = _block(EmssScheme(2, 1), 8, signer)
        receiver = ChainReceiver(signer)
        for packet in packets:
            receiver.receive(packet, 0.0)
        assert receiver.message_buffer_peak == 7

    def test_out_of_order_delivery(self, signer):
        packets = _block(EmssScheme(2, 1), 6, signer)
        receiver = ChainReceiver(signer)
        for packet in reversed(packets):  # signature first
            receiver.receive(packet, 0.0)
        assert receiver.verified_count() == 6

    def test_loss_breaks_only_dependent_packets(self, signer):
        packets = _block(EmssScheme(2, 1), 6, signer)
        receiver = ChainReceiver(signer)
        # Drop packets 3 and 4: packets 1 and 2 lose every path.
        for packet in [packets[0], packets[1], packets[4], packets[5]]:
            receiver.receive(packet, 0.0)
        assert not receiver.outcomes[1].verified
        assert not receiver.outcomes[2].verified
        assert receiver.outcomes[5].verified
        assert receiver.outcomes[6].verified


class TestAdversarial:
    def test_tampered_payload_flagged_forged(self, signer):
        packets = _block(RohatgiScheme(), 3, signer)
        receiver = ChainReceiver(signer)
        receiver.receive(packets[0], 0.0)
        forged = replace(packets[1], payload=b"evil")
        outcome = receiver.receive(forged, 0.0)
        assert outcome.forged
        assert not outcome.verified

    def test_bad_signature_flagged(self, signer):
        packets = _block(RohatgiScheme(), 2, signer)
        bad = replace(packets[0], signature=b"\x00" * 128)
        receiver = ChainReceiver(signer)
        outcome = receiver.receive(bad, 0.0)
        assert outcome.forged

    def test_forged_packet_does_not_poison_chain(self, signer):
        packets = _block(RohatgiScheme(), 4, signer)
        receiver = ChainReceiver(signer)
        receiver.receive(packets[0], 0.0)
        receiver.receive(replace(packets[1], payload=b"evil"), 0.0)
        # The genuine packet 2 can no longer verify (its slot burned),
        # but nothing downstream is marked verified either.
        assert receiver.forged_count() == 1
        assert receiver.verified_count() == 1

    def test_duplicate_delivery_ignored(self, signer):
        packets = _block(RohatgiScheme(), 3, signer)
        receiver = ChainReceiver(signer)
        first = receiver.receive(packets[0], 0.0)
        second = receiver.receive(packets[0], 1.0)
        assert first is second
        assert receiver.verified_count() == 1
