"""Unit tests for session trace record/replay."""

import io

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import SimulationError
from repro.network.channel import Channel
from repro.network.delay import GaussianDelay
from repro.network.loss import BernoulliLoss
from repro.schemes.emss import EmssScheme
from repro.simulation.receiver import ChainReceiver
from repro.simulation.sender import StreamSender, make_payloads
from repro.simulation.trace import SessionTrace, TraceRecord


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"trace")


def _recorded_session(signer, seed=4):
    sender = StreamSender(EmssScheme(2, 1), signer, block_size=10)
    packets = sender.send_block(make_payloads(10))
    channel = Channel(loss=BernoulliLoss(0.2, seed=seed),
                      delay=GaussianDelay(0.05, 0.02, seed=seed + 1))
    trace = SessionTrace()
    trace.record_all(channel.transmit(packets))
    return trace


class TestRoundtrip:
    def test_dump_load_identity(self, signer, tmp_path):
        trace = _recorded_session(signer)
        path = str(tmp_path / "session.trace")
        trace.dump(path)
        assert SessionTrace.load(path) == trace

    def test_stream_roundtrip(self, signer):
        trace = _recorded_session(signer)
        buffer = io.StringIO(trace.to_string())
        assert SessionTrace.load(buffer) == trace

    def test_replay_reproduces_verification(self, signer):
        trace = _recorded_session(signer)
        first = ChainReceiver(signer)
        trace.replay(first.receive)
        # Replay from serialized form gives identical outcomes.
        second = ChainReceiver(signer)
        SessionTrace.load(io.StringIO(trace.to_string())).replay(
            second.receive)
        verdict = lambda r: {s: o.verified for s, o in r.outcomes.items()}
        assert verdict(first) == verdict(second)

    def test_replay_count(self, signer):
        trace = _recorded_session(signer)
        receiver = ChainReceiver(signer)
        assert trace.replay(receiver.receive) == len(trace)

    def test_records_preserve_arrival_order_values(self, signer):
        trace = _recorded_session(signer)
        times = [record.arrival_time for record in trace]
        assert times == sorted(times)


class TestMalformedTraces:
    def test_missing_header(self):
        with pytest.raises(SimulationError):
            SessionTrace.load(io.StringIO('{"t": 1.0, "wire": "00"}\n'))

    def test_unsupported_version(self):
        with pytest.raises(SimulationError):
            SessionTrace.load(io.StringIO('{"format": 99, "records": 0}\n'))

    def test_truncated_body(self, signer):
        trace = _recorded_session(signer)
        text = trace.to_string()
        lines = text.splitlines()
        clipped = "\n".join(lines[:-2]) + "\n"
        with pytest.raises(SimulationError):
            SessionTrace.load(io.StringIO(clipped))

    def test_garbage_record(self):
        with pytest.raises(SimulationError):
            TraceRecord.from_json('{"t": "soon", "wire": "zz"}')


class TestGoldenSemantics:
    def test_wire_format_pinned_by_golden_trace(self, signer):
        """A fixed seed produces a byte-identical trace: any wire-format
        change will show up as a diff here."""
        a = _recorded_session(signer, seed=123).to_string()
        b = _recorded_session(HmacStubSigner(key=b"trace"),
                              seed=123).to_string()
        assert a == b
