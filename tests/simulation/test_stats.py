"""Unit tests for simulation statistics aggregation."""

import pytest

from repro.exceptions import SimulationError
from repro.simulation.stats import PositionTally, SimulationStats


class TestPositionTally:
    def test_q_none_until_received(self):
        assert PositionTally().q is None

    def test_q_ratio(self):
        tally = PositionTally(received=4, verified=3)
        assert tally.q == pytest.approx(0.75)


class TestRecord:
    def test_accumulates_per_position(self):
        stats = SimulationStats()
        stats.record(1, received=True, verified=True)
        stats.record(1, received=True, verified=False)
        stats.record(2, received=False, verified=False)
        assert stats.q_profile() == {1: 0.5}

    def test_verified_requires_received(self):
        stats = SimulationStats()
        with pytest.raises(SimulationError):
            stats.record(1, received=False, verified=True)

    def test_positions_one_based(self):
        stats = SimulationStats()
        with pytest.raises(SimulationError):
            stats.record(0, received=True, verified=True)

    def test_delays_collected_only_for_verified(self):
        stats = SimulationStats()
        stats.record(1, received=True, verified=True, delay=0.5)
        stats.record(2, received=True, verified=False, delay=9.9)
        assert stats.delays == [0.5]


class TestAggregates:
    def _populated(self):
        stats = SimulationStats()
        for _ in range(8):
            stats.record(1, received=True, verified=True, delay=0.1)
        for i in range(8):
            stats.record(2, received=True, verified=i < 4, delay=0.3)
        return stats

    def test_q_min(self):
        assert self._populated().q_min == pytest.approx(0.5)

    def test_overall_q(self):
        assert self._populated().overall_q == pytest.approx(12 / 16)

    def test_delay_stats(self):
        stats = self._populated()
        assert stats.max_delay == pytest.approx(0.3)
        assert 0.1 < stats.mean_delay < 0.3

    def test_empty_stats_raise(self):
        with pytest.raises(SimulationError):
            SimulationStats().q_min
        with pytest.raises(SimulationError):
            SimulationStats().overall_q

    def test_loss_rate(self):
        stats = SimulationStats()
        stats.sent, stats.dropped = 10, 3
        assert stats.observed_loss_rate == pytest.approx(0.3)
        assert SimulationStats().observed_loss_rate == 0.0

    def test_buffer_peaks_merge(self):
        stats = SimulationStats()
        stats.merge_buffer_peaks(5, 2)
        stats.merge_buffer_peaks(3, 7)
        assert stats.message_buffer_peak == 5
        assert stats.hash_buffer_peak == 7

    def test_mean_delay_empty(self):
        assert SimulationStats().mean_delay == 0.0
