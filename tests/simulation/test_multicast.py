"""Unit tests for the one-to-many multicast session runner."""

import pytest

from repro.analysis import rohatgi as rohatgi_analysis
from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import SimulationError
from repro.network.delay import GaussianDelay
from repro.network.loss import BernoulliLoss
from repro.schemes.emss import EmssScheme
from repro.schemes.rohatgi import RohatgiScheme
from repro.simulation.multicast import ReceiverSpec, run_multicast_session


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"mcast")


class TestMulticast:
    def test_heterogeneous_receivers(self, signer):
        receivers = [
            ReceiverSpec("lan"),
            ReceiverSpec("wifi", loss=BernoulliLoss(0.1, seed=1)),
            ReceiverSpec("satellite", loss=BernoulliLoss(0.4, seed=2),
                         delay=GaussianDelay(0.3, 0.05, seed=3)),
        ]
        result = run_multicast_session(EmssScheme(2, 1), 20, 5, receivers,
                                       signer=signer)
        q = result.q_min_by_receiver()
        assert q["lan"] == 1.0
        assert q["lan"] >= q["wifi"] >= q["satellite"]
        assert result.worst_receiver == "satellite"
        assert result.packets_sent == 100

    def test_one_signature_per_block_total(self, signer):
        """The sender authenticates once no matter how many receivers."""
        calls = []
        original_sign = signer.sign

        class CountingSigner:
            name = signer.name
            signature_size = signer.signature_size

            def sign(self, message):
                calls.append(message)
                return original_sign(message)

            def verify(self, message, signature):
                return signer.verify(message, signature)

        result = run_multicast_session(
            EmssScheme(2, 1), 10, 3,
            [ReceiverSpec("a"), ReceiverSpec("b"), ReceiverSpec("c")],
            signer=CountingSigner())
        assert len(calls) == 3  # one per block, NOT per receiver
        assert len(result.per_receiver) == 3

    def test_per_receiver_loss_independent(self, signer):
        receivers = [
            ReceiverSpec("r1", loss=BernoulliLoss(0.3, seed=10)),
            ReceiverSpec("r2", loss=BernoulliLoss(0.3, seed=20)),
        ]
        result = run_multicast_session(EmssScheme(2, 1), 30, 4, receivers,
                                       signer=signer)
        r1 = result.per_receiver["r1"]
        r2 = result.per_receiver["r2"]
        assert r1.dropped != r2.dropped or r1.q_profile() != r2.q_profile()

    def test_matches_single_receiver_analysis(self, signer):
        p = 0.2
        receivers = [ReceiverSpec("solo", loss=BernoulliLoss(p, seed=5))]
        result = run_multicast_session(RohatgiScheme(), 10, 60, receivers,
                                       signer=signer)
        profile = result.per_receiver["solo"].q_profile()
        for position in (3, 6, 10):
            assert profile[position] == pytest.approx(
                rohatgi_analysis.q_i(position, p), abs=0.07)

    def test_saida_receivers(self, signer):
        from repro.schemes.saida import SaidaScheme

        receivers = [
            ReceiverSpec("good", loss=BernoulliLoss(0.1, seed=1),
                         protect_signature_packets=False),
            ReceiverSpec("bad", loss=BernoulliLoss(0.6, seed=2),
                         protect_signature_packets=False),
        ]
        result = run_multicast_session(SaidaScheme(0.5), 16, 5, receivers,
                                       signer=signer)
        q = result.q_min_by_receiver()
        assert q["good"] == 1.0  # comfortably below the 50% cliff
        assert q["bad"] < 0.2    # above the cliff: collapse

    def test_individually_verifiable_receivers(self, signer):
        from repro.schemes.sign_each import SignEachScheme
        from repro.schemes.wong_lam import WongLamScheme

        for scheme in (WongLamScheme(), SignEachScheme()):
            result = run_multicast_session(
                scheme, 8, 2,
                [ReceiverSpec("any", loss=BernoulliLoss(0.5, seed=3),
                              protect_signature_packets=False)],
                signer=signer)
            assert result.per_receiver["any"].q_min == 1.0

    def test_validation(self, signer):
        with pytest.raises(SimulationError):
            run_multicast_session(EmssScheme(2, 1), 10, 0,
                                  [ReceiverSpec("a")], signer=signer)
        with pytest.raises(SimulationError):
            run_multicast_session(EmssScheme(2, 1), 10, 1, [],
                                  signer=signer)
        with pytest.raises(SimulationError):
            run_multicast_session(EmssScheme(2, 1), 10, 1,
                                  [ReceiverSpec("a"), ReceiverSpec("a")],
                                  signer=signer)
