"""Buffer-DoS regression: flooding cannot unbound receiver memory.

The paper notes the buffering that chained schemes require "is subject
to Denial of Service attacks".  A ``ChainReceiver(max_buffered=k)``
flooded with unverifiable packets must keep its message buffer at
``k``, evict deterministically, and still verify legitimate packets
arriving afterwards.
"""

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.packets import Packet
from repro.schemes.emss import EmssScheme
from repro.schemes.rohatgi import RohatgiScheme
from repro.simulation.receiver import ChainReceiver
from repro.simulation.sender import make_payloads

FLOOD = 100
CAP = 8


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"buffer-dos-test")


def _flood_packets(count, base_seq=10_000):
    """Unverifiable chaff: no signature, no trusted hash will ever come."""
    return [Packet(seq=base_seq + i, block_id=99,
                   payload=b"flood %d" % i) for i in range(count)]


class TestBoundedMemory:
    def test_buffer_never_exceeds_cap(self, signer):
        receiver = ChainReceiver(signer, max_buffered=CAP)
        for packet in _flood_packets(FLOOD):
            receiver.ingest_wire(packet.to_wire(), 0.0)
        assert receiver.buffered_count == CAP
        assert receiver.message_buffer_peak <= CAP
        assert receiver.evicted == FLOOD - CAP

    def test_eviction_is_deterministic(self, signer):
        def run():
            receiver = ChainReceiver(signer, max_buffered=CAP)
            for packet in _flood_packets(FLOOD):
                receiver.ingest_wire(packet.to_wire(), 0.0)
            return sorted(seq for seq, o in receiver.outcomes.items()
                          if not o.verified), receiver.evicted

        assert run() == run()

    def test_oldest_lowest_seq_evicted_first(self, signer):
        receiver = ChainReceiver(signer, max_buffered=CAP)
        packets = _flood_packets(FLOOD)
        for packet in packets:
            receiver.ingest_wire(packet.to_wire(), 0.0)
        # The survivors are exactly the CAP highest sequence numbers.
        survivors = {seq for seq in receiver.outcomes
                     if receiver._buffered.get(seq)}
        assert survivors == {p.seq for p in packets[-CAP:]}


class TestLegitTrafficSurvives:
    def test_signed_stream_verifies_after_flood(self, signer):
        receiver = ChainReceiver(signer, max_buffered=CAP)
        for packet in _flood_packets(FLOOD):
            receiver.ingest_wire(packet.to_wire(), 0.0)
        block = RohatgiScheme().make_block(make_payloads(6), signer)
        for packet in block:
            receiver.ingest_wire(packet.to_wire(), 1.0)
        assert all(receiver.outcomes[p.seq].verified for p in block)

    def test_flood_between_chain_and_signature(self, signer):
        """Chaff arriving mid-block evicts itself, not the genuine block.

        Eviction drops the lowest buffered sequence first (oldest in
        stream order), so chaff claiming stale low sequences churns
        through the buffer while the in-flight block survives and
        verifies when its signature lands.
        """
        block = EmssScheme(2, 1).make_block(make_payloads(6), signer,
                                            base_seq=50_000)
        receiver = ChainReceiver(signer, max_buffered=len(block) + CAP)
        for packet in block[:-1]:
            receiver.ingest_wire(packet.to_wire(), 0.0)
        for packet in _flood_packets(FLOOD, base_seq=100):
            receiver.ingest_wire(packet.to_wire(), 0.5)
        # Signature packet arrives last and cascades.
        receiver.ingest_wire(block[-1].to_wire(), 1.0)
        assert all(receiver.outcomes[p.seq].verified for p in block)
        assert receiver.buffered_count <= len(block) + CAP

    def test_flood_can_evict_genuine_when_cap_too_small(self, signer):
        """Documented failure mode: a tight cap sacrifices genuine
        packets under flood (they evict first — lowest seq), but the
        receiver stays bounded and alive."""
        block = EmssScheme(2, 1).make_block(make_payloads(6), signer)
        receiver = ChainReceiver(signer, max_buffered=4)
        for packet in block[:-1]:
            receiver.ingest_wire(packet.to_wire(), 0.0)
        for packet in _flood_packets(FLOOD):
            receiver.ingest_wire(packet.to_wire(), 0.5)
        receiver.ingest_wire(block[-1].to_wire(), 1.0)
        assert receiver.buffered_count <= 4
        assert receiver.outcomes[block[-1].seq].verified
        assert not all(receiver.outcomes[p.seq].verified
                       for p in block[:-1])
