"""Defensive wire ingestion: ChainReceiver.ingest_wire / ingest.

The adversarial channel hands the receiver raw bytes; these tests pin
the degradation contract — undecodable buffers are counted and
discarded, forgeries never claim or poison a sequence slot, replays
are deduplicated by content, and genuine packets verify regardless of
what arrived around them.
"""

from dataclasses import replace

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.schemes.emss import EmssScheme
from repro.schemes.rohatgi import RohatgiScheme
from repro.simulation.receiver import ChainReceiver
from repro.simulation.sender import make_payloads


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"ingest-test")


@pytest.fixture
def block(signer):
    return RohatgiScheme().make_block(make_payloads(5), signer)


class TestUndecodable:
    def test_garbage_counted_and_discarded(self, signer):
        receiver = ChainReceiver(signer)
        assert receiver.ingest_wire(b"\x01\x02\x03", 0.0) is None
        assert receiver.ingest_wire(b"", 0.0) is None
        assert receiver.undecodable == 2
        assert receiver.outcomes == {}
        assert receiver.buffered_count == 0

    def test_truncated_wire_counted(self, signer, block):
        receiver = ChainReceiver(signer)
        wire = block[0].to_wire()
        assert receiver.ingest_wire(wire[:len(wire) // 2], 0.0) is None
        assert receiver.undecodable == 1

    def test_genuine_stream_still_verifies(self, signer, block):
        receiver = ChainReceiver(signer)
        for packet in block:
            receiver.ingest_wire(packet.to_wire(), 0.0)
        assert receiver.verified_count() == len(block)
        assert receiver.undecodable == 0


class TestForgeryRejection:
    def test_bad_signature_never_claims_slot(self, signer, block):
        receiver = ChainReceiver(signer)
        forged = replace(block[0], payload=b"forged payload")
        receiver.ingest_wire(forged.to_wire(), 0.0)
        assert receiver.forged_rejected == 1
        assert block[0].seq not in receiver.outcomes
        # The genuine signature packet still takes the slot and verifies.
        receiver.ingest_wire(block[0].to_wire(), 0.1)
        assert receiver.outcomes[block[0].seq].verified

    def test_forged_chain_packet_loses_race_to_genuine(self, signer, block):
        receiver = ChainReceiver(signer)
        forged = replace(block[1], payload=b"tampered")
        # Forgery first, genuine second, then the covering signature.
        receiver.ingest_wire(forged.to_wire(), 0.0)
        receiver.ingest_wire(block[1].to_wire(), 0.1)
        receiver.ingest_wire(block[0].to_wire(), 0.2)
        outcome = receiver.outcomes[block[1].seq]
        assert outcome.verified
        assert receiver.forged_rejected == 1
        assert receiver.accepted_digest(block[1].seq) is not None

    def test_forgery_after_verification_rejected(self, signer, block):
        receiver = ChainReceiver(signer)
        for packet in block:
            receiver.ingest_wire(packet.to_wire(), 0.0)
        forged = replace(block[2], payload=b"late forgery")
        receiver.ingest_wire(forged.to_wire(), 1.0)
        assert receiver.forged_rejected == 1
        assert receiver.outcomes[block[2].seq].verified

    def test_accepted_digest_matches_genuine(self, signer, block):
        receiver = ChainReceiver(signer)
        forged = replace(block[1], payload=b"tampered")
        receiver.ingest_wire(forged.to_wire(), 0.0)
        for packet in block:
            receiver.ingest_wire(packet.to_wire(), 0.1)
        from repro.crypto.hashing import sha256
        for packet in block:
            assert receiver.accepted_digest(packet.seq) == sha256.digest(
                packet.auth_bytes())


class TestReplays:
    def test_replay_of_verified_packet_dropped(self, signer, block):
        receiver = ChainReceiver(signer)
        for packet in block:
            receiver.ingest_wire(packet.to_wire(), 0.0)
        receiver.ingest_wire(block[3].to_wire(), 0.5)
        assert receiver.replays_dropped == 1
        assert receiver.verified_count() == len(block)

    def test_replay_of_buffered_candidate_dropped(self, signer):
        # EMSS sends the signature last, so early packets buffer.
        packets = EmssScheme(2, 1).make_block(make_payloads(6), signer)
        receiver = ChainReceiver(signer)
        receiver.ingest_wire(packets[0].to_wire(), 0.0)
        receiver.ingest_wire(packets[0].to_wire(), 0.1)
        assert receiver.replays_dropped == 1
        assert receiver.buffered_count == 1


class TestCandidateBounds:
    def test_slot_contention_capped(self, signer):
        packets = EmssScheme(2, 1).make_block(make_payloads(6), signer)
        receiver = ChainReceiver(signer, max_candidates=2)
        seq = packets[0].seq
        for i in range(5):
            fake = replace(packets[0], payload=b"variant %d" % i)
            receiver.ingest_wire(fake.to_wire(), 0.0)
        assert receiver.buffered_count == 2
        assert receiver.forged_rejected == 3
        assert not receiver.outcomes[seq].verified
