"""Unit tests for receiver buffer eviction (DoS-resistance knobs)."""

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.schemes.emss import EmssScheme
from repro.simulation.receiver import ChainReceiver
from repro.simulation.sender import StreamSender, make_payloads


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"evict")


def _block(signer, n=8, block_id=0, base_seq=1):
    return EmssScheme(2, 1).make_block(make_payloads(n), signer,
                                       block_id=block_id, base_seq=base_seq)


class TestBufferCap:
    def test_cap_enforced(self, signer):
        receiver = ChainReceiver(signer, max_buffered=3)
        packets = _block(signer, 8)
        for packet in packets[:-1]:  # withhold the signature
            receiver.receive(packet, 0.0)
        assert receiver.buffered_count <= 3
        assert receiver.evicted == 4

    def test_oldest_evicted_first(self, signer):
        receiver = ChainReceiver(signer, max_buffered=2)
        packets = _block(signer, 6)
        for packet in packets[:-1]:
            receiver.receive(packet, 0.0)
        # Only the two most recent data packets remain; on signature
        # arrival they verify, older ones cannot.
        receiver.receive(packets[-1], 1.0)
        assert receiver.outcomes[4].verified
        assert receiver.outcomes[5].verified
        assert not receiver.outcomes[1].verified

    def test_cap_validation(self, signer):
        with pytest.raises(ValueError):
            ChainReceiver(signer, max_buffered=0)

    def test_unbounded_by_default(self, signer):
        receiver = ChainReceiver(signer)
        for packet in _block(signer, 8)[:-1]:
            receiver.receive(packet, 0.0)
        assert receiver.buffered_count == 7
        assert receiver.evicted == 0


class TestBlockEviction:
    def test_evict_block_drops_only_that_block(self, signer):
        receiver = ChainReceiver(signer)
        sender = StreamSender(EmssScheme(2, 1), signer, block_size=6)
        block0 = sender.send_block(make_payloads(6))
        block1 = sender.send_block(make_payloads(6))
        # Deliver both blocks minus their signatures: all buffered.
        for packet in block0[:-1] + block1[:-1]:
            receiver.receive(packet, 0.0)
        dropped = receiver.evict_block(0)
        assert dropped == 5
        assert receiver.buffered_count == 5  # block 1 untouched
        # Block 1 still completes normally.
        receiver.receive(block1[-1], 1.0)
        assert receiver.outcomes[block1[0].seq].verified

    def test_evict_missing_block_is_noop(self, signer):
        receiver = ChainReceiver(signer)
        assert receiver.evict_block(99) == 0
