"""Edge cases for stream gap-skipping and block finishing."""

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import SchemeParameterError
from repro.schemes.emss import EmssScheme
from repro.simulation.sender import make_payloads
from repro.simulation.stream_receiver import StreamReceiver


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"stream-edges")


def _block(signer, count, block_id=0, base_seq=1):
    return EmssScheme(1, 1).make_block(make_payloads(count), signer,
                                       block_id=block_id, base_seq=base_seq)


class TestSkipGapEdges:
    def test_skip_before_next_seq_is_a_noop(self, signer):
        receiver = StreamReceiver(signer)
        for packet in _block(signer, 3):
            receiver.receive(packet, 0.0)
        assert receiver._next_seq == 4
        assert receiver.skip_gap(2) == []
        assert receiver.skipped == 0
        assert receiver._next_seq == 4

    def test_skip_past_already_released_seq_counts_nothing(self, signer):
        packets = _block(signer, 4)
        receiver = StreamReceiver(signer)
        for packet in packets:
            receiver.receive(packet, 0.0)
        delivered_before = len(receiver.delivered)
        # Everything through seq 4 is already released; skipping "past"
        # it must not double-deliver or inflate the skipped counter.
        assert receiver.skip_gap(4) == []
        assert receiver.skipped == 0
        assert len(receiver.delivered) == delivered_before

    def test_gap_at_block_boundary_releases_next_block(self, signer):
        first = _block(signer, 3, block_id=0, base_seq=1)
        second = _block(signer, 3, block_id=1, base_seq=4)
        receiver = StreamReceiver(signer)
        # Lose the whole first block; the second verifies fully but is
        # held back by the boundary gap.
        for packet in second:
            receiver.receive(packet, 1.0)
        assert receiver.delivered == []
        assert receiver.pending == 3
        released = receiver.finish_block(0, last_seq=3)
        assert [d.seq for d in released] == [4, 5, 6]
        assert receiver.skipped == 3
        assert receiver.pending == 0
        assert len(first) == 3  # block really spanned seqs 1..3

    def test_partial_gap_inside_block(self, signer):
        packets = _block(signer, 4)
        receiver = StreamReceiver(signer)
        for packet in packets[2:]:
            receiver.receive(packet, 0.0)
        assert receiver.delivered == []
        released = receiver.skip_gap(2)
        assert [d.seq for d in released] == [3, 4]
        assert receiver.skipped == 2

    def test_finish_block_is_idempotent(self, signer):
        packets = _block(signer, 3)
        receiver = StreamReceiver(signer)
        for packet in packets[1:]:
            receiver.receive(packet, 0.0)
        first = receiver.finish_block(0, last_seq=3)
        assert [d.seq for d in first] == [2, 3]
        assert receiver.finish_block(0, last_seq=3) == []
        assert receiver.skipped == 1


class TestEmptyBlock:
    def test_empty_block_rejected_by_scheme(self, signer):
        with pytest.raises(SchemeParameterError):
            EmssScheme(1, 1).make_block([], signer)

    def test_finish_never_started_block(self, signer):
        # A block whose every packet was lost: nothing buffered, the
        # boundary just advances the sequence horizon.
        receiver = StreamReceiver(signer)
        assert receiver.finish_block(0, last_seq=5) == []
        assert receiver.skipped == 5
        assert receiver._next_seq == 6

    def test_stream_recovers_after_empty_block(self, signer):
        receiver = StreamReceiver(signer)
        receiver.finish_block(0, last_seq=3)
        for packet in _block(signer, 2, block_id=1, base_seq=4):
            receiver.receive(packet, 2.0)
        assert [d.seq for d in receiver.delivered] == [4, 5]
