"""Wire-format hardening: construction caps and the decode taxonomy."""

import math
import struct

import pytest

from repro.exceptions import (
    HeaderFormatError,
    OverlongBlobError,
    PacketFormatError,
    SimulationError,
    TrailingBytesError,
    TruncatedPacketError,
    WireDecodeError,
)
from repro.packets import (
    MAX_BLOB_BYTES,
    MAX_CARRIED_HASHES,
    WIRE_HEADER_SIZE,
    Packet,
    packet_from_wire,
)


def _sample():
    return Packet(seq=7, block_id=2, payload=b"hello",
                  carried=((9, b"\xaa" * 16), (11, b"\xbb" * 16)),
                  signature=b"\xcc" * 32, extra=b"opaque", send_time=1.25)


class TestConstructionCaps:
    def test_seq_beyond_wire_field(self):
        with pytest.raises(PacketFormatError):
            Packet(seq=2 ** 32, block_id=0, payload=b"")

    def test_block_id_beyond_wire_field(self):
        with pytest.raises(PacketFormatError):
            Packet(seq=1, block_id=2 ** 32, payload=b"")

    def test_oversized_payload(self):
        with pytest.raises(PacketFormatError):
            Packet(seq=1, block_id=0, payload=b"\x00" * (MAX_BLOB_BYTES + 1))

    def test_oversized_extra_and_signature(self):
        big = b"\x00" * (MAX_BLOB_BYTES + 1)
        with pytest.raises(PacketFormatError):
            Packet(seq=1, block_id=0, payload=b"", extra=big)
        with pytest.raises(PacketFormatError):
            Packet(seq=1, block_id=0, payload=b"", signature=big)

    def test_carried_target_beyond_wire_field(self):
        with pytest.raises(PacketFormatError):
            Packet(seq=1, block_id=0, payload=b"",
                   carried=((2 ** 32, b"\x01"),))

    def test_nonfinite_send_time(self):
        for bad in (math.inf, -math.inf, math.nan):
            with pytest.raises(PacketFormatError):
                Packet(seq=1, block_id=0, payload=b"", send_time=bad)

    def test_format_error_is_simulation_and_value_error(self):
        with pytest.raises(SimulationError):
            Packet(seq=2 ** 32, block_id=0, payload=b"")
        with pytest.raises(ValueError):
            Packet(seq=2 ** 32, block_id=0, payload=b"")


class TestDecodeTaxonomy:
    def test_round_trip_is_canonical(self):
        packet = _sample()
        wire = packet.to_wire()
        decoded = packet_from_wire(wire)
        assert decoded == packet
        assert decoded.to_wire() == wire

    def test_every_truncation_raises_truncated(self):
        wire = _sample().to_wire()
        for cut in range(len(wire)):
            with pytest.raises(TruncatedPacketError):
                packet_from_wire(wire[:cut])

    def test_trailing_bytes_rejected(self):
        wire = _sample().to_wire()
        with pytest.raises(TrailingBytesError):
            packet_from_wire(wire + b"\x00")

    def test_nonzero_reserved_field(self):
        wire = bytearray(_sample().to_wire())
        wire[10] = 0xFF  # inside the 8-byte reserved field (offsets 8-15)
        with pytest.raises(HeaderFormatError):
            packet_from_wire(bytes(wire))

    def test_bad_signature_flag(self):
        wire = bytearray(_sample().to_wire())
        wire[WIRE_HEADER_SIZE - 1] = 2
        with pytest.raises(HeaderFormatError):
            packet_from_wire(bytes(wire))

    def test_cleared_flag_with_signature_bytes(self):
        wire = bytearray(_sample().to_wire())
        wire[WIRE_HEADER_SIZE - 1] = 0
        with pytest.raises(HeaderFormatError):
            packet_from_wire(bytes(wire))

    def test_header_body_seq_mismatch(self):
        wire = bytearray(_sample().to_wire())
        struct.pack_into(">I", wire, 0, 8)  # header seq only
        with pytest.raises(HeaderFormatError):
            packet_from_wire(bytes(wire))

    def test_overlong_payload_declared(self):
        packet = Packet(seq=1, block_id=0, payload=b"")
        wire = bytearray(packet.to_wire())
        # Payload length field sits right after header + body ids.
        struct.pack_into(">I", wire, WIRE_HEADER_SIZE + 8,
                         MAX_BLOB_BYTES + 1)
        with pytest.raises(OverlongBlobError):
            packet_from_wire(bytes(wire))

    def test_overlong_carried_count_declared(self):
        packet = Packet(seq=1, block_id=0, payload=b"")
        wire = bytearray(packet.to_wire())
        struct.pack_into(">I", wire, WIRE_HEADER_SIZE + 12,
                         MAX_CARRIED_HASHES + 1)
        with pytest.raises(OverlongBlobError):
            packet_from_wire(bytes(wire))

    def test_invalid_fields_fold_into_taxonomy(self):
        wire = bytearray(_sample().to_wire())
        struct.pack_into(">I", wire, 0, 0)  # seq 0 in header...
        struct.pack_into(">I", wire, WIRE_HEADER_SIZE, 0)  # ...and body
        with pytest.raises(HeaderFormatError):
            packet_from_wire(bytes(wire))

    def test_taxonomy_subtypes_are_wire_and_simulation_errors(self):
        for subtype in (TruncatedPacketError, HeaderFormatError,
                        OverlongBlobError, TrailingBytesError):
            assert issubclass(subtype, WireDecodeError)
            assert issubclass(subtype, SimulationError)

    def test_catching_base_class_suffices(self):
        wire = _sample().to_wire()
        for bad in (wire[:10], wire + b"\x00", b"", b"\xff" * 64):
            with pytest.raises(WireDecodeError):
                packet_from_wire(bad)
