"""Unit tests for the packet wire format."""

import pytest

from repro.exceptions import SimulationError
from repro.packets import Packet, packet_from_wire


def _rich_packet():
    return Packet(
        seq=42, block_id=3, payload=b"the payload",
        carried=((7, b"\xaa" * 16), (9, b"\xbb" * 16)),
        signature=b"\xcc" * 64, extra=b"scheme-extra", send_time=1.25,
    )


class TestValidation:
    def test_rejects_zero_seq(self):
        with pytest.raises(SimulationError):
            Packet(seq=0, block_id=0, payload=b"")

    def test_rejects_negative_block(self):
        with pytest.raises(SimulationError):
            Packet(seq=1, block_id=-1, payload=b"")

    def test_rejects_self_hash(self):
        with pytest.raises(SimulationError):
            Packet(seq=1, block_id=0, payload=b"", carried=((1, b"\x01"),))

    def test_rejects_duplicate_targets(self):
        with pytest.raises(SimulationError):
            Packet(seq=1, block_id=0, payload=b"",
                   carried=((2, b"\x01"), (2, b"\x02")))

    def test_rejects_empty_hash(self):
        with pytest.raises(SimulationError):
            Packet(seq=1, block_id=0, payload=b"", carried=((2, b""),))


class TestAuthBytes:
    def test_covers_payload(self):
        a = Packet(seq=1, block_id=0, payload=b"x")
        b = Packet(seq=1, block_id=0, payload=b"y")
        assert a.auth_bytes() != b.auth_bytes()

    def test_covers_carried_hashes(self):
        a = Packet(seq=1, block_id=0, payload=b"x", carried=((2, b"\x01"),))
        b = Packet(seq=1, block_id=0, payload=b"x", carried=((2, b"\x02"),))
        assert a.auth_bytes() != b.auth_bytes()

    def test_covers_extra(self):
        a = Packet(seq=1, block_id=0, payload=b"x", extra=b"1")
        b = Packet(seq=1, block_id=0, payload=b"x", extra=b"2")
        assert a.auth_bytes() != b.auth_bytes()

    def test_excludes_signature(self):
        a = Packet(seq=1, block_id=0, payload=b"x", signature=b"\x01")
        b = Packet(seq=1, block_id=0, payload=b"x", signature=b"\x02")
        assert a.auth_bytes() == b.auth_bytes()

    def test_injective_on_field_boundaries(self):
        # payload/extra boundary must not be ambiguous.
        a = Packet(seq=1, block_id=0, payload=b"ab", extra=b"c")
        b = Packet(seq=1, block_id=0, payload=b"a", extra=b"bc")
        assert a.auth_bytes() != b.auth_bytes()

    def test_deterministic(self):
        assert _rich_packet().auth_bytes() == _rich_packet().auth_bytes()


class TestWireRoundtrip:
    def test_full_roundtrip(self):
        packet = _rich_packet()
        assert packet_from_wire(packet.to_wire()) == packet

    def test_unsigned_roundtrip(self):
        packet = Packet(seq=1, block_id=0, payload=b"data")
        decoded = packet_from_wire(packet.to_wire())
        assert decoded.signature is None
        assert decoded == packet

    def test_empty_payload_roundtrip(self):
        packet = Packet(seq=5, block_id=2, payload=b"")
        assert packet_from_wire(packet.to_wire()) == packet

    def test_truncated_buffer_rejected(self):
        wire = _rich_packet().to_wire()
        for cut in (4, len(wire) // 2, len(wire) - 1):
            with pytest.raises(SimulationError):
                packet_from_wire(wire[:cut])

    def test_header_body_mismatch_rejected(self):
        wire = bytearray(_rich_packet().to_wire())
        wire[0] ^= 1  # corrupt header seq only
        with pytest.raises(SimulationError):
            packet_from_wire(bytes(wire))


class TestDerived:
    def test_overhead_bytes(self):
        packet = _rich_packet()
        expected = 2 * 16 + 2 * 4 + 64 + len(b"scheme-extra")
        assert packet.overhead_bytes == expected

    def test_overhead_without_signature(self):
        packet = Packet(seq=1, block_id=0, payload=b"x",
                        carried=((2, b"\x01" * 8),))
        assert packet.overhead_bytes == 8 + 4

    def test_with_send_time(self):
        packet = Packet(seq=1, block_id=0, payload=b"x")
        stamped = packet.with_send_time(3.5)
        assert stamped.send_time == 3.5
        assert packet.send_time == 0.0
