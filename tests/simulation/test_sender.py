"""Unit tests for the stream sender."""

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import SimulationError
from repro.schemes.emss import EmssScheme
from repro.simulation.sender import StreamSender, make_payloads


@pytest.fixture
def sender():
    return StreamSender(EmssScheme(2, 1), HmacStubSigner(key=b"s"),
                        block_size=4, t_transmit=0.01)


class TestMakePayloads:
    def test_count_and_size(self):
        payloads = make_payloads(10, size=40)
        assert len(payloads) == 10
        assert all(len(p) == 40 for p in payloads)

    def test_distinct(self):
        payloads = make_payloads(100)
        assert len(set(payloads)) == 100

    def test_validation(self):
        with pytest.raises(SimulationError):
            make_payloads(-1)
        with pytest.raises(SimulationError):
            make_payloads(1, size=4)


class TestSendBlock:
    def test_send_times_spaced_by_t_transmit(self, sender):
        packets = sender.send_block(make_payloads(4))
        times = [p.send_time for p in packets]
        assert times == pytest.approx([0.0, 0.01, 0.02, 0.03])

    def test_sequence_numbers_continue_across_blocks(self, sender):
        first = sender.send_block(make_payloads(4))
        second = sender.send_block(make_payloads(4))
        assert [p.seq for p in first] == [1, 2, 3, 4]
        assert [p.seq for p in second] == [5, 6, 7, 8]

    def test_block_ids_increment(self, sender):
        first = sender.send_block(make_payloads(4))
        second = sender.send_block(make_payloads(4))
        assert {p.block_id for p in first} == {0}
        assert {p.block_id for p in second} == {1}

    def test_clock_continues_across_blocks(self, sender):
        sender.send_block(make_payloads(4))
        second = sender.send_block(make_payloads(4))
        assert second[0].send_time == pytest.approx(0.04)

    def test_empty_block_rejected(self, sender):
        with pytest.raises(SimulationError):
            sender.send_block([])


class TestSendStream:
    def test_stream_chunks_into_blocks(self, sender):
        blocks = list(sender.send_stream(make_payloads(10)))
        assert [len(b) for b in blocks] == [4, 4, 2]

    def test_each_block_signed(self, sender):
        for block in sender.send_stream(make_payloads(12)):
            assert sum(p.is_signature_packet for p in block) == 1


class TestValidation:
    def test_bad_block_size(self):
        with pytest.raises(SimulationError):
            StreamSender(EmssScheme(2, 1), HmacStubSigner(key=b"s"),
                         block_size=0)

    def test_bad_t_transmit(self):
        with pytest.raises(SimulationError):
            StreamSender(EmssScheme(2, 1), HmacStubSigner(key=b"s"),
                         block_size=4, t_transmit=0.0)
