"""Integration-style tests for full sender→channel→receiver sessions."""

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import SimulationError
from repro.network.channel import Channel
from repro.network.delay import GaussianDelay
from repro.network.loss import BernoulliLoss, NoLoss, TraceLoss
from repro.schemes.emss import EmssScheme
from repro.schemes.rohatgi import RohatgiScheme
from repro.schemes.sign_each import SignEachScheme
from repro.schemes.tesla import TeslaParameters
from repro.schemes.wong_lam import WongLamScheme
from repro.simulation.session import (
    run_chain_session,
    run_individual_session,
    run_tesla_session,
)


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"sess")


class TestChainSession:
    def test_lossless_everything_verifies(self, signer):
        stats = run_chain_session(EmssScheme(2, 1), 10, 3, Channel(),
                                  signer=signer)
        assert stats.q_min == 1.0
        assert stats.forged == 0

    def test_lossy_q_below_one(self, signer):
        channel = Channel(loss=BernoulliLoss(0.3, seed=5))
        stats = run_chain_session(EmssScheme(2, 1), 20, 10, channel,
                                  signer=signer)
        assert 0.0 <= stats.q_min < 1.0
        assert stats.observed_loss_rate == pytest.approx(0.3, abs=0.07)

    def test_rohatgi_suffix_loss(self, signer):
        # Lose exactly packet 2 of 5: positions 3..5 become unverifiable.
        channel = Channel(loss=TraceLoss(
            [False, True, False, False, False]))
        stats = run_chain_session(RohatgiScheme(), 5, 1, channel,
                                  signer=signer)
        profile = stats.q_profile()
        assert profile[1] == 1.0
        assert profile[3] == 0.0
        assert profile[5] == 0.0

    def test_stats_accumulate_across_calls(self, signer):
        stats = run_chain_session(EmssScheme(2, 1), 10, 1, Channel(),
                                  signer=signer)
        run_chain_session(EmssScheme(2, 1), 10, 1,
                          Channel(loss=BernoulliLoss(1.0, seed=1)),
                          signer=signer, stats=stats)
        # Second run lost all data packets; tallies should reflect both.
        assert stats.tallies[1].received == 1

    def test_delays_match_block_structure(self, signer):
        stats = run_chain_session(EmssScheme(2, 1), 10, 1, Channel(),
                                  signer=signer, t_transmit=0.01)
        # First packet waits for the signature: 9 slots of 10 ms.
        assert stats.max_delay == pytest.approx(0.09, abs=1e-6)

    def test_validation(self, signer):
        with pytest.raises(SimulationError):
            run_chain_session(EmssScheme(2, 1), 10, 0, Channel(),
                              signer=signer)


class TestIndividualSession:
    @pytest.mark.parametrize("scheme", [WongLamScheme(), SignEachScheme()])
    def test_q_always_one_under_loss(self, scheme, signer):
        channel = Channel(loss=BernoulliLoss(0.5, seed=7),
                          protect_signature_packets=False)
        stats = run_individual_session(scheme, 16, 4, channel, signer=signer)
        assert stats.q_min == 1.0
        assert stats.forged == 0

    def test_rejects_chained_scheme(self, signer):
        with pytest.raises(SimulationError):
            run_individual_session(EmssScheme(2, 1), 8, 1, Channel(),
                                   signer=signer)


class TestTeslaSession:
    def test_lossless_all_verify(self, signer):
        parameters = TeslaParameters(interval=0.05, lag=3, chain_length=64)
        stats = run_tesla_session(parameters, 30, Channel(), signer=signer)
        assert stats.q_min == 1.0

    def test_lossy_profile_shape(self, signer):
        parameters = TeslaParameters(interval=0.05, lag=3, chain_length=64)
        channel = Channel(loss=BernoulliLoss(0.4, seed=11))
        stats = run_tesla_session(parameters, 60, channel, signer=signer)
        # Early packets have many later disclosure chances; lambda is
        # 1 - p^(n+1-i), so early positions should do no worse overall.
        profile = stats.q_profile()
        early = [profile[i] for i in sorted(profile) if i <= 20 and i in profile]
        assert min(early, default=1.0) >= 0.5

    def test_delay_eats_into_xi(self, signer):
        parameters = TeslaParameters(interval=0.05, lag=2, chain_length=64)
        # Mean delay near the disclosure delay: many packets unsafe.
        channel = Channel(delay=GaussianDelay(mean=0.12, std=0.02, seed=3))
        stats = run_tesla_session(parameters, 40, channel, signer=signer)
        assert stats.q_min < 0.8

    def test_packet_count_bounds(self, signer):
        parameters = TeslaParameters(interval=0.05, lag=2, chain_length=8)
        with pytest.raises(SimulationError):
            run_tesla_session(parameters, 9, Channel(), signer=signer)
        with pytest.raises(SimulationError):
            run_tesla_session(parameters, 0, Channel(), signer=signer)

    def test_message_buffer_tracks_lag(self, signer):
        parameters = TeslaParameters(interval=0.05, lag=4, chain_length=64)
        stats = run_tesla_session(parameters, 30, Channel(loss=NoLoss()),
                                  signer=signer)
        assert 1 <= stats.message_buffer_peak <= 6
