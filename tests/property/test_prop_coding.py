"""Property-based tests for GF(256), Reed-Solomon, and diversity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diversity import disjoint_path_count, diversity_lambda_floor
from repro.core.paths import exact_lambda
from repro.crypto.gf256 import gf_add, gf_div, gf_inv, gf_mul
from repro.crypto.reed_solomon import rs_decode, rs_encode
from repro.exceptions import GraphError
from repro.schemes.emss import GenericOffsetScheme

_elements = st.integers(min_value=0, max_value=255)
_nonzero = st.integers(min_value=1, max_value=255)


class TestFieldProperties:
    @given(_elements, _elements, _elements)
    @settings(max_examples=200)
    def test_associativity(self, a, b, c):
        assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))

    @given(_elements, _elements, _elements)
    @settings(max_examples=200)
    def test_distributivity(self, a, b, c):
        assert gf_mul(a, gf_add(b, c)) == gf_add(gf_mul(a, b), gf_mul(a, c))

    @given(_nonzero, _nonzero)
    @settings(max_examples=200)
    def test_division_consistency(self, a, b):
        assert gf_mul(gf_div(a, b), b) == a

    @given(_nonzero)
    @settings(max_examples=100)
    def test_inverse_involution(self, a):
        assert gf_inv(gf_inv(a)) == a


class TestReedSolomonProperties:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_k_subset_decodes(self, data):
        k = data.draw(st.integers(min_value=1, max_value=8))
        n = data.draw(st.integers(min_value=k, max_value=16))
        payload = data.draw(st.binary(max_size=120))
        shares = rs_encode(payload, n, k)
        indices = data.draw(st.permutations(range(n)))
        subset = [(i, shares[i]) for i in indices[:k]]
        assert rs_decode(subset, k) == payload

    @given(st.binary(max_size=60), st.integers(min_value=2, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_shares_are_distinct_for_distinct_points(self, payload, k):
        n = k + 4
        shares = rs_encode(payload, n, k)
        # Shares of non-constant polynomials differ; even constant
        # payloads keep equal length.
        assert len({len(s) for s in shares}) == 1


class TestDiversityProperties:
    @given(st.integers(min_value=4, max_value=30),
           st.lists(st.integers(min_value=1, max_value=6), min_size=1,
                    max_size=3, unique=True),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_floor_never_exceeds_exact(self, n, offsets, p):
        from hypothesis import assume

        from repro.core.paths import path_count

        graph = GenericOffsetScheme(tuple(offsets)).build_graph(n)
        target = 1
        # Keep inclusion-exclusion cheap: skip path-rich instances.
        assume(path_count(graph, target) <= 12)
        floor = diversity_lambda_floor(graph, target, p)
        try:
            exact = exact_lambda(graph, target, p)
        except GraphError:
            return
        assert floor <= exact + 1e-9

    @given(st.integers(min_value=4, max_value=25),
           st.lists(st.integers(min_value=1, max_value=5), min_size=1,
                    max_size=3, unique=True))
    @settings(max_examples=60, deadline=None)
    def test_diversity_bounded_by_offset_count(self, n, offsets):
        graph = GenericOffsetScheme(tuple(offsets)).build_graph(n)
        count = disjoint_path_count(graph, 1)
        assert 1 <= count <= len(offsets)
