"""Property-based tests for the observability layer's merge algebra.

The whole point of :mod:`repro.obs` is that metrics follow the same
exact algebra as :meth:`McResult.merge`: integer counts everywhere, so
merging shard snapshots is associative and commutative with the empty
registry as identity.  Histograms must conserve total counts under any
split of the observation stream, and span enter/exit records must
always balance — properties Hypothesis can probe far harder than
example tests.
"""

import io
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import MetricsRegistry
from repro.obs.sinks import TraceSink
from repro.obs.spans import set_trace_sink, span

BOUNDS = (1.0, 10.0, 100.0)

counter_events = st.lists(
    st.tuples(st.sampled_from(["alpha", "beta", "gamma"]),
              st.integers(min_value=0, max_value=1000)),
    max_size=30)
timer_events = st.lists(
    st.tuples(st.sampled_from(["t.one", "t.two"]),
              st.integers(min_value=0, max_value=10**9)),
    max_size=30)
histogram_events = st.lists(
    st.floats(min_value=-1e6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    max_size=50)


def build_registry(counters, timers, observations):
    registry = MetricsRegistry()
    for name, delta in counters:
        registry.count(name, delta)
    for name, elapsed in timers:
        registry.add_time(name, elapsed)
    for value in observations:
        registry.observe("hist", value, BOUNDS)
    return registry


registries = st.builds(build_registry, counter_events, timer_events,
                       histogram_events)


@given(registries, registries)
@settings(max_examples=60)
def test_merge_commutative(a, b):
    assert a.merge(b) == b.merge(a)


@given(registries, registries, registries)
@settings(max_examples=60)
def test_merge_associative(a, b, c):
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


@given(registries)
@settings(max_examples=60)
def test_merge_identity(a):
    empty = MetricsRegistry()
    assert a.merge(empty) == a
    assert empty.merge(a) == a


@given(registries)
@settings(max_examples=60)
def test_snapshot_round_trip(a):
    assert MetricsRegistry.from_snapshot(a.snapshot()) == a


@given(histogram_events, st.integers(min_value=1, max_value=7))
@settings(max_examples=60)
def test_histogram_counts_conserved_under_shard_splits(values, shards):
    """Any split of the observation stream merges back to the whole."""
    whole = MetricsRegistry()
    for value in values:
        whole.observe("hist", value, BOUNDS)

    parts = [MetricsRegistry() for _ in range(shards)]
    for index, value in enumerate(values):
        parts[index % shards].observe("hist", value, BOUNDS)
    merged = MetricsRegistry.merge_all(parts)

    assert merged == whole
    if values:
        histogram = merged.histograms["hist"]
        assert histogram.total == len(values)


@given(st.lists(st.sampled_from(["load", "solve", "emit"]),
                min_size=0, max_size=12),
       st.booleans())
@settings(max_examples=40)
def test_span_records_balance(names, raise_inside):
    """Every begin record has a matching end, even under exceptions."""
    buffer = io.StringIO()
    sink = TraceSink(buffer)
    set_trace_sink(sink)
    try:
        for name in names:
            try:
                with span(name):
                    if raise_inside:
                        raise RuntimeError("boom")
            except RuntimeError:
                pass
    finally:
        set_trace_sink(None)

    records = [json.loads(line) for line in
               buffer.getvalue().splitlines() if line]
    begins = [r for r in records if r["event"] == "begin"]
    ends = [r for r in records if r["event"] == "end"]
    assert len(begins) == len(ends) == len(names)
    assert [r["span"] for r in begins] == names
    assert [r["span"] for r in ends] == names
    assert all(r["elapsed_ns"] >= 0 for r in ends)
