"""Property-based tests for the packet wire format."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.packets import Packet, packet_from_wire

_digests = st.binary(min_size=1, max_size=64)


@st.composite
def packets(draw):
    seq = draw(st.integers(min_value=1, max_value=2 ** 31))
    target_count = draw(st.integers(min_value=0, max_value=6))
    targets = draw(st.lists(
        st.integers(min_value=1, max_value=2 ** 31).filter(lambda t: t != seq),
        min_size=target_count, max_size=target_count, unique=True))
    carried = tuple((t, draw(_digests)) for t in targets)
    return Packet(
        seq=seq,
        block_id=draw(st.integers(min_value=0, max_value=2 ** 31)),
        payload=draw(st.binary(max_size=300)),
        carried=carried,
        signature=draw(st.one_of(st.none(), st.binary(max_size=200))),
        extra=draw(st.binary(max_size=100)),
        send_time=draw(st.floats(min_value=0, max_value=1e6,
                                 allow_nan=False)),
    )


class TestWireFormat:
    @given(packets())
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_identity(self, packet):
        assert packet_from_wire(packet.to_wire()) == packet

    @given(packets(), packets())
    @settings(max_examples=100, deadline=None)
    def test_auth_bytes_injective(self, a, b):
        """Distinct authenticated content must encode distinctly."""
        same_fields = (
            a.seq == b.seq and a.block_id == b.block_id
            and a.payload == b.payload and a.carried == b.carried
            and a.extra == b.extra
        )
        if same_fields:
            assert a.auth_bytes() == b.auth_bytes()
        else:
            assert a.auth_bytes() != b.auth_bytes()

    @given(packets())
    @settings(max_examples=100, deadline=None)
    def test_overhead_accounting(self, packet):
        expected = sum(len(d) + 4 for _, d in packet.carried)
        expected += len(packet.extra)
        if packet.signature is not None:
            expected += len(packet.signature)
        assert packet.overhead_bytes == expected
