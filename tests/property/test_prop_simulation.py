"""Property-based tests for loss models and the verification cascade."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.montecarlo import graph_monte_carlo
from repro.crypto.signatures import HmacStubSigner
from repro.network.loss import BernoulliLoss, GilbertElliottLoss, TraceLoss
from repro.schemes.emss import EmssScheme
from repro.schemes.rohatgi import RohatgiScheme
from repro.simulation.receiver import ChainReceiver
from repro.simulation.sender import make_payloads


class TestLossModelProperties:
    @given(st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_bernoulli_reset_is_replay(self, p, seed):
        model = BernoulliLoss(p, seed=seed)
        first = model.sample(64)
        model.reset()
        assert model.sample(64) == first

    @given(st.floats(min_value=0.01, max_value=0.9),
           st.floats(min_value=1.0, max_value=20.0),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_gilbert_elliott_stationary_rate(self, rate, burst, seed):
        from hypothesis import assume

        # Feasibility: g2b = rate / (burst (1-rate)) must be <= 1.
        assume(rate <= burst / (1.0 + burst))
        model = GilbertElliottLoss.from_rate_and_burst(rate, burst, seed=seed)
        assert abs(model.mean_loss_rate - rate) < 1e-9

    @given(st.lists(st.booleans(), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_trace_mean_rate(self, trace):
        model = TraceLoss(trace)
        observed = model.sample(len(trace))
        assert observed == list(trace)
        assert model.mean_loss_rate == sum(trace) / len(trace)


@st.composite
def loss_patterns(draw):
    """A block size and per-packet keep/drop decisions."""
    n = draw(st.integers(min_value=2, max_value=24))
    kept = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    return n, kept


class TestCascadeSoundnessAndCompleteness:
    """The wire-level receiver must verify exactly the packets that the
    graph-reachability semantics says are verifiable."""

    def _expected_verifiable(self, graph, received):
        verifiable = {graph.root} if received[graph.root] else set()
        order = graph.topological_order()
        for vertex in order:
            if vertex == graph.root or not received.get(vertex):
                continue
            if any(u in verifiable for u in graph.predecessors(vertex)):
                verifiable.add(vertex)
        return verifiable

    @given(loss_patterns(), st.sampled_from(["rohatgi", "emss"]))
    @settings(max_examples=80, deadline=None)
    def test_receiver_matches_graph_semantics(self, pattern, kind):
        n, kept = pattern
        scheme = RohatgiScheme() if kind == "rohatgi" else EmssScheme(2, 1)
        signer = HmacStubSigner(key=b"prop")
        packets = scheme.make_block(make_payloads(n), signer)
        graph = scheme.build_graph(n)
        # P_sign always received, as the paper assumes.
        received = {v: kept[v - 1] for v in graph.vertices}
        received[graph.root] = True
        receiver = ChainReceiver(signer)
        for packet in packets:
            if received[packet.seq]:
                receiver.receive(packet, 0.0)
        expected = self._expected_verifiable(graph, received)
        actual = {seq for seq, o in receiver.outcomes.items() if o.verified}
        assert actual == expected
        assert receiver.forged_count() == 0


class TestMonteCarloProperties:
    @given(st.integers(min_value=3, max_value=40),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_estimates_are_probabilities(self, n, p):
        graph = EmssScheme(2, 1).build_graph(n)
        mc = graph_monte_carlo(graph, p, trials=200, seed=1)
        assert all(0.0 <= q <= 1.0 for q in mc.q.values())
        assert mc.q[graph.root] == 1.0
