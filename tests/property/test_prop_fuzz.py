"""Fuzz-style property tests: hostile inputs never crash unexpectedly.

A receiver on the open Internet parses attacker-controlled bytes; the
only acceptable behaviours are clean rejection (``SimulationError`` /
``False`` verdicts) or a successful parse of genuinely valid data —
never an unhandled exception.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import ReproError
from repro.packets import Packet, packet_from_wire
from repro.schemes.saida import SaidaReceiver
from repro.schemes.wong_lam import verify_wong_lam_packet
from repro.simulation.receiver import ChainReceiver


class TestWireParserFuzz:
    @given(st.binary(max_size=400))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_bytes_never_crash(self, blob):
        try:
            packet = packet_from_wire(blob)
        except ReproError:
            return  # clean rejection
        # If it parsed, it must re-serialize consistently.
        assert packet.seq >= 1

    @given(st.binary(min_size=1, max_size=200), st.data())
    @settings(max_examples=150, deadline=None)
    def test_truncations_of_valid_packets_rejected_cleanly(self, payload,
                                                           data):
        packet = Packet(seq=5, block_id=1, payload=payload,
                        carried=((9, b"\xab" * 16),), signature=b"\x01" * 8)
        wire = packet.to_wire()
        cut = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
        try:
            revived = packet_from_wire(wire[:cut])
        except ReproError:
            return
        assert revived != packet or cut == len(wire)


class TestReceiverFuzz:
    @given(st.binary(max_size=100), st.binary(max_size=64),
           st.integers(min_value=1, max_value=1000))
    @settings(max_examples=150, deadline=None)
    def test_chain_receiver_swallows_garbage_packets(self, payload, extra,
                                                     seq):
        signer = HmacStubSigner(key=b"fuzz")
        receiver = ChainReceiver(signer)
        packet = Packet(seq=seq, block_id=0, payload=payload, extra=extra,
                        signature=b"\x00" * 16)
        outcome = receiver.receive(packet, 0.0)
        assert outcome.forged or not outcome.verified

    @given(st.binary(max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_wong_lam_verifier_rejects_garbage_extra(self, extra):
        signer = HmacStubSigner(key=b"fuzz")
        packet = Packet(seq=1, block_id=0, payload=b"data", extra=extra,
                        signature=b"\x00" * 16)
        assert verify_wong_lam_packet(packet, signer) is False

    @given(st.binary(min_size=16, max_size=120), st.data())
    @settings(max_examples=100, deadline=None)
    def test_saida_receiver_survives_corrupt_shares(self, junk, data):
        from repro.schemes.saida import SaidaScheme
        from repro.simulation.sender import make_payloads

        signer = HmacStubSigner(key=b"fuzz")
        scheme = SaidaScheme(0.5)
        packets = scheme.make_block(make_payloads(8), signer)
        victim = data.draw(st.integers(min_value=0, max_value=7))
        from dataclasses import replace
        share_header = packets[victim].extra[:16]
        packets[victim] = replace(packets[victim],
                                  extra=share_header + junk)
        receiver = SaidaReceiver(signer)
        for packet in packets:
            receiver.receive(packet)
        # The forged share either breaks reconstruction (block fails,
        # nothing verifies) or was harmlessly excess; never a crash and
        # never a forged payload accepted.
        assert receiver.verified.get(packets[victim].seq) is not True or \
            packets[victim].payload.startswith(b"pkt")
