"""Property-based tests for the batch-signing construction.

Three claims from the issue, each over randomized inputs:

* every appended message's attachment verifies against exactly one
  signed root — its own batch's — and never against another batch's
  attachments or messages;
* proofs are minimal-length: exactly the sibling count the tree shape
  dictates, never more than ``ceil(log2(leaf_count))``;
* splitting a digest stream at any point into two batches never
  changes the set of verifiable blocks; and (session level) random
  batch sizes and flush deadlines leave a live session's transcripts
  byte-identical to per-block signing.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.batch import (
    BatchSigner,
    BatchVerifier,
    decode_batch_attachment,
    expected_proof_sides,
)
from repro.crypto.hashing import sha256
from repro.crypto.signatures import HmacStubSigner
from repro.serve.service import ServeConfig, run_live_session

_messages = st.lists(st.binary(min_size=1, max_size=48), min_size=1,
                     max_size=20, unique=True)


def _signer():
    return HmacStubSigner(key=b"prop-batch", signature_size=64)


class TestOneSignedRoot:
    @given(_messages)
    @settings(max_examples=60)
    def test_every_block_verifies_against_exactly_one_root(self, messages):
        signer = _signer()
        batch = BatchSigner(signer, sha256)
        for message in messages:
            batch.append(message)
        attachments = batch.flush()
        assert batch.signs == 1
        verifier = BatchVerifier(signer, sha256)
        roots = set()
        for message, blob in zip(messages, attachments):
            assert verifier.verify(message, blob)
            attachment = decode_batch_attachment(blob)
            roots.add(attachment.root_signature)
        # one shared root signature across the whole batch, and the
        # expensive verification ran exactly once for it
        assert len(roots) == 1
        assert verifier.root_verifies == 1

    @given(_messages, _messages)
    @settings(max_examples=40)
    def test_attachments_never_cross_batches(self, first, second):
        signer = _signer()
        batch = BatchSigner(signer, sha256)
        for message in first:
            batch.append(message)
        first_attachments = batch.flush()
        for message in second:
            batch.append(message)
        second_attachments = batch.flush()
        verifier = BatchVerifier(signer, sha256)
        for message, blob in zip(first, first_attachments):
            assert verifier.verify(message, blob)
        for message, blob in zip(second, second_attachments):
            assert verifier.verify(message, blob)
        # a message from one batch can never ride another batch's proof
        for message in second:
            if message in first:
                continue
            for blob in first_attachments:
                assert not verifier.verify(message, blob)


class TestMinimalProofs:
    @given(_messages)
    @settings(max_examples=60)
    def test_proof_length_is_exactly_the_tree_shape(self, messages):
        signer = _signer()
        batch = BatchSigner(signer, sha256)
        for message in messages:
            batch.append(message)
        attachments = batch.flush()
        count = len(messages)
        height = math.ceil(math.log2(count)) if count > 1 else 0
        for index, blob in enumerate(attachments):
            attachment = decode_batch_attachment(blob)
            sides = expected_proof_sides(index, count)
            assert len(attachment.proof.siblings) == len(sides)
            assert len(attachment.proof.siblings) <= height


class TestSplitInvariance:
    @given(_messages, st.data())
    @settings(max_examples=60)
    def test_splitting_a_stream_never_changes_the_verifiable_set(
            self, messages, data):
        split = data.draw(st.integers(min_value=0,
                                      max_value=len(messages)))
        signer = _signer()

        def verifiable_set(chunks):
            batch = BatchSigner(signer, sha256)
            verifier = BatchVerifier(signer, sha256)
            verified = set()
            for chunk in chunks:
                for message in chunk:
                    batch.append(message)
                for message, blob in zip(chunk, batch.flush()):
                    if verifier.verify(message, blob):
                        verified.add(message)
            return verified

        whole = verifiable_set([messages])
        parts = verifiable_set([messages[:split], messages[split:]])
        assert whole == parts == set(messages)


class TestSessionInvariance:
    @given(st.integers(min_value=2, max_value=6),
           st.one_of(st.none(),
                     st.floats(min_value=0.01, max_value=1.0)))
    @settings(max_examples=8, deadline=None)
    def test_random_batching_leaves_transcripts_identical(
            self, batch_size, flush_deadline):
        base = dict(receivers=3, blocks=5, block_size=4, payload_size=8,
                    loss_schedule=((0, 0.1),), seed=31, adaptive=False)
        per_block = run_live_session(ServeConfig(**base))
        batched = run_live_session(ServeConfig(
            **base, batch_size=batch_size, flush_deadline=flush_deadline))
        assert batched.transcripts == per_block.transcripts
        assert batched.forged_accepted == 0
