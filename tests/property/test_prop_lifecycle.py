"""Property-based tests for packet-lifecycle traces.

Four invariants over whole instrumented serve sessions (and synthetic
event streams where a session would be wasteful):

* **completeness** — every trace that begins with a ``sign`` event
  ends with a terminal ``verify`` event (verified / arrived / lost);
* **monotonicity** — within a trace, timestamps never go backwards in
  the canonical file order;
* **balance** — the Perfetto export emits exactly one ``B`` and one
  ``E`` per trace, at the trace's extremal timestamps;
* **sampling** — a ``1/N`` sampled run's events are *exactly* the
  hash-selected subset of the full run's, never an approximation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.export import chrome_trace_payload
from repro.obs.lifecycle import LifecycleTracer, lifecycle_sampled
from repro.serve.service import ServeConfig, run_live_session

TERMINAL_STATUSES = {"verified", "arrived", "lost"}

serve_configs = st.builds(
    ServeConfig,
    receivers=st.integers(min_value=1, max_value=3),
    blocks=st.integers(min_value=1, max_value=4),
    block_size=st.integers(min_value=2, max_value=8),
    loss_schedule=st.sampled_from(
        (((0, 0.0),), ((0, 0.1),), ((0, 0.3),), ((0, 0.05), (2, 0.4)))),
    attack=st.sampled_from((None, "pollution", "dos")),
    seed=st.integers(min_value=0, max_value=2**16),
    queue_size=st.sampled_from((4, 256)),
)


def _traced_session(config, sample=1):
    tracer = LifecycleTracer(config.seed, sample=sample)
    run_live_session(config, lifecycle=tracer)
    return tracer


def _by_trace(events):
    traces = {}
    for event in events:
        traces.setdefault(event["trace"], []).append(event)
    return traces


@given(serve_configs)
@settings(max_examples=10, deadline=None)
def test_every_signed_trace_reaches_a_terminal_verdict(config):
    tracer = _traced_session(config)
    events = tracer.events()
    assert events, "an instrumented session must trace something"
    for trace, trace_events in _by_trace(events).items():
        stages = [e["stage"] for e in trace_events]
        if "sign" not in stages:
            continue  # noise traces (forged injections) have no sign
        terminals = [e for e in trace_events if e["stage"] == "verify"]
        assert terminals, f"trace {trace} signed but never concluded"
        assert all(e["status"] in TERMINAL_STATUSES for e in terminals)


@given(serve_configs)
@settings(max_examples=10, deadline=None)
def test_timestamps_monotone_within_each_trace(config):
    tracer = _traced_session(config)
    for trace_events in _by_trace(tracer.events()).values():
        times = [e["t"] for e in trace_events]
        assert times == sorted(times)


@given(serve_configs)
@settings(max_examples=8, deadline=None)
def test_perfetto_export_balances_begin_end_pairs(config):
    tracer = _traced_session(config)
    events = tracer.events()
    payload = chrome_trace_payload(events)
    begins = [e for e in payload["traceEvents"] if e["ph"] == "B"]
    ends = [e for e in payload["traceEvents"] if e["ph"] == "E"]
    assert len(begins) == len(ends) == len(_by_trace(events))
    for trace_events in _by_trace(events).values():
        times = [e["t"] * 1e6 for e in trace_events]
        first, last = trace_events[0], trace_events[-1]
        track = [e for e in begins
                 if e["args"].get("trace") == first["trace"]]
        assert len(track) == 1
        assert track[0]["ts"] == min(times)
    # Every instant lies inside [B, E] of its own track.
    spans = {}
    for event in payload["traceEvents"]:
        if event["ph"] in ("B", "E"):
            key = (event["pid"], event["tid"], event["name"])
            low, high = spans.get(key, (float("inf"), float("-inf")))
            spans[key] = (min(low, event["ts"]), max(high, event["ts"]))
    for low, high in spans.values():
        assert low <= high


@given(serve_configs, st.sampled_from((2, 4, 16)))
@settings(max_examples=8, deadline=None)
def test_sampled_run_is_exactly_the_hash_selected_subset(config, sample):
    full = _traced_session(config).events()
    sampled = _traced_session(config, sample=sample).events()
    expected = [e for e in full if lifecycle_sampled(e["trace"], sample)]
    assert sampled == expected
