"""Property-based tests for stream delivery and TESLA semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.signatures import HmacStubSigner
from repro.schemes.emss import EmssScheme
from repro.schemes.tesla import TeslaParameters, TeslaReceiver, TeslaSender
from repro.simulation.sender import make_payloads
from repro.simulation.stream_receiver import StreamReceiver

_SIGNER = HmacStubSigner(key=b"prop-stream")


@st.composite
def delivery_orders(draw):
    """A block, a received-subset, and an arrival order."""
    n = draw(st.integers(min_value=3, max_value=16))
    keep = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    keep[-1] = True  # signature packet always arrives (paper assumption)
    indices = [i for i in range(n) if keep[i]]
    order = draw(st.permutations(indices))
    return n, list(order)


class TestStreamReceiverProperties:
    @given(delivery_orders())
    @settings(max_examples=120, deadline=None)
    def test_delivery_always_in_order_and_genuine(self, case):
        n, order = case
        payloads = make_payloads(n)
        packets = EmssScheme(2, 1).make_block(payloads, _SIGNER)
        receiver = StreamReceiver(_SIGNER)
        for index in order:
            receiver.receive(packets[index], 0.0)
        receiver.skip_gap(n)
        seqs = [d.seq for d in receiver.delivered]
        # Strictly increasing, no duplicates, payloads authentic.
        assert seqs == sorted(set(seqs))
        for delivered in receiver.delivered:
            assert delivered.payload == payloads[delivered.seq - 1]

    @given(delivery_orders())
    @settings(max_examples=80, deadline=None)
    def test_skip_accounting_is_complete(self, case):
        n, order = case
        packets = EmssScheme(2, 1).make_block(make_payloads(n), _SIGNER)
        receiver = StreamReceiver(_SIGNER)
        for index in order:
            receiver.receive(packets[index], 0.0)
        receiver.skip_gap(n)
        assert len(receiver.delivered) + receiver.skipped == n
        assert receiver.pending == 0

    @given(delivery_orders())
    @settings(max_examples=80, deadline=None)
    def test_arrival_order_never_changes_the_verified_set(self, case):
        n, order = case
        packets = EmssScheme(2, 1).make_block(make_payloads(n), _SIGNER)
        in_order = StreamReceiver(_SIGNER)
        for index in sorted(order):
            in_order.receive(packets[index], 0.0)
        shuffled = StreamReceiver(_SIGNER)
        for index in order:
            shuffled.receive(packets[index], 0.0)
        in_order.skip_gap(n)
        shuffled.skip_gap(n)
        assert {d.seq for d in in_order.delivered} == \
            {d.seq for d in shuffled.delivered}


class TestTeslaProperties:
    @given(st.lists(st.booleans(), min_size=8, max_size=24))
    @settings(max_examples=60, deadline=None)
    def test_verified_iff_some_later_disclosure_arrived(self, kept):
        count = len(kept)
        parameters = TeslaParameters(interval=0.05, lag=2,
                                     chain_length=count + 4)
        sender = TeslaSender(parameters, _SIGNER, seed=b"\x0d" * 16)
        receiver = TeslaReceiver(sender.bootstrap_packet(), _SIGNER)
        packets = [sender.send(b"m%d" % i, i * 0.05) for i in range(count)]
        delivered = [p for p, keep in zip(packets, kept) if keep]
        for packet in delivered:
            receiver.receive(packet, packet.send_time + 0.001)
        # No flush: key for interval i rides in data packet i + lag.
        for i, packet in enumerate(packets):
            if not kept[i]:
                continue
            interval = i + 1
            disclosers = [j for j in range(count)
                          if kept[j] and (j + 1) - parameters.lag >= interval]
            verdict = receiver.verdicts[packet.seq].status
            if disclosers:
                assert verdict == "verified"
            else:
                assert verdict == "pending"
