"""Property-based tests tying the exact evaluators together.

Four independent evaluators cover overlapping domains; hypothesis
drives random instances through every pairwise agreement and ordering
that must hold between them and the paper's recurrence.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.exact_chain import exact_q_profile
from repro.analysis.exact_chain_markov import markov_chain_q_profile
from repro.analysis.exact_periodic import exact_periodic_q_profile
from repro.core.recurrence import solve_recurrence

_loss = st.floats(min_value=0.0, max_value=0.95)
_small_offsets = st.lists(st.integers(min_value=1, max_value=10),
                          min_size=1, max_size=3, unique=True)


class TestEvaluatorAgreement:
    @given(st.integers(min_value=1, max_value=60),
           st.integers(min_value=1, max_value=5), _loss)
    @settings(max_examples=80, deadline=None)
    def test_run_length_equals_transfer_matrix(self, n, m, p):
        chain = exact_q_profile(n, m, p)
        periodic = exact_periodic_q_profile(n, list(range(1, m + 1)), p)
        for a, b in zip(chain, periodic):
            assert a == pytest.approx(b, abs=1e-10)

    @given(st.integers(min_value=1, max_value=60),
           st.integers(min_value=1, max_value=5), _loss)
    @settings(max_examples=80, deadline=None)
    def test_single_state_markov_equals_iid(self, n, m, p):
        iid = exact_q_profile(n, m, p)
        markov = markov_chain_q_profile(n, m, [[1.0]], [p])
        for a, b in zip(iid, markov):
            assert a == pytest.approx(b, abs=1e-10)


class TestOrderings:
    @given(st.integers(min_value=2, max_value=80), _small_offsets, _loss)
    @settings(max_examples=80, deadline=None)
    def test_recurrence_upper_bounds_exact(self, n, offsets, p):
        exact = exact_periodic_q_profile(n, offsets, p)
        approx = solve_recurrence(n, offsets, p).q
        for e, r in zip(exact, approx):
            assert e <= r + 1e-9

    @given(st.integers(min_value=2, max_value=60),
           st.integers(min_value=1, max_value=5),
           st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=60, deadline=None)
    def test_exact_monotone_in_loss(self, n, m, p):
        lower = exact_q_profile(n, m, min(p + 0.05, 1.0))
        higher = exact_q_profile(n, m, p)
        for h, l in zip(higher, lower):
            assert h >= l - 1e-9

    @given(st.integers(min_value=2, max_value=60),
           st.integers(min_value=1, max_value=4), _loss)
    @settings(max_examples=60, deadline=None)
    def test_extra_reach_never_hurts(self, n, m, p):
        narrow = exact_q_profile(n, m, p)
        wide = exact_q_profile(n, m + 1, p)
        for a, b in zip(narrow, wide):
            assert b >= a - 1e-9

    @given(st.integers(min_value=2, max_value=60), _small_offsets, _loss)
    @settings(max_examples=60, deadline=None)
    def test_values_are_probabilities(self, n, offsets, p):
        for q in exact_periodic_q_profile(n, offsets, p):
            assert -1e-12 <= q <= 1.0 + 1e-12
