"""Property-based tests for the health monitor's merge algebra.

The health plane promises the same exact fold as ``McResult.merge``
and ``MetricsRegistry.merge``: every detector state is integer (or an
exact rational config), so merging shard monitors is associative and
commutative with a fresh same-config monitor as identity — and a
cohort split across any number of shards, each shard owning its own
receivers, folds back bit-for-bit to the unsharded monitor.  These are
the guarantees the sharded-serving plan leans on; Hypothesis probes
them over random observation streams.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.health import HealthMonitor

# One shared config so merges are legal; exact rationals throughout.
Q_TARGET = "3/4"
DEFICIT = 5
ENVELOPE = "1/2"
DECODE_SPIKE = "1/4"

slo_events = st.lists(
    st.tuples(st.integers(min_value=0, max_value=40),       # block
              st.sampled_from(["r:a", "r:b", "r:c", "st:left"]),
              st.integers(min_value=0, max_value=16)),      # expected
    max_size=40).map(lambda events: sorted(events))

drift_events = st.lists(
    st.tuples(st.integers(min_value=0, max_value=40),       # block
              st.integers(min_value=0, max_value=20),       # lost
              st.integers(min_value=0, max_value=20)),      # extra fill
    max_size=30).map(lambda events: sorted(events))

sentinel_steps = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5),   # forged delta
              st.integers(min_value=0, max_value=8),   # undecodable delta
              st.integers(min_value=0, max_value=4),   # cap_evictions delta
              st.integers(min_value=0, max_value=6),   # root_verifies delta
              st.integers(min_value=0, max_value=6),   # batch_signs delta
              st.integers(min_value=0, max_value=16)),  # expected delta
    max_size=20)


def fresh():
    return HealthMonitor(q_target=Q_TARGET, deficit=DEFICIT,
                         envelope_top=ENVELOPE, decode_spike=DECODE_SPIKE)


def feed(monitor, slo, drift, sentinels, verified_seed=0):
    for block, scope, expected in slo:
        # Deterministic verified count in [0, expected].
        verified = (block * 7 + expected + verified_seed) % (expected + 1)
        monitor.observe_slo(block, scope, expected, verified)
    for block, lost, extra in drift:
        monitor.observe_envelope(block, lost, lost + extra)
    totals = [0] * 5
    for block, step in enumerate(sentinels):
        for i in range(5):
            totals[i] += step[i]
        monitor.observe_sentinels(
            block, forged=totals[0], undecodable=totals[1],
            cap_evictions=totals[2], root_verifies=totals[3],
            batch_signs=totals[4], expected_delta=step[5])
    return monitor


monitors = st.builds(
    lambda slo, drift, sent, seed: feed(fresh(), slo, drift, sent, seed),
    slo_events, drift_events, sentinel_steps,
    st.integers(min_value=0, max_value=10))


def state(monitor):
    """Comparable full state (describe covers everything but _off_now)."""
    return (monitor.describe(), monitor._off_now)


@given(monitors, monitors)
@settings(max_examples=60)
def test_merge_commutative(a, b):
    assert state(a.merge(b)) == state(b.merge(a))


@given(monitors, monitors, monitors)
@settings(max_examples=60)
def test_merge_associative(a, b, c):
    assert state(a.merge(b).merge(c)) == state(a.merge(b.merge(c)))


@given(monitors)
@settings(max_examples=60)
def test_merge_identity(a):
    empty = fresh()
    assert state(a.merge(empty)) == state(a)
    assert state(empty.merge(a)) == state(a)


@given(slo_events, st.integers(min_value=0, max_value=10))
@settings(max_examples=60)
def test_shard_split_by_scope_is_exact(events, seed):
    """Shards owning disjoint scopes fold back bit-for-bit.

    The whole stream feeds one monitor; the same stream partitioned by
    scope feeds one monitor per shard.  Because the CUSUM evolves per
    scope, the merged shard states — alerts included — must equal the
    unsharded monitor exactly.
    """
    whole = feed(fresh(), events, [], [], seed)
    shards = {}
    for block, scope, expected in events:
        shards.setdefault(scope, []).append((block, scope, expected))
    merged = fresh()
    for scope in sorted(shards):
        merged = merged.merge(feed(fresh(), shards[scope], [], [], seed))
    assert merged.describe() == whole.describe()


@given(monitors, monitors)
@settings(max_examples=60)
def test_merge_severity_counts_are_sums(a, b):
    merged = a.merge(b)
    for severity, count in merged.counts().items():
        assert count == a.counts()[severity] + b.counts()[severity]
    assert len(merged.alerts) == len(a.alerts) + len(b.alerts)
