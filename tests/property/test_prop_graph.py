"""Property-based tests for dependence-graph invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import lambda_bounds
from repro.core.metrics import (
    compute_metrics,
    deterministic_delays,
    hash_buffer_size,
    message_buffer_size,
)
from repro.core.paths import all_depths, exact_lambda, path_count, theta_sets
from repro.schemes.augmented_chain import AugmentedChainScheme
from repro.schemes.emss import EmssScheme
from repro.schemes.random_graph import RandomGraphScheme
from repro.schemes.rohatgi import RohatgiScheme


@st.composite
def scheme_graphs(draw):
    """A valid dependence-graph from a randomly parameterized scheme."""
    kind = draw(st.sampled_from(["rohatgi", "emss", "ac", "random"]))
    if kind == "rohatgi":
        n = draw(st.integers(min_value=2, max_value=40))
        return RohatgiScheme().build_graph(n)
    if kind == "emss":
        m = draw(st.integers(min_value=1, max_value=4))
        d = draw(st.integers(min_value=1, max_value=5))
        n = draw(st.integers(min_value=3, max_value=40))
        return EmssScheme(m, d).build_graph(n)
    if kind == "ac":
        a = draw(st.integers(min_value=2, max_value=5))
        b = draw(st.integers(min_value=1, max_value=5))
        n = draw(st.integers(min_value=b + 2, max_value=50))
        return AugmentedChainScheme(a, b).build_graph(n)
    p_x = draw(st.floats(min_value=0.05, max_value=0.9))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=2, max_value=40))
    return RandomGraphScheme(p_x, seed=seed).build_graph(n)


class TestStructuralInvariants:
    @given(scheme_graphs())
    @settings(max_examples=60, deadline=None)
    def test_all_scheme_graphs_valid(self, graph):
        graph.validate()

    @given(scheme_graphs())
    @settings(max_examples=60, deadline=None)
    def test_edge_labels_consistent(self, graph):
        for i, j in graph.edges():
            assert graph.label(i, j) == i - j

    @given(scheme_graphs())
    @settings(max_examples=40, deadline=None)
    def test_copy_equals_original(self, graph):
        assert graph.copy() == graph

    @given(scheme_graphs())
    @settings(max_examples=40, deadline=None)
    def test_degree_sums_equal_edge_count(self, graph):
        out_total = sum(graph.out_degree(v) for v in graph.vertices)
        in_total = sum(graph.in_degree(v) for v in graph.vertices)
        assert out_total == graph.edge_count
        assert in_total == graph.edge_count


class TestMetricInvariants:
    @given(scheme_graphs())
    @settings(max_examples=40, deadline=None)
    def test_buffers_bound_labels(self, graph):
        msg = message_buffer_size(graph)
        hsh = hash_buffer_size(graph)
        for i, j in graph.edges():
            assert i - j <= msg
            assert j - i <= hsh

    @given(scheme_graphs())
    @settings(max_examples=40, deadline=None)
    def test_delays_nonnegative_and_bounded(self, graph):
        delays = deterministic_delays(graph)
        for vertex, delay in delays.items():
            assert 0 <= delay <= graph.n - 1

    @given(scheme_graphs())
    @settings(max_examples=40, deadline=None)
    def test_metrics_bundle_internally_consistent(self, graph):
        import pytest

        metrics = compute_metrics(graph, l_sign=100, l_hash=10)
        assert metrics.mean_hashes * graph.n == pytest.approx(
            graph.edge_count)
        assert metrics.overhead_bytes * graph.n == pytest.approx(
            100 + 10 * graph.edge_count)


class TestPathInvariants:
    @given(scheme_graphs())
    @settings(max_examples=30, deadline=None)
    def test_depths_vs_theta_sets(self, graph):
        depths = all_depths(graph)
        # Probe a few vertices to keep enumeration cheap.
        for vertex in list(graph.vertices)[:5]:
            count = path_count(graph, vertex)
            assert count >= 1
            thetas = theta_sets(graph, vertex, limit=30)
            assert min(len(t) for t in thetas) == depths[vertex] or \
                count > 30

    @given(st.integers(min_value=3, max_value=12),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_eq1_bounds_contain_exact(self, n, p):
        graph = EmssScheme(2, 1).build_graph(max(n, 3))
        target = 1  # farthest from the root
        try:
            exact = exact_lambda(graph, target, p)
        except Exception:
            return  # too many paths for inclusion-exclusion
        bounds = lambda_bounds(graph, target, p)
        assert bounds.lower - 1e-9 <= exact <= bounds.upper + 1e-9
