"""Property fuzz: the strict wire decoder is total and canonical.

Three invariants over arbitrary and adversarially mutated buffers:

* **totality** — ``packet_from_wire`` either returns a valid packet or
  raises :class:`WireDecodeError`; nothing else ever escapes;
* **canonicality** — any buffer that decodes re-encodes to *exactly*
  itself, so corruption can never alias one valid packet into a
  different wire layout;
* **round trip** — every constructible packet survives
  ``decode(encode(p)) == p``.

Mutations mirror the fault models: random byte flips, truncation,
extension, and splices of two valid packets.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import WireDecodeError
from repro.packets import Packet, packet_from_wire

_digests = st.binary(min_size=1, max_size=48)


@st.composite
def packets(draw):
    seq = draw(st.integers(min_value=1, max_value=2 ** 32 - 1))
    targets = draw(st.lists(
        st.integers(min_value=1,
                    max_value=2 ** 32 - 1).filter(lambda t: t != seq),
        max_size=5, unique=True))
    return Packet(
        seq=seq,
        block_id=draw(st.integers(min_value=0, max_value=2 ** 32 - 1)),
        payload=draw(st.binary(max_size=200)),
        carried=tuple((t, draw(_digests)) for t in targets),
        signature=draw(st.one_of(st.none(), st.binary(max_size=150))),
        extra=draw(st.binary(max_size=80)),
        send_time=draw(st.floats(min_value=0, max_value=1e6,
                                 allow_nan=False)),
    )


def _decode_or_none(blob):
    """Totality harness: anything but WireDecodeError is a failure."""
    try:
        return packet_from_wire(blob)
    except WireDecodeError:
        return None


class TestRoundTrip:
    @given(packets())
    @settings(max_examples=200, deadline=None)
    def test_decode_encode_identity(self, packet):
        assert packet_from_wire(packet.to_wire()) == packet

    @given(packets())
    @settings(max_examples=200, deadline=None)
    def test_wire_is_canonical(self, packet):
        wire = packet.to_wire()
        assert packet_from_wire(wire).to_wire() == wire


class TestMutations:
    @given(packets(), st.data())
    @settings(max_examples=300, deadline=None)
    def test_byte_flips_decode_canonically_or_reject(self, packet, data):
        wire = bytearray(packet.to_wire())
        flips = data.draw(st.lists(
            st.tuples(st.integers(min_value=0, max_value=len(wire) - 1),
                      st.integers(min_value=1, max_value=255)),
            min_size=1, max_size=6))
        for offset, mask in flips:
            wire[offset] ^= mask
        mutated = bytes(wire)
        decoded = _decode_or_none(mutated)
        if decoded is not None:
            # Canonicality: a surviving decode IS the buffer it came
            # from — the mutation produced another valid encoding, it
            # did not alias into a different layout.
            assert decoded.to_wire() == mutated

    @given(packets(), st.data())
    @settings(max_examples=200, deadline=None)
    def test_truncation_always_rejected(self, packet, data):
        wire = packet.to_wire()
        cut = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
        assert _decode_or_none(wire[:cut]) is None

    @given(packets(), st.binary(min_size=1, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_extension_always_rejected(self, packet, tail):
        assert _decode_or_none(packet.to_wire() + tail) is None

    @given(packets(), packets(), st.data())
    @settings(max_examples=200, deadline=None)
    def test_splices_decode_canonically_or_reject(self, a, b, data):
        wa, wb = a.to_wire(), b.to_wire()
        cut_a = data.draw(st.integers(min_value=0, max_value=len(wa)))
        cut_b = data.draw(st.integers(min_value=0, max_value=len(wb)))
        spliced = wa[:cut_a] + wb[cut_b:]
        decoded = _decode_or_none(spliced)
        if decoded is not None:
            assert decoded.to_wire() == spliced


class TestGarbage:
    @given(st.binary(max_size=600))
    @settings(max_examples=400, deadline=None)
    def test_arbitrary_buffers_are_total(self, blob):
        decoded = _decode_or_none(blob)
        if decoded is not None:
            assert decoded.to_wire() == blob
