"""Property-based tests for the parallel engine's merge algebra.

Randomized dependence-graphs (forward-edge DAGs rooted at vertex 1)
exercise :meth:`McResult.merge` — it must be an exact, associative,
commutative fold of integer counts — plus the seed-tree/chunking
helpers the pool builds on.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.montecarlo import McResult, graph_monte_carlo
from repro.core.graph import DependenceGraph
from repro.exceptions import AnalysisError
from repro.parallel import (
    chunk_sizes,
    parallel_graph_monte_carlo,
    resolve_chunks,
    spawn_seed_tree,
)


@st.composite
def random_graphs(draw):
    """A random rooted DAG: chain backbone + random forward skip edges."""
    n = draw(st.integers(min_value=3, max_value=25))
    edges = [(j - 1, j) for j in range(2, n + 1)]
    extra = draw(st.lists(
        st.tuples(st.integers(min_value=1, max_value=n - 2),
                  st.integers(min_value=2, max_value=n)),
        max_size=12))
    for i, j in extra:
        if i + 1 < j and (i, j) not in edges:
            edges.append((i, j))
    return DependenceGraph.from_edges(n, 1, edges)


_loss = st.floats(min_value=0.0, max_value=0.6)
_seeds = st.integers(min_value=0, max_value=2**31)


class TestMergeAlgebra:
    @given(random_graphs(), _loss, _seeds, _seeds)
    @settings(max_examples=30, deadline=None)
    def test_commutative(self, graph, p, seed_a, seed_b):
        a = graph_monte_carlo(graph, p, trials=80, seed=seed_a)
        b = graph_monte_carlo(graph, p, trials=120, seed=seed_b)
        assert a.merge(b) == b.merge(a)

    @given(random_graphs(), _loss, _seeds)
    @settings(max_examples=30, deadline=None)
    def test_associative(self, graph, p, seed):
        shards = [
            graph_monte_carlo(graph, p, trials=60, seed=child)
            for child in spawn_seed_tree(seed, 3)
        ]
        left = shards[0].merge(shards[1]).merge(shards[2])
        right = shards[0].merge(shards[1].merge(shards[2]))
        assert left == right

    @given(random_graphs(), _loss, _seeds,
           st.lists(st.integers(min_value=20, max_value=150),
                    min_size=2, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_trials_and_counts_sum(self, graph, p, seed, shard_trials):
        shards = [
            graph_monte_carlo(graph, p, trials=trials, seed=child)
            for trials, child in zip(shard_trials,
                                     spawn_seed_tree(seed, len(shard_trials)))
        ]
        merged = McResult.merge_all(shards)
        assert merged.trials == sum(shard_trials)
        for vertex in merged.received_counts:
            assert merged.received_counts[vertex] == sum(
                shard.received_counts.get(vertex, 0) for shard in shards)
            assert merged.verified_counts[vertex] == sum(
                shard._verified(vertex) for shard in shards
                if vertex in shard.received_counts)
            assert merged.q[vertex] == (merged.verified_counts[vertex]
                                        / merged.received_counts[vertex])

    @given(random_graphs(), _loss, _seeds,
           st.integers(min_value=2, max_value=9))
    @settings(max_examples=30, deadline=None)
    def test_standard_error_shrinks_as_inverse_sqrt(self, graph, p, seed, k):
        """Merging k identical shards scales every SE by exactly 1/sqrt(k)."""
        shard = graph_monte_carlo(graph, p, trials=100, seed=seed)
        merged = McResult.merge_all([shard] * k)
        for vertex in shard.q:
            assert merged.standard_error(vertex) == pytest.approx(
                shard.standard_error(vertex) / math.sqrt(k))

    @given(random_graphs(), st.floats(min_value=0.1, max_value=0.5), _seeds)
    @settings(max_examples=15, deadline=None)
    def test_standard_error_shrinks_with_independent_shards(self, graph, p,
                                                           seed):
        """Independent shards: SE falls roughly like 1/sqrt(total trials)."""
        k = 4
        shards = [
            graph_monte_carlo(graph, p, trials=400, seed=child)
            for child in spawn_seed_tree(seed, k)
        ]
        merged = McResult.merge_all(shards)
        vertex = graph.n  # farthest from the signature: mid-range q
        assume(0.05 < merged.q.get(vertex, 1.0) < 0.95)
        single = shards[0].standard_error(vertex)
        assume(single > 0)
        assert merged.standard_error(vertex) < single / math.sqrt(k) * 1.6

    @given(random_graphs(), _loss, _seeds)
    @settings(max_examples=10, deadline=None)
    def test_parallel_estimator_is_a_merge(self, graph, p, seed):
        result = parallel_graph_monte_carlo(graph, p, trials=90, seed=seed,
                                            workers=1, chunks=3)
        shards = [
            graph_monte_carlo(graph, p, trials=30, seed=child)
            for child in spawn_seed_tree(seed, 3)
        ]
        assert result == McResult.merge_all(shards)

    def test_merge_nothing_rejected(self):
        with pytest.raises(AnalysisError):
            McResult.merge_all([])


class TestChunkHelpers:
    @given(st.integers(min_value=1, max_value=10_000),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=80, deadline=None)
    def test_chunk_sizes_partition(self, total, chunks):
        assume(chunks <= total)
        sizes = chunk_sizes(total, chunks)
        assert sum(sizes) == total
        assert len(sizes) == chunks
        assert all(size >= 1 for size in sizes)
        assert max(sizes) - min(sizes) <= 1

    @given(st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_default_chunk_policy(self, total):
        chunks = resolve_chunks(total)
        assert 1 <= chunks <= min(total, 16)

    @given(_seeds, st.integers(min_value=1, max_value=32))
    @settings(max_examples=50, deadline=None)
    def test_seed_tree_reproducible_and_distinct(self, seed, count):
        first = spawn_seed_tree(seed, count)
        second = spawn_seed_tree(seed, count)
        draws_first = [np.random.default_rng(s).random() for s in first]
        draws_second = [np.random.default_rng(s).random() for s in second]
        assert draws_first == draws_second
        assert len(set(draws_first)) == count  # streams are independent
