"""Property-based tests for the Eq. 9 recurrence and scheme analyses."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import augmented_chain as ac_analysis
from repro.analysis import emss as emss_analysis
from repro.analysis.montecarlo import (
    graph_monte_carlo,
    graph_monte_carlo_reference,
)
from repro.core.graph import DependenceGraph
from repro.core.recurrence import solve_recurrence
from repro.schemes.augmented_chain import AugmentedChainScheme
from repro.schemes.emss import EmssScheme

_loss = st.floats(min_value=0.0, max_value=1.0)
_moderate_loss = st.floats(min_value=0.0, max_value=0.9)
_offsets = st.lists(st.integers(min_value=1, max_value=12),
                    min_size=1, max_size=4, unique=True)


class TestRecurrenceProperties:
    @given(st.integers(min_value=1, max_value=120), _offsets, _loss)
    @settings(max_examples=120, deadline=None)
    def test_probabilities_in_unit_interval(self, n, offsets, p):
        result = solve_recurrence(n, offsets, p)
        assert all(0.0 <= q <= 1.0 for q in result.q)

    @given(st.integers(min_value=5, max_value=100), _offsets, _moderate_loss)
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_loss_rate(self, n, offsets, p):
        assume(p <= 0.88)
        lower = solve_recurrence(n, offsets, p + 0.02).q_min
        higher = solve_recurrence(n, offsets, p).q_min
        assert higher >= lower - 1e-12

    @given(st.integers(min_value=5, max_value=100), _offsets, _loss,
           st.integers(min_value=1, max_value=12))
    @settings(max_examples=80, deadline=None)
    def test_adding_an_offset_never_hurts(self, n, offsets, p, extra):
        assume(extra not in offsets)
        base = solve_recurrence(n, offsets, p).q
        richer = solve_recurrence(n, offsets + [extra], p).q
        assert all(b >= a - 1e-12 for a, b in zip(base, richer))

    @given(st.integers(min_value=5, max_value=80), _offsets, _loss)
    @settings(max_examples=60, deadline=None)
    def test_q_min_monotone_in_block_size(self, n, offsets, p):
        small = solve_recurrence(n, offsets, p).q_min
        large = solve_recurrence(n + 10, offsets, p).q_min
        assert large <= small + 1e-12

    @given(st.integers(min_value=2, max_value=80), _offsets)
    @settings(max_examples=40, deadline=None)
    def test_lossless_channel_gives_certainty(self, n, offsets):
        assert solve_recurrence(n, offsets, 0.0).q_min == 1.0


def _emss_graph(n):
    return EmssScheme(2, 1).build_graph(n)


def _ac_graph(n):
    return AugmentedChainScheme(3, 3).build_graph(n)


def _wong_lam_star(n):
    # Wong–Lam's dependence structure as a graph: every packet is
    # directly authenticated by P_sign (individual verifiability).
    return DependenceGraph.from_edges(n, 1, [(1, j) for j in range(2, n + 1)])


class TestVectorizedMonteCarloMatchesReference:
    """The ``np.logical_or.reduce`` column-gather rewrite of
    ``graph_monte_carlo`` must match the pre-rewrite predecessor-loop
    implementation (kept as a slow reference fixture) bit-for-bit:
    both consume identical RNG draws, so with the same seed every
    count — not just every estimate — is equal.
    """

    @given(st.integers(min_value=5, max_value=40),
           st.floats(min_value=0.0, max_value=0.9),
           st.integers(min_value=0, max_value=2**31),
           st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_emss_ac_star_graphs(self, n, p, seed, protect_root):
        for build in (_emss_graph, _ac_graph, _wong_lam_star):
            graph = build(n)
            fast = graph_monte_carlo(
                graph, p, trials=150, seed=seed,
                root_always_received=protect_root)
            reference = graph_monte_carlo_reference(
                graph, p, trials=150, seed=seed,
                root_always_received=protect_root)
            assert fast == reference


class TestEmssProperties:
    @given(st.integers(min_value=3, max_value=200),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=1, max_value=6),
           _moderate_loss)
    @settings(max_examples=80, deadline=None)
    def test_q_min_valid_probability(self, n, m, d, p):
        value = emss_analysis.q_min(n, m, d, p)
        assert 0.0 <= value <= 1.0

    @given(st.integers(min_value=10, max_value=200),
           st.floats(min_value=0.0, max_value=0.45))
    @settings(max_examples=60, deadline=None)
    def test_fixed_point_floor_holds(self, n, p):
        bound = emss_analysis.q_min_lower_bound_e21(p)
        assert emss_analysis.q_min(n, 2, 1, p) >= bound - 1e-9


class TestAcProperties:
    @given(st.integers(min_value=2, max_value=6),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=20, max_value=300),
           _moderate_loss)
    @settings(max_examples=80, deadline=None)
    def test_profile_values_valid(self, a, b, n, p):
        assume(n - 1 >= b + 1)
        profile = ac_analysis.q_profile(n, a, b, p)
        for value in profile.chain:
            assert 0.0 <= value <= 1.0
        for value in profile.inserted.values():
            assert 0.0 <= value <= 1.0

    @given(st.integers(min_value=2, max_value=5),
           st.integers(min_value=1, max_value=5),
           st.integers(min_value=30, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_lossless_certainty(self, a, b, n):
        assume(n - 1 >= b + 1)
        assert ac_analysis.q_min(n, a, b, 0.0) == 1.0

    @given(st.integers(min_value=2, max_value=5),
           st.integers(min_value=1, max_value=5),
           st.floats(min_value=0.0, max_value=0.85))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_loss(self, a, b, p):
        n = 20 * (b + 1) + 1
        low = ac_analysis.q_min(n, a, b, p + 0.05)
        high = ac_analysis.q_min(n, a, b, p)
        assert high >= low - 1e-12
