"""Property fuzz: multicast tree construction and path-loss semantics.

Invariants over randomly generated rooted graphs, redundancy degrees
and loss rates:

* every distribution tree spans all leaves, is acyclic, and is
  connected through the root (the union of root→leaf paths from one
  single-source Dijkstra run is a tree by construction);
* ``k``-redundant trees differ in at least one edge whenever the
  graph still connects root to every leaf with the first tree's edges
  removed (the used-edge penalty makes any fully fresh route cheaper
  than a single reused edge);
* a packet is delivered iff *some* tree's root→leaf path has every
  edge up at that slot, and suppressed-duplicate accounting matches
  the number of extra fully-up paths;
* on a single private edge, :class:`~repro.topology.linkloss.PathLoss`
  reproduces the independent :class:`~repro.network.loss.BernoulliLoss`
  stream bit-for-bit at the documented per-(edge, block) seed.
"""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.loss import BernoulliLoss
from repro.topology import (
    EdgeLossBank,
    PathLoss,
    Topology,
    build_tree,
    redundant_trees,
    union_paths,
)

ALGORITHMS = ("shortest-path", "steiner")


@st.composite
def topologies(draw):
    """A random connected rooted graph with a few optional cycles.

    Internal nodes form a random tree under the root; each leaf hangs
    off a random node; extra internal edges (when drawn) create the
    alternative routes redundant trees can exploit.
    """
    internal = draw(st.integers(min_value=0, max_value=4))
    leaf_count = draw(st.integers(min_value=1, max_value=6))
    nodes = ["root"] + [f"n{i}" for i in range(internal)]
    edges = []
    for i in range(1, len(nodes)):
        parent = nodes[draw(st.integers(min_value=0, max_value=i - 1))]
        edges.append((parent, nodes[i]))
    leaves = [f"l{j}" for j in range(leaf_count)]
    for leaf in leaves:
        parent = nodes[draw(st.integers(min_value=0,
                                        max_value=len(nodes) - 1))]
        edges.append((parent, leaf))
    seen = {frozenset(edge) for edge in edges}
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        a = draw(st.sampled_from(nodes))
        b = draw(st.sampled_from(nodes + leaves))
        if a != b and frozenset((a, b)) not in seen:
            seen.add(frozenset((a, b)))
            edges.append((a, b))
    graph = nx.Graph()
    graph.add_node("root")
    for index, (u, v) in enumerate(edges):
        weight = 1.0 + draw(st.integers(min_value=0, max_value=3)) * 0.25
        graph.add_edge(u, v, index=index, loss_scale=1.0, weight=weight)
    return Topology(graph, "root", leaves, name="fuzz")


def _tree_subgraph(topology, tree):
    sub = nx.Graph()
    sub.add_node(topology.root)
    for index in tree.edges:
        u, v, _scale = topology._index_table()[index]
        sub.add_edge(u, v)
    return sub


class TestTreeShape:
    @given(topology=topologies(), algorithm=st.sampled_from(ALGORITHMS))
    @settings(max_examples=120, deadline=None)
    def test_tree_spans_all_leaves_acyclic_root_connected(
            self, topology, algorithm):
        tree = build_tree(topology, algorithm)
        assert set(tree.paths) == set(topology.leaves)
        sub = _tree_subgraph(topology, tree)
        assert nx.is_connected(sub)
        assert nx.is_tree(sub)
        assert topology.root in sub
        for leaf in topology.leaves:
            assert leaf in sub
            path = tree.path(leaf)
            assert len(path) == len(set(path)), "path repeats an edge"
            # The path must actually walk root -> leaf through the graph.
            table = topology._index_table()
            node = topology.root
            for index in path:
                u, v, _scale = table[index]
                assert node in (u, v)
                node = v if node == u else u
            assert node == leaf

    @given(topology=topologies(), k=st.integers(min_value=2, max_value=3),
           algorithm=st.sampled_from(ALGORITHMS))
    @settings(max_examples=120, deadline=None)
    def test_redundant_trees_differ_when_graph_allows(
            self, topology, k, algorithm):
        trees = redundant_trees(topology, k, algorithm)
        assert len(trees) == k
        first = trees[0]
        stripped = topology.graph.copy()
        table = topology._index_table()
        stripped.remove_edges_from(
            (table[index][0], table[index][1]) for index in first.edges)
        fully_avoidable = all(
            stripped.has_node(leaf) and nx.has_path(stripped, topology.root,
                                                    leaf)
            for leaf in topology.leaves
            if topology.root in stripped
        ) and topology.root in stripped
        if fully_avoidable:
            assert trees[1].edges != first.edges, (
                "an entirely fresh route existed but tree 1 reused tree 0")


class TestDeliverySemantics:
    @given(topology=topologies(), k=st.integers(min_value=1, max_value=3),
           rate=st.floats(min_value=0.0, max_value=0.9),
           seed=st.integers(min_value=0, max_value=2 ** 20),
           slots=st.integers(min_value=1, max_value=24))
    @settings(max_examples=120, deadline=None)
    def test_delivered_iff_some_path_fully_up(self, topology, k, rate, seed,
                                              slots):
        trees = redundant_trees(topology, k)
        leaf = topology.leaves[0]
        paths = union_paths(trees, leaf)
        bank = EdgeLossBank(topology, seed)
        loss = PathLoss(bank, 0, paths, rate)
        lost = [loss.is_lost() for _ in range(slots)]
        # The bank caches every draw, so re-querying reconstructs the
        # exact per-edge fates the PathLoss consumed.
        expected_duplicates = 0
        for slot, was_lost in enumerate(lost):
            up_paths = sum(
                all(bank.up(edge, 0, rate, slot) for edge in path)
                for path in paths)
            assert was_lost == (up_paths == 0)
            expected_duplicates += max(0, up_paths - 1)
        assert loss.duplicates_suppressed == expected_duplicates

    @given(rate=st.floats(min_value=0.0, max_value=1.0),
           seed=st.integers(min_value=0, max_value=2 ** 20),
           block=st.integers(min_value=0, max_value=40),
           slots=st.integers(min_value=1, max_value=32))
    @settings(max_examples=120, deadline=None)
    def test_single_edge_path_matches_bernoulli_stream(self, rate, seed,
                                                       block, slots):
        from repro.topology import star_topology

        topology = star_topology(["r00", "r01"])
        bank = EdgeLossBank(topology, seed)
        edge = topology.edge_index("root", "r01")
        loss = PathLoss(bank, block, ((edge,),), rate)
        reference = BernoulliLoss(rate, seed=bank.edge_seed(edge, block))
        assert ([loss.is_lost() for _ in range(slots)]
                == [reference.is_lost() for _ in range(slots)])
