"""Property-based tests for the cryptographic substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import sha256
from repro.crypto.keychain import KeyChain, KeyChainCommitment
from repro.crypto.mac import Mac, Prf, hmac_sha256
from repro.crypto.merkle import MerkleTree
from repro.crypto.signatures import HmacStubSigner

_payloads = st.binary(min_size=0, max_size=200)
_keys = st.binary(min_size=1, max_size=64)


class TestHashProperties:
    @given(_payloads, _payloads)
    @settings(max_examples=100)
    def test_chain_equals_concat(self, a, b):
        assert sha256.chain([a, b]) == sha256.digest(a + b)

    @given(_payloads, st.integers(min_value=1, max_value=32))
    @settings(max_examples=100)
    def test_truncation_is_prefix(self, data, size):
        assert sha256.truncated(size).digest(data) == \
            sha256.digest(data)[:size]


class TestMacProperties:
    @given(_keys, _payloads)
    @settings(max_examples=100)
    def test_roundtrip(self, key, message):
        tag = hmac_sha256.tag(key, message)
        assert hmac_sha256.verify(key, message, tag)

    @given(_keys, _payloads, _payloads)
    @settings(max_examples=100)
    def test_distinct_messages_distinct_tags(self, key, m1, m2):
        if m1 == m2:
            return
        assert hmac_sha256.tag(key, m1) != hmac_sha256.tag(key, m2)

    @given(_keys, st.integers(min_value=1, max_value=32))
    @settings(max_examples=50)
    def test_prf_output_size(self, key, size):
        assert len(Prf(b"label", output_size=size).apply(key)) == size

    @given(_keys, st.integers(min_value=0, max_value=10),
           st.integers(min_value=0, max_value=10))
    @settings(max_examples=60)
    def test_prf_iteration_composes(self, key, a, b):
        prf = Prf(b"compose")
        assert prf.iterate(prf.iterate(key, a), b) == prf.iterate(key, a + b)


class TestMerkleProperties:
    @given(st.lists(_payloads, min_size=1, max_size=24))
    @settings(max_examples=50, deadline=None)
    def test_every_leaf_always_proves(self, leaves):
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            assert tree.verify(leaf, tree.proof(index), tree.root)

    @given(st.lists(_payloads, min_size=2, max_size=16, unique=True),
           st.data())
    @settings(max_examples=50, deadline=None)
    def test_wrong_leaf_never_proves(self, leaves, data):
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        other = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        if leaves[other] == leaves[index]:
            return
        assert not tree.verify(leaves[other], tree.proof(index), tree.root)


class TestKeyChainProperties:
    @given(st.binary(min_size=16, max_size=16),
           st.integers(min_value=1, max_value=40),
           st.data())
    @settings(max_examples=50, deadline=None)
    def test_any_later_key_authenticates(self, seed, length, data):
        chain = KeyChain(length, seed=seed)
        anchor = KeyChainCommitment(0, chain.commitment)
        index = data.draw(st.integers(min_value=1, max_value=length))
        assert anchor.authenticate(index, chain.key(index))

    @given(st.binary(min_size=16, max_size=16),
           st.integers(min_value=2, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_walk_back_consistent_everywhere(self, seed, length):
        chain = KeyChain(length, seed=seed)
        for steps in (1, length // 2, length):
            assert KeyChain.walk_back(chain.key(length), steps) == \
                chain.key(length - steps)


class TestSignerProperties:
    @given(_keys, _payloads)
    @settings(max_examples=100)
    def test_stub_signer_roundtrip(self, key, message):
        signer = HmacStubSigner(key=key)
        assert signer.verify(message, signer.sign(message))
        assert len(signer.sign(message)) == signer.signature_size
