"""Instrumentation neutrality: metrics must never change a result.

PR 1's determinism contract — ``parallel_graph_monte_carlo`` is
bit-for-bit identical at any worker count — must survive the
observability layer in every combination: metrics off (the null fast
path), metrics on (per-shard registries folded in task order), at 1, 2
and 4 workers.  The per-shard counter totals must also be exactly the
serial totals: nothing double-counted at fan-out, nothing dropped at
fold-in.
"""

import pytest

from repro.obs.registry import MetricsRegistry, use_registry
from repro.parallel import parallel_graph_monte_carlo, parallel_wire_monte_carlo
from repro.schemes.emss import EmssScheme
from repro.simulation.runner import WireTrialConfig

WORKER_COUNTS = (1, 2, 4)


def _graph():
    return EmssScheme(2, 1).build_graph(24)


def test_graph_mc_identical_with_metrics_on_or_off():
    graph = _graph()
    baseline = parallel_graph_monte_carlo(graph, 0.2, trials=4000, seed=42,
                                          workers=1)
    for workers in WORKER_COUNTS:
        plain = parallel_graph_monte_carlo(graph, 0.2, trials=4000, seed=42,
                                           workers=workers)
        with use_registry(MetricsRegistry()):
            instrumented = parallel_graph_monte_carlo(
                graph, 0.2, trials=4000, seed=42, workers=workers)
        assert plain == baseline, f"workers={workers}, metrics off"
        assert instrumented == baseline, f"workers={workers}, metrics on"


def test_graph_mc_counters_identical_across_worker_counts():
    """Shard counters must fold to the serial totals exactly."""
    graph = _graph()
    totals = {}
    for workers in WORKER_COUNTS:
        registry = MetricsRegistry()
        with use_registry(registry):
            parallel_graph_monte_carlo(graph, 0.2, trials=4000, seed=42,
                                       workers=workers)
        totals[workers] = dict(registry.counters)
    assert totals[1]["mc.graph.trials"] == 4000
    assert totals[2] == totals[1]
    assert totals[4] == totals[1]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_wire_mc_identical_with_metrics_on_or_off(workers):
    scheme = EmssScheme(2, 1)
    config = WireTrialConfig(block_size=8, blocks_per_trial=1, trials=12,
                             loss_rate=0.2, seed=9)
    baseline = parallel_wire_monte_carlo(scheme, config, workers=1)
    plain = parallel_wire_monte_carlo(scheme, config, workers=workers)
    with use_registry(MetricsRegistry()) as registry:
        instrumented = parallel_wire_monte_carlo(scheme, config,
                                                 workers=workers)
    assert plain == baseline
    assert instrumented == baseline
    assert registry.counter("wire.trials") == config.trials
    assert registry.counter("wire.packets_sent") == baseline.sent


def test_shard_timers_fold_in_call_counts():
    """Span timers collected inside workers surface in the parent."""
    registry = MetricsRegistry()
    with use_registry(registry):
        parallel_graph_monte_carlo(_graph(), 0.2, trials=2000, seed=1,
                                   workers=2)
    # one mc span per chunk, all folded back through shard snapshots
    assert (registry.timer_calls("mc.graph_monte_carlo")
            == registry.counter("mc.graph.runs"))
    assert registry.counter("pool.tasks") == registry.counter("mc.graph.runs")
