"""Unit tests for the fixed-grid timeseries sampler."""

import io
import json

import pytest

from repro.exceptions import AnalysisError
from repro.obs.timeseries import (
    CONTROLLER_ROW,
    TimeseriesSampler,
    validate_timeseries_file,
)


class TestTicks:
    def test_not_due_before_first_boundary(self):
        sampler = TimeseriesSampler(interval_s=0.1)
        assert not sampler.due(0.05)
        assert sampler.due(0.1)

    def test_record_stamps_quantized_tick_time(self):
        sampler = TimeseriesSampler(interval_s=0.1)
        assert sampler.record(0.137, [{"r": "r00", "gauge": 1}])
        (row,) = sampler.samples
        assert row["t"] == pytest.approx(0.1)
        assert row["gauge"] == 1

    def test_skips_when_not_due(self):
        sampler = TimeseriesSampler(interval_s=0.1)
        assert not sampler.record(0.05, [{"r": "r00"}])
        assert sampler.samples == []

    def test_block_spanning_multiple_intervals_uses_last_tick(self):
        sampler = TimeseriesSampler(interval_s=0.1)
        assert sampler.record(0.35, [{"r": "r00"}])
        assert sampler.samples[-1]["t"] == pytest.approx(0.3)
        # The next tick is the one after the crossed boundary.
        assert not sampler.due(0.39)
        assert sampler.due(0.4)

    def test_rows_require_receiver_id(self):
        sampler = TimeseriesSampler(interval_s=0.1)
        with pytest.raises(AnalysisError, match="'r'"):
            sampler.record(0.2, [{"gauge": 1}])

    def test_invalid_interval_rejected(self):
        with pytest.raises(AnalysisError):
            TimeseriesSampler(interval_s=0.0)


class TestOutput:
    def test_flush_appends_only_new_rows(self):
        stream = io.StringIO()
        sampler = TimeseriesSampler(interval_s=0.1, sink=stream)
        sampler.record(0.1, [{"r": "r00", "x": 1}])
        assert sampler.flush() == 1
        sampler.record(0.2, [{"r": "r00", "x": 2}])
        assert sampler.flush() == 1
        rows = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert [row["x"] for row in rows] == [1, 2]

    def test_context_manager_flushes_on_error(self):
        stream = io.StringIO()
        with pytest.raises(RuntimeError):
            with TimeseriesSampler(interval_s=0.1, sink=stream) as sampler:
                sampler.record(0.1, [{"r": "r00"}])
                raise RuntimeError("boom")
        assert len(stream.getvalue().splitlines()) == 1

    def test_last_gauges_keeps_latest_row_per_receiver(self):
        sampler = TimeseriesSampler(interval_s=0.1)
        sampler.record(0.1, [{"r": "r00", "x": 1},
                             {"r": CONTROLLER_ROW, "m": 2}])
        sampler.record(0.2, [{"r": "r00", "x": 5}])
        latest = sampler.last_gauges()
        assert latest["r00"]["x"] == 5
        assert latest[CONTROLLER_ROW]["m"] == 2


class TestValidation:
    def test_round_trip_validates(self, tmp_path):
        path = str(tmp_path / "ts.jsonl")
        with TimeseriesSampler(interval_s=0.1, sink=path) as sampler:
            sampler.record(0.1, [{"r": "r00", "x": 1},
                                 {"r": CONTROLLER_ROW, "scheme": "emss(1,2)"}])
            sampler.record(0.2, [{"r": "r00", "x": 2}])
        assert validate_timeseries_file(path) == 3

    def test_rejects_backwards_time(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        path.write_text(json.dumps({"t": 0.2, "r": "r00"}) + "\n"
                        + json.dumps({"t": 0.1, "r": "r00"}) + "\n")
        with pytest.raises(AnalysisError, match="backwards"):
            validate_timeseries_file(str(path))

    def test_rejects_non_numeric_gauge(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        path.write_text(json.dumps({"t": 0.1, "r": "r00",
                                    "bad": [1, 2]}) + "\n")
        with pytest.raises(AnalysisError, match="gauge"):
            validate_timeseries_file(str(path))
