"""Unit tests for the deterministic packet-lifecycle tracer."""

import io
import json

import pytest

from repro.exceptions import AnalysisError
from repro.obs.lifecycle import (
    LIFECYCLE_STAGES,
    NOISE_SEQ,
    NULL_LIFECYCLE,
    LifecycleTracer,
    get_lifecycle,
    lifecycle_sampled,
    lifecycle_trace_id,
    set_lifecycle,
    use_lifecycle,
    validate_lifecycle_file,
)


class TestTraceIds:
    def test_deterministic_across_instances(self):
        a = lifecycle_trace_id(7, "r00", 3, 41)
        b = lifecycle_trace_id(7, "r00", 3, 41)
        assert a == b
        assert len(a) == 16
        int(a, 16)  # pure hex

    def test_distinct_cells_get_distinct_ids(self):
        ids = {
            lifecycle_trace_id(seed, receiver, block, seq)
            for seed in (1, 2)
            for receiver in ("r00", "r01")
            for block in (0, 1)
            for seq in (1, 2)
        }
        assert len(ids) == 16

    def test_tracer_caches_and_matches_free_function(self):
        tracer = LifecycleTracer(run_seed=99)
        assert tracer.trace_id("r03", 2, 7) == lifecycle_trace_id(
            99, "r03", 2, 7)

    def test_sampling_is_by_trace_hash(self):
        trace = lifecycle_trace_id(5, "r00", 0, 1)
        assert lifecycle_sampled(trace, 1)
        assert lifecycle_sampled(trace, 4) == (int(trace, 16) % 4 == 0)


class TestRecording:
    def test_events_sorted_by_canonical_key(self):
        tracer = LifecycleTracer(run_seed=1)
        # Emitted out of order on purpose.
        tracer.record("r01", 0, 2, "verify", "lost", 0.5)
        tracer.record("r00", 1, 1, "sign", "signed", 0.0)
        tracer.record("r00", 0, 1, "transport", "deliver", 0.2)
        tracer.record("r00", 0, 1, "sign", "signed", 0.1)
        events = tracer.events()
        keys = [(e["b"], e["r"], e["seq"], e["t"]) for e in events]
        assert keys == sorted(keys)
        assert [e["stage"] for e in events[:2]] == ["sign", "transport"]

    def test_same_time_ties_break_by_stage_order(self):
        tracer = LifecycleTracer(run_seed=1)
        tracer.record("r00", 0, 1, "frame", "framed", 0.0)
        tracer.record("r00", 0, 1, "sign", "signed", 0.0)
        stages = [e["stage"] for e in tracer.events()]
        assert stages == ["sign", "frame"]

    def test_sampling_drops_whole_traces(self):
        sample = 3
        tracer = LifecycleTracer(run_seed=2, sample=sample)
        for seq in range(1, 40):
            tracer.record("r00", 0, seq, "sign", "signed", 0.0)
            tracer.record("r00", 0, seq, "verify", "lost", 1.0)
        kept_seqs = {e["seq"] for e in tracer.events()}
        for seq in range(1, 40):
            expected = lifecycle_sampled(tracer.trace_id("r00", 0, seq),
                                         sample)
            assert (seq in kept_seqs) == expected
        # Kept traces are complete: both events survive together.
        counts = {}
        for event in tracer.events():
            counts[event["seq"]] = counts.get(event["seq"], 0) + 1
        assert all(count == 2 for count in counts.values())
        assert tracer.events_dropped > 0

    def test_attrs_ride_along(self):
        tracer = LifecycleTracer(run_seed=3)
        tracer.record("r00", 0, 1, "transport", "deliver", 0.1,
                      kind="replayed")
        (event,) = tracer.events()
        assert event["kind"] == "replayed"

    def test_invalid_sample_rejected(self):
        with pytest.raises(AnalysisError):
            LifecycleTracer(run_seed=0, sample=0)


class TestFlushAndClose:
    def test_flush_writes_sorted_lines_and_clears(self):
        stream = io.StringIO()
        tracer = LifecycleTracer(run_seed=4, sink=stream)
        tracer.record("r00", 0, 2, "sign", "signed", 0.1)
        tracer.record("r00", 0, 1, "sign", "signed", 0.0)
        assert tracer.flush() == 2
        assert tracer.flush() == 0  # buffer cleared
        lines = [json.loads(line) for line in
                 stream.getvalue().splitlines()]
        assert [line["seq"] for line in lines] == [1, 2]

    def test_context_manager_flushes_on_error(self):
        stream = io.StringIO()
        with pytest.raises(RuntimeError):
            with LifecycleTracer(run_seed=5, sink=stream) as tracer:
                tracer.record("r00", 0, 1, "sign", "signed", 0.0)
                raise RuntimeError("boom")
        (line,) = stream.getvalue().splitlines()
        assert json.loads(line)["stage"] == "sign"

    def test_file_round_trip_validates(self, tmp_path):
        path = str(tmp_path / "lifecycle.jsonl")
        with LifecycleTracer(run_seed=6, sink=path) as tracer:
            tracer.record("r00", 0, 1, "sign", "signed", 0.0)
            tracer.record("r00", 0, NOISE_SEQ, "ingest", "undecodable", 0.2)
        assert validate_lifecycle_file(path) == 2


class TestCurrentTracer:
    def test_null_singleton_is_disabled_and_inert(self):
        assert get_lifecycle() is NULL_LIFECYCLE
        assert not NULL_LIFECYCLE.enabled
        NULL_LIFECYCLE.record("r00", 0, 1, "sign", "signed", 0.0)
        assert NULL_LIFECYCLE.events() == []

    def test_use_lifecycle_scopes_and_restores(self):
        tracer = LifecycleTracer(run_seed=7)
        with use_lifecycle(tracer) as current:
            assert current is tracer
            assert get_lifecycle() is tracer
        assert get_lifecycle() is NULL_LIFECYCLE

    def test_use_lifecycle_restores_on_error(self):
        tracer = LifecycleTracer(run_seed=8)
        with pytest.raises(ValueError):
            with use_lifecycle(tracer):
                raise ValueError("boom")
        assert get_lifecycle() is NULL_LIFECYCLE

    def test_set_lifecycle_none_restores_null(self):
        tracer = LifecycleTracer(run_seed=9)
        previous = set_lifecycle(tracer)
        try:
            assert get_lifecycle() is tracer
        finally:
            set_lifecycle(None)
        assert get_lifecycle() is NULL_LIFECYCLE
        assert previous is NULL_LIFECYCLE


class TestValidation:
    def _write(self, tmp_path, lines):
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def _event(self, **overrides):
        event = {"trace": "0" * 16, "r": "r00", "b": 0, "seq": 1,
                 "stage": "sign", "status": "signed", "t": 0.0}
        event.update(overrides)
        return json.dumps(event)

    def test_rejects_unknown_stage(self, tmp_path):
        path = self._write(tmp_path, [self._event(stage="teleport")])
        with pytest.raises(AnalysisError, match="unknown stage"):
            validate_lifecycle_file(path)

    def test_rejects_illegal_status_for_stage(self, tmp_path):
        path = self._write(tmp_path, [self._event(status="deliver")])
        with pytest.raises(AnalysisError, match="illegal"):
            validate_lifecycle_file(path)

    def test_rejects_malformed_trace_id(self, tmp_path):
        path = self._write(tmp_path, [self._event(trace="nope")])
        with pytest.raises(AnalysisError, match="trace id"):
            validate_lifecycle_file(path)

    def test_rejects_missing_field(self, tmp_path):
        event = json.loads(self._event())
        del event["status"]
        path = self._write(tmp_path, [json.dumps(event)])
        with pytest.raises(AnalysisError, match="missing field"):
            validate_lifecycle_file(path)

    def test_stage_tuple_is_canonical(self):
        assert LIFECYCLE_STAGES == ("sign", "frame", "enqueue",
                                    "transport", "ingest", "verify")
