"""Unit tests for the Chrome-trace and Prometheus exporters."""

import json

import pytest

from repro.exceptions import AnalysisError
from repro.obs.export import (
    chrome_trace_payload,
    prometheus_text,
    write_chrome_trace,
    write_prometheus,
)
from repro.obs.lifecycle import LifecycleTracer
from repro.obs.registry import MetricsRegistry


def _events():
    tracer = LifecycleTracer(run_seed=11)
    for seq in (1, 2):
        tracer.record("r00", 0, seq, "sign", "signed", 0.001 * seq)
        tracer.record("r00", 0, seq, "transport", "deliver", 0.002 * seq)
        tracer.record("r00", 0, seq, "verify", "verified", 0.01)
    tracer.record("r01", 0, 1, "sign", "signed", 0.0)
    tracer.record("r01", 0, 1, "verify", "lost", 0.01)
    return tracer.events()


class TestChromeTrace:
    def test_balanced_begin_end_pairs_per_trace(self):
        payload = chrome_trace_payload(_events())
        events = payload["traceEvents"]
        begins = [e for e in events if e["ph"] == "B"]
        ends = [e for e in events if e["ph"] == "E"]
        assert len(begins) == len(ends) == 3
        # Per (pid, tid) track the B/E counts match too.
        for begin in begins:
            track = (begin["pid"], begin["tid"])
            assert sum(1 for e in ends
                       if (e["pid"], e["tid"]) == track) >= 1

    def test_instants_carry_stage_and_status(self):
        payload = chrome_trace_payload(_events())
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert {"sign:signed", "transport:deliver", "verify:verified",
                "verify:lost"} <= {e["name"] for e in instants}

    def test_timestamps_scaled_to_microseconds(self):
        payload = chrome_trace_payload(_events())
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert any(e["ts"] == pytest.approx(1000.0) for e in instants)

    def test_receivers_map_to_sorted_pids_with_metadata(self):
        payload = chrome_trace_payload(_events())
        meta = {e["args"]["name"]: e["pid"]
                for e in payload["traceEvents"] if e["ph"] == "M"}
        assert meta == {"receiver r00": 1, "receiver r01": 2}

    def test_write_round_trips_as_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        count = write_chrome_trace(path, _events())
        payload = json.loads(open(path).read())
        assert len(payload["traceEvents"]) == count
        assert payload["displayTimeUnit"] == "ms"

    def test_deterministic_bytes(self, tmp_path):
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        write_chrome_trace(a, _events())
        write_chrome_trace(b, _events())
        assert open(a, "rb").read() == open(b, "rb").read()


class TestPrometheus:
    def _registry(self):
        registry = MetricsRegistry()
        registry.count("serve.packets.sent", 100)
        registry.observe("serve.queue_depth", 3.0, (1.0, 4.0, 16.0))
        registry.observe("serve.queue_depth", 20.0, (1.0, 4.0, 16.0))
        return registry

    def test_counters_and_histograms_render(self):
        text = prometheus_text(registry=self._registry())
        assert "# TYPE repro_serve_packets_sent_total counter" in text
        assert "repro_serve_packets_sent_total 100" in text
        assert 'repro_serve_queue_depth_bucket{le="4.0"} 1' in text
        assert 'repro_serve_queue_depth_bucket{le="+Inf"} 2' in text
        assert "repro_serve_queue_depth_count 2" in text

    def test_gauges_render_and_reject_non_numbers(self):
        text = prometheus_text(gauges={"serve_r00_buffered": 3})
        assert "# TYPE repro_serve_r00_buffered gauge" in text
        assert "repro_serve_r00_buffered 3" in text
        with pytest.raises(AnalysisError):
            prometheus_text(gauges={"bad": "nope"})

    def test_nothing_to_render_is_an_error(self):
        with pytest.raises(AnalysisError):
            prometheus_text()

    def test_names_sanitized_to_grammar(self):
        text = prometheus_text(gauges={"serve/r-00.x": 1})
        assert "repro_serve_r_00_x 1" in text

    def test_write_prometheus(self, tmp_path):
        path = str(tmp_path / "metrics.prom")
        write_prometheus(path, registry=self._registry())
        content = open(path).read()
        assert content.endswith("\n")
        assert "repro_serve_packets_sent_total" in content
