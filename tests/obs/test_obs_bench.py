"""Unit tests for the benchmark-report folding (bench-report subcommand)."""

import json
import os

import pytest

from repro.exceptions import AnalysisError
from repro.obs.bench import (
    build_bench_report,
    collect_benchmark_files,
    fold_benchmark_file,
    write_bench_report,
)

FAKE_BENCH = {
    "datetime": "2026-08-06T00:00:00",
    "machine_info": {"python_version": "3.11.0"},
    "benchmarks": [
        {
            "fullname": "benchmarks/test_mc.py::test_graph_mc",
            "stats": {"min": 0.01, "mean": 0.012, "stddev": 0.001,
                      "rounds": 25},
        }
    ],
}


def _write(path, payload):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def test_collect_walks_nested_layout(tmp_path):
    nested = tmp_path / "machine" / "0001_run.json"
    nested.parent.mkdir()
    _write(str(nested), FAKE_BENCH)
    _write(str(tmp_path / "loose.json"), FAKE_BENCH)
    (tmp_path / "notes.txt").write_text("ignored")
    found = collect_benchmark_files(str(tmp_path))
    assert len(found) == 2
    assert found == sorted(found)


def test_collect_missing_directory_is_an_error(tmp_path):
    with pytest.raises(AnalysisError, match="not found"):
        collect_benchmark_files(str(tmp_path / "nope"))


def test_fold_extracts_headline_stats(tmp_path):
    path = str(tmp_path / "bench.json")
    _write(path, FAKE_BENCH)
    folded = fold_benchmark_file(path)
    assert folded["python"] == "3.11.0"
    assert folded["benchmarks"] == [{
        "name": "benchmarks/test_mc.py::test_graph_mc",
        "min_s": 0.01, "mean_s": 0.012, "stddev_s": 0.001, "rounds": 25,
    }]


def test_fold_skips_unrelated_json(tmp_path):
    path = str(tmp_path / "other.json")
    _write(path, {"format": 1, "runs": []})
    assert fold_benchmark_file(path) is None


def test_fold_rejects_malformed_json(tmp_path):
    path = str(tmp_path / "broken.json")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("{not json")
    with pytest.raises(AnalysisError, match="malformed"):
        fold_benchmark_file(path)


def test_build_report_requires_benchmark_files(tmp_path):
    _write(str(tmp_path / "unrelated.json"), {"hello": 1})
    with pytest.raises(AnalysisError, match="no pytest-benchmark"):
        build_bench_report(str(tmp_path))


def test_write_bench_report(tmp_path):
    _write(str(tmp_path / "bench.json"), FAKE_BENCH)
    out = str(tmp_path / "BENCH_test.json")
    assert write_bench_report(str(tmp_path), out) == out
    with open(out, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    assert report["report_version"] == 1
    assert report["totals"] == {"files": 1, "benchmarks": 1}
    assert report["entries"][0]["benchmarks"][0]["rounds"] == 25


def test_write_bench_report_default_name(tmp_path, monkeypatch):
    _write(str(tmp_path / "bench.json"), FAKE_BENCH)
    monkeypatch.chdir(tmp_path)
    out = write_bench_report(str(tmp_path))
    assert os.path.basename(out).startswith("BENCH_")
    assert out.endswith(".json")
    assert os.path.exists(out)
