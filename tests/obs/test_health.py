"""Unit tests for the online health plane (``repro.obs.health``).

Pins the detector semantics one by one: the integer CUSUM fires at the
exact deficit crossing and re-arms, the drift detector is edge-
triggered on exact cross-multiplied integers, each soundness sentinel
promotes the right counter movement at the right severity, and the
alert file is canonical (sorted at flush, validated strictly).
"""

import json
from fractions import Fraction

import pytest

from repro.exceptions import AnalysisError
from repro.obs.health import (
    ALERT_DETECTORS,
    ALERT_SEVERITIES,
    DEFAULT_SLO_DEFICIT,
    AlertEvent,
    AlertSink,
    HealthMonitor,
    max_severity,
    parse_slo_spec,
    validate_alerts_file,
)


def _sentinels(monitor, block, **overrides):
    """Call observe_sentinels with all-zero defaults."""
    kwargs = dict(forged=0, undecodable=0, cap_evictions=0,
                  root_verifies=0, batch_signs=0, expected_delta=0)
    kwargs.update(overrides)
    return monitor.observe_sentinels(block, **kwargs)


class TestAlertEvent:
    def test_rejects_unknown_severity(self):
        with pytest.raises(AnalysisError):
            AlertEvent(block=0, detector="slo", kind="x", scope="_pool",
                       severity="fatal")

    def test_rejects_unknown_detector(self):
        with pytest.raises(AnalysisError):
            AlertEvent(block=0, detector="vibes", kind="x", scope="_pool",
                       severity="warning")

    def test_round_trips_to_dict(self):
        alert = AlertEvent(block=3, detector="drift", kind="off-lattice",
                           scope="_pool", severity="warning", t=0.5,
                           detail={"a": 1})
        record = alert.to_dict()
        assert record["block"] == 3
        assert record["detail"] == {"a": 1}
        assert json.dumps(record)  # JSON-ready

    def test_max_severity_orders_by_rank(self):
        mk = lambda sev: AlertEvent(block=0, detector="slo", kind="k",
                                    scope="s", severity=sev)
        assert max_severity([]) is None
        assert max_severity([mk("info"), mk("critical"),
                             mk("warning")]) == "critical"
        assert list(ALERT_SEVERITIES) == ["info", "warning", "critical"]
        assert set(ALERT_DETECTORS) == {"slo", "drift", "sentinel"}


class TestSloSpec:
    def test_parses_decimal_target_exactly(self):
        spec = parse_slo_spec("q:0.9")
        assert (spec.q_num, spec.q_den) == (9, 10)
        assert spec.deficit == DEFAULT_SLO_DEFICIT

    def test_parses_explicit_deficit(self):
        spec = parse_slo_spec("q:3/4:12")
        assert (spec.q_num, spec.q_den, spec.deficit) == (3, 4, 12)

    @pytest.mark.parametrize("bad", ["0.9", "p:0.9", "q:0", "q:1.5",
                                     "q:0.9:0", "q:0.9:x", "q:0.9:1:2"])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(AnalysisError):
            parse_slo_spec(bad)


class TestSloCusum:
    def test_no_alert_while_on_target(self):
        monitor = HealthMonitor(q_target="3/4", deficit=4)
        for block in range(10):
            assert monitor.observe_slo(block, "r:a", 8, 8) is None
        assert monitor.slo["r:a"].cusum == 0

    def test_fires_at_exact_deficit_crossing(self):
        # Target 3/4, deficit 4: all-lost blocks of 2 accumulate a
        # shortfall of 1.5 packets per block -> crossing at block 3
        # (cumulative 4.5 >= 4), not before.
        monitor = HealthMonitor(q_target="3/4", deficit=4)
        fired = [monitor.observe_slo(b, "r:a", 2, 0) for b in range(4)]
        assert [a is not None for a in fired] == [False, False, True, False]
        alert = fired[2]
        assert alert.kind == "slo-breach"
        assert alert.severity == "warning"
        assert alert.detail["deficit_packets"] == 4  # floor(4.5)
        assert alert.detail["target"] == "3/4"

    def test_rearms_after_breach(self):
        monitor = HealthMonitor(q_target="1/1", deficit=2)
        first = [monitor.observe_slo(b, "r:a", 1, 0) for b in range(2)]
        assert first[0] is None and first[1] is not None
        assert monitor.slo["r:a"].cusum == 0  # re-armed
        second = [monitor.observe_slo(b, "r:a", 1, 0) for b in range(2, 4)]
        assert second[0] is None and second[1] is not None
        assert monitor.slo["r:a"].breaches == 2

    def test_recovery_drains_the_statistic(self):
        monitor = HealthMonitor(q_target="1/2", deficit=10)
        monitor.observe_slo(0, "r:a", 4, 0)   # shortfall 2
        assert monitor.slo["r:a"].cusum > 0
        monitor.observe_slo(1, "r:a", 8, 8)   # surplus 4 > shortfall
        assert monitor.slo["r:a"].cusum == 0  # floored at zero

    def test_scopes_are_independent(self):
        monitor = HealthMonitor(q_target="1/1", deficit=1)
        assert monitor.observe_slo(0, "r:a", 1, 0) is not None
        assert monitor.observe_slo(0, "r:b", 1, 1) is None
        assert monitor.slo["r:b"].breaches == 0

    def test_peak_tracks_high_water_mark(self):
        monitor = HealthMonitor(q_target="1/1", deficit=100)
        monitor.observe_slo(0, "r:a", 5, 0)
        monitor.observe_slo(1, "r:a", 5, 5)
        assert monitor.slo["r:a"].peak == 5
        assert monitor.slo["r:a"].cusum == 5  # 1/1 target: no drain

    def test_rejects_inconsistent_counts(self):
        monitor = HealthMonitor()
        with pytest.raises(AnalysisError):
            monitor.observe_slo(0, "r:a", 2, 3)
        with pytest.raises(AnalysisError):
            monitor.observe_slo(0, "r:a", -1, 0)


class TestDrift:
    def test_disabled_without_envelope(self):
        monitor = HealthMonitor()
        assert monitor.observe_envelope(0, 10, 10) is None
        assert monitor.drift_blocks == 0

    def test_edge_triggered_with_rearm(self):
        monitor = HealthMonitor(envelope_top="1/2")
        assert monitor.observe_envelope(0, 1, 10) is None     # on-lattice
        first = monitor.observe_envelope(1, 6, 10)            # off: fires
        assert first is not None and first.kind == "off-lattice"
        assert monitor.observe_envelope(2, 7, 10) is None     # still off
        assert monitor.observe_envelope(3, 2, 10) is None     # back on
        second = monitor.observe_envelope(4, 9, 10)           # off again
        assert second is not None
        assert monitor.off_lattice_entries == 2
        assert monitor.off_lattice_blocks == 3

    def test_boundary_is_inclusive_on_lattice(self):
        # lost/fill == top exactly is *on* the lattice (strict >).
        monitor = HealthMonitor(envelope_top="1/2")
        assert monitor.observe_envelope(0, 5, 10) is None
        assert monitor.observe_envelope(1, 501, 1000) is not None

    def test_empty_window_is_skipped(self):
        monitor = HealthMonitor(envelope_top="1/2")
        assert monitor.observe_envelope(0, 0, 0) is None
        assert monitor.drift_blocks == 0

    def test_envelope_reconfiguration_must_agree(self):
        monitor = HealthMonitor(envelope_top="1/2")
        monitor.configure_envelope(Fraction(1, 2))  # same: no-op
        with pytest.raises(AnalysisError):
            monitor.configure_envelope("2/3")

    def test_envelope_bounds_validated(self):
        with pytest.raises(AnalysisError):
            HealthMonitor(envelope_top="0")
        with pytest.raises(AnalysisError):
            HealthMonitor(envelope_top="1")


class TestSentinels:
    def test_forged_is_critical(self):
        monitor = HealthMonitor()
        fired = _sentinels(monitor, 0, forged=1, expected_delta=8)
        assert [a.kind for a in fired] == ["forged-accepted"]
        assert fired[0].severity == "critical"
        assert monitor.worst_severity() == "critical"

    def test_deltas_not_absolutes_fire(self):
        monitor = HealthMonitor()
        assert _sentinels(monitor, 0, forged=2, expected_delta=8)
        # No movement since last call: no new alert.
        assert _sentinels(monitor, 1, forged=2, expected_delta=8) == []
        assert monitor.sentinel_totals["forged"] == 2

    def test_counters_must_be_cumulative(self):
        monitor = HealthMonitor()
        _sentinels(monitor, 0, forged=2, expected_delta=8)
        with pytest.raises(AnalysisError):
            _sentinels(monitor, 1, forged=1, expected_delta=8)

    def test_decode_spike_threshold(self):
        monitor = HealthMonitor(decode_spike="1/4")
        # 1 of 8 undecodable: below 1/4, quiet.
        assert _sentinels(monitor, 0, undecodable=1, expected_delta=8) == []
        # +2 of 8 == 1/4 exactly: fires (>= threshold).
        fired = _sentinels(monitor, 1, undecodable=3, expected_delta=8)
        assert [a.kind for a in fired] == ["decode-spike"]
        assert fired[0].detail == {"undecodable": 2, "expected": 8,
                                   "threshold": "1/4"}

    def test_buffer_eviction_and_root_cache_miss(self):
        monitor = HealthMonitor()
        fired = _sentinels(monitor, 0, cap_evictions=3, root_verifies=5,
                           batch_signs=2, expected_delta=8)
        assert sorted(a.kind for a in fired) == ["buffer-eviction",
                                                 "root-cache-miss"]
        assert all(a.severity == "warning" for a in fired)

    def test_root_verifies_within_signs_is_quiet(self):
        monitor = HealthMonitor()
        assert _sentinels(monitor, 0, root_verifies=2, batch_signs=2,
                          expected_delta=8) == []


class TestReadouts:
    def test_counts_and_gauges_track_alerts(self):
        monitor = HealthMonitor(q_target="1/1", deficit=1)
        monitor.observe_slo(0, "r:a", 4, 0)
        _sentinels(monitor, 0, forged=1, expected_delta=4)
        counts = monitor.counts()
        assert counts == {"info": 0, "warning": 1, "critical": 1}
        assert monitor.counts_by_kind() == {"forged-accepted": 1,
                                            "slo-breach": 1}
        gauges = monitor.gauges()
        assert gauges["alerts"] == 2
        assert gauges["alerts_critical"] == 1
        assert gauges["slo_breaches"] == 1

    def test_describe_is_manifest_ready_and_sorted(self):
        monitor = HealthMonitor(q_target="3/4", envelope_top="1/2")
        monitor.observe_slo(5, "r:b", 4, 0)
        monitor.observe_slo(1, "r:a", 4, 0)
        record = monitor.describe()
        json.dumps(record)  # JSON-ready throughout
        assert record["config"]["q_target"] == "3/4"
        assert record["config"]["envelope_top"] == "1/2"
        blocks = [a["block"] for a in record["alerts"]]
        assert blocks == sorted(blocks)
        assert list(record["slo"]) == ["r:a", "r:b"]


class TestAlertSink:
    def _alert(self, block, scope="r:a"):
        return AlertEvent(block=block, detector="slo", kind="slo-breach",
                          scope=scope, severity="warning", t=block * 0.1,
                          detail={"expected": 1, "verified": 0})

    def test_flush_sorts_whatever_order_appended(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        sink = AlertSink(str(path))
        for block in (5, 1, 3):
            sink.append(self._alert(block))
        sink.close()
        blocks = [json.loads(line)["block"]
                  for line in path.read_text().splitlines()]
        assert blocks == [1, 3, 5]
        assert sink.written == 3
        assert validate_alerts_file(str(path)) == 3

    def test_memory_only_sink_counts_writes(self):
        sink = AlertSink(None)
        sink.append(self._alert(1))
        assert sink.flush() == 1
        assert sink.written == 1

    def test_monitor_flush_forwards_to_sink(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        monitor = HealthMonitor(q_target="1/1", deficit=1,
                                sink=AlertSink(str(path)))
        monitor.observe_slo(0, "r:a", 2, 0)
        monitor.close()
        assert validate_alerts_file(str(path)) == 1


class TestValidateAlertsFile:
    def _write(self, path, records):
        path.write_text("".join(json.dumps(r, sort_keys=True) + "\n"
                                for r in records))

    def _record(self, block=0, **overrides):
        record = {"block": block, "detector": "slo", "kind": "slo-breach",
                  "scope": "r:a", "severity": "warning", "t": 0.0,
                  "detail": {}}
        record.update(overrides)
        return record

    def test_rejects_out_of_order(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        self._write(path, [self._record(block=2), self._record(block=1)])
        with pytest.raises(AnalysisError, match="canonical order"):
            validate_alerts_file(str(path))

    def test_rejects_missing_field(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        record = self._record()
        del record["scope"]
        self._write(path, [record])
        with pytest.raises(AnalysisError, match="scope"):
            validate_alerts_file(str(path))

    def test_rejects_unknown_detector_and_severity(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        self._write(path, [self._record(detector="vibes")])
        with pytest.raises(AnalysisError, match="detector"):
            validate_alerts_file(str(path))
        self._write(path, [self._record(severity="fatal")])
        with pytest.raises(AnalysisError, match="severity"):
            validate_alerts_file(str(path))

    def test_rejects_non_integer_block(self, tmp_path):
        path = tmp_path / "alerts.jsonl"
        self._write(path, [self._record(block=1.5)])
        with pytest.raises(AnalysisError, match="block"):
            validate_alerts_file(str(path))


class TestMerge:
    def test_config_mismatch_rejected(self):
        with pytest.raises(AnalysisError, match="configurations"):
            HealthMonitor(q_target="3/4").merge(HealthMonitor(q_target="1/2"))
        with pytest.raises(AnalysisError):
            HealthMonitor().merge(object())

    def test_disjoint_scopes_union_exactly(self):
        left = HealthMonitor(q_target="1/1", deficit=2)
        right = HealthMonitor(q_target="1/1", deficit=2)
        left.observe_slo(0, "r:a", 1, 0)
        right.observe_slo(1, "r:b", 1, 0)
        right.observe_slo(2, "r:b", 1, 0)  # breach
        merged = left.merge(right)
        assert merged.slo["r:a"].to_dict() == left.slo["r:a"].to_dict()
        assert merged.slo["r:b"].to_dict() == right.slo["r:b"].to_dict()
        assert len(merged.alerts) == 1

    def test_identity_is_fresh_same_config_monitor(self):
        monitor = HealthMonitor(q_target="3/4", deficit=4,
                                envelope_top="1/2")
        monitor.observe_slo(0, "r:a", 8, 0)
        monitor.observe_envelope(0, 6, 10)
        _sentinels(monitor, 0, forged=1, expected_delta=8)
        identity = HealthMonitor(q_target="3/4", deficit=4,
                                 envelope_top="1/2")
        merged = monitor.merge(identity)
        assert merged.describe() == monitor.describe()

    def test_merge_ignores_sink_and_keeps_registry_out(self):
        left = HealthMonitor(sink=AlertSink(None))
        right = HealthMonitor()
        assert left.merge(right).sink is None
