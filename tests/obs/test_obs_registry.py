"""Unit tests for the metrics registry and its exact merge algebra."""

import pickle

import pytest

from repro.exceptions import AnalysisError
from repro.obs.registry import (
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    metrics_enabled,
    set_registry,
    use_registry,
)


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        histogram = Histogram((1.0, 10.0))
        histogram.observe(1.0)     # first bucket (v <= 1.0)
        histogram.observe(1.0001)  # second bucket
        histogram.observe(10.0)    # second bucket
        histogram.observe(10.5)    # overflow
        assert histogram.counts == [1, 2]
        assert histogram.overflow == 1
        assert histogram.total == 4

    def test_rejects_empty_or_unsorted_bounds(self):
        with pytest.raises(AnalysisError, match="bucket bound"):
            Histogram(())
        with pytest.raises(AnalysisError, match="strictly increase"):
            Histogram((5.0, 5.0))

    def test_merge_requires_identical_bounds(self):
        with pytest.raises(AnalysisError, match="different bounds"):
            Histogram((1.0,)).merge(Histogram((2.0,)))

    def test_dict_round_trip(self):
        histogram = Histogram((1.0, 2.0), counts=[3, 4], overflow=5)
        assert Histogram.from_dict(histogram.as_dict()) == histogram


class TestMetricsRegistry:
    def test_counter_and_timer_readers(self):
        registry = MetricsRegistry()
        registry.count("events")
        registry.count("events", 4)
        registry.add_time("phase", 2_000_000_000, calls=2)
        assert registry.counter("events") == 5
        assert registry.counter("missing") == 0
        assert registry.timer_seconds("phase") == pytest.approx(2.0)
        assert registry.timer_calls("phase") == 2
        assert not registry.empty

    def test_merge_sums_every_family(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("n", 1)
        b.count("n", 2)
        a.add_time("t", 10)
        b.add_time("t", 20, calls=3)
        a.observe("h", 0.5, (1.0,))
        b.observe("h", 2.0, (1.0,))
        merged = a.merge(b)
        assert merged.counter("n") == 3
        assert merged.timers["t"] == (30, 4)
        assert merged.histograms["h"].counts == [1]
        assert merged.histograms["h"].overflow == 1
        # inputs untouched
        assert a.counter("n") == 1 and b.counter("n") == 2

    def test_merge_rejects_non_registry(self):
        with pytest.raises(AnalysisError, match="cannot merge"):
            MetricsRegistry().merge({"counters": {}})

    def test_merge_snapshot_in_place_equals_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("n", 7)
        b.count("n", 5)
        b.add_time("t", 100)
        b.observe("h", 3.0, (1.0, 5.0))
        expected = a.merge(b)
        a.merge_snapshot(b.snapshot())
        assert a == expected

    def test_snapshot_is_picklable_and_versioned(self):
        registry = MetricsRegistry()
        registry.count("n")
        snapshot = pickle.loads(pickle.dumps(registry.snapshot()))
        assert MetricsRegistry.from_snapshot(snapshot) == registry
        with pytest.raises(AnalysisError, match="snapshot version"):
            MetricsRegistry.from_snapshot({"version": 99})

    def test_merge_all_of_nothing_is_empty(self):
        assert MetricsRegistry.merge_all([]).empty


class TestNullRegistryAndInstallation:
    def test_null_registry_is_default_and_inert(self):
        assert get_registry() is NULL_REGISTRY
        assert not metrics_enabled()
        NULL_REGISTRY.count("n", 5)
        NULL_REGISTRY.add_time("t", 123)
        NULL_REGISTRY.observe("h", 1.0, (1.0,))
        NULL_REGISTRY.merge_snapshot({"version": 1, "counters": {"n": 1}})
        assert NULL_REGISTRY.empty
        assert isinstance(NULL_REGISTRY, NullRegistry)
        assert not NULL_REGISTRY.enabled

    def test_set_registry_returns_previous(self):
        live = MetricsRegistry()
        previous = set_registry(live)
        try:
            assert previous is NULL_REGISTRY
            assert get_registry() is live
            assert metrics_enabled()
        finally:
            set_registry(None)
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_scopes_and_restores(self):
        live = MetricsRegistry()
        with use_registry(live) as current:
            assert current is live
            get_registry().count("inside")
        assert get_registry() is NULL_REGISTRY
        assert live.counter("inside") == 1

    def test_use_registry_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_registry(MetricsRegistry()):
                raise RuntimeError("boom")
        assert get_registry() is NULL_REGISTRY
