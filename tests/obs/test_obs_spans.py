"""Unit tests for span timing, trace records and the profile report."""

import io
import json

from repro.obs.registry import MetricsRegistry, set_registry
from repro.obs.sinks import TraceSink
from repro.obs.spans import (
    _NULL_SPAN,
    get_trace_sink,
    profile_report,
    set_trace_sink,
    span,
)


def test_disabled_span_is_the_shared_null_object():
    assert span("anything") is _NULL_SPAN
    assert span("anything else") is _NULL_SPAN
    with span("noop"):
        pass  # must be harmless


def test_span_times_into_current_registry():
    registry = MetricsRegistry()
    set_registry(registry)
    try:
        with span("phase.one"):
            pass
        with span("phase.one"):
            pass
    finally:
        set_registry(None)
    assert registry.timer_calls("phase.one") == 2
    total_ns, _ = registry.timers["phase.one"]
    assert total_ns >= 0


def test_nested_spans_record_depth_in_trace():
    buffer = io.StringIO()
    sink = TraceSink(buffer)
    assert set_trace_sink(sink) is None
    try:
        assert get_trace_sink() is sink
        with span("outer"):
            with span("inner"):
                pass
    finally:
        set_trace_sink(None)
    records = [json.loads(line) for line in buffer.getvalue().splitlines()]
    assert [(r["event"], r["span"], r["depth"]) for r in records] == [
        ("begin", "outer", 0),
        ("begin", "inner", 1),
        ("end", "inner", 1),
        ("end", "outer", 0),
    ]
    assert all(r["t_ns"] <= s["t_ns"] for r, s in zip(records, records[1:]))


def test_sink_alone_activates_spans():
    """--trace-out without --metrics-out must still record spans."""
    buffer = io.StringIO()
    set_trace_sink(TraceSink(buffer))
    try:
        with span("traced"):
            pass
    finally:
        set_trace_sink(None)
    events = [json.loads(line)["event"]
              for line in buffer.getvalue().splitlines()]
    assert events == ["begin", "end"]


def test_profile_report_orders_by_cumulative_time():
    registry = MetricsRegistry()
    registry.add_time("slow", 3_000_000_000, calls=3)
    registry.add_time("fast", 1_000_000, calls=1)
    report = profile_report(registry)
    lines = report.splitlines()
    assert "span" in lines[0] and "total" in lines[0]
    assert lines[2].startswith("slow")
    assert lines[3].startswith("fast")


def test_profile_report_truncates_to_top_n():
    registry = MetricsRegistry()
    for index in range(10):
        registry.add_time(f"span{index}", (index + 1) * 1000)
    report = profile_report(registry, top=3)
    assert len(report.splitlines()) == 2 + 3
    assert "span9" in report and "span0" not in report


def test_profile_report_empty_registry():
    assert profile_report(MetricsRegistry()) == "(no spans recorded)"
