"""Unit tests for run manifests, sinks and schema validation."""

import io
import json

import pytest

from repro.exceptions import AnalysisError
from repro.obs.manifest import (
    MANIFEST_VERSION,
    RunManifest,
    git_sha,
    validate_manifest_payload,
    validate_metrics_file,
    validate_metrics_payload,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.sinks import TraceSink, write_json_file


def _finished_manifest():
    registry = MetricsRegistry()
    registry.count("mc.graph.trials", 5000)
    registry.count("pool.tasks", 16)
    registry.count("wire.packets_sent", 480)  # not a trial counter
    clock = RunManifest.start("experiment", "fig9",
                              parameters={"fast": True}, seed_root=7,
                              workers=4)
    return clock.finish(registry)


def test_start_finish_lifts_trial_counters():
    manifest = _finished_manifest()
    assert manifest.trial_counts == {"mc.graph.trials": 5000,
                                     "pool.tasks": 16}
    assert manifest.wall_time_s >= 0.0
    assert manifest.cpu_time_s >= 0.0
    assert manifest.started_at  # ISO timestamp stamped at start
    assert manifest.manifest_version == MANIFEST_VERSION


def test_manifest_round_trips_through_dict():
    manifest = _finished_manifest()
    rebuilt = RunManifest.from_dict(manifest.to_dict())
    assert rebuilt.to_dict() == manifest.to_dict()


def test_git_sha_inside_repo():
    sha = git_sha()
    # tests run inside the repo checkout, so a short SHA is expected
    assert sha is None or (len(sha) >= 7 and all(
        c in "0123456789abcdef" for c in sha))


def test_validate_rejects_missing_and_mistyped_fields():
    payload = _finished_manifest().to_dict()
    broken = dict(payload)
    del broken["workers"]
    with pytest.raises(AnalysisError, match="missing required field"):
        validate_manifest_payload(broken)

    broken = dict(payload)
    broken["workers"] = True  # bool must not pass as int
    with pytest.raises(AnalysisError, match="workers"):
        validate_manifest_payload(broken)

    broken = dict(payload)
    broken["manifest_version"] = 99
    with pytest.raises(AnalysisError, match="version"):
        validate_manifest_payload(broken)

    broken = dict(payload)
    broken["trial_counts"] = {"x": "many"}
    with pytest.raises(AnalysisError, match="trial_counts"):
        validate_manifest_payload(broken)


def test_validate_metrics_payload_counts_runs():
    manifest = _finished_manifest()
    registry = MetricsRegistry()
    registry.count("n")
    payload = {"format": 1, "runs": [
        {"manifest": manifest.to_dict(), "metrics": registry.snapshot()},
        {"manifest": manifest.to_dict(), "metrics": None},
    ]}
    assert validate_metrics_payload(payload) == 2


def test_validate_metrics_payload_rejects_bad_shapes():
    with pytest.raises(AnalysisError, match="JSON object"):
        validate_metrics_payload([])
    with pytest.raises(AnalysisError, match="format"):
        validate_metrics_payload({"format": 2, "runs": [{}]})
    with pytest.raises(AnalysisError, match="non-empty"):
        validate_metrics_payload({"format": 1, "runs": []})
    with pytest.raises(AnalysisError, match="missing required field"):
        validate_metrics_payload({"format": 1, "runs": [{"manifest": {}}]})


def test_validate_metrics_file(tmp_path):
    manifest = _finished_manifest()
    path = str(tmp_path / "metrics.json")
    write_json_file(path, {"format": 1,
                           "runs": [{"manifest": manifest.to_dict(),
                                     "metrics": None}]})
    assert validate_metrics_file(path) == 1


def test_trace_sink_owns_path_handles_only(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    with TraceSink(path) as sink:
        sink.write({"event": "begin", "span": "s"})
        sink.write({"event": "end", "span": "s"})
        assert sink.records_written == 2
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    assert [json.loads(line)["event"] for line in lines] == ["begin", "end"]

    buffer = io.StringIO()
    sink = TraceSink(buffer)
    sink.write({"k": 1})
    sink.close()  # borrowed stream stays open
    assert not buffer.closed
    assert json.loads(buffer.getvalue()) == {"k": 1}
