"""Crash-safety of the trace sinks and instrumented serve runs.

The satellite invariant: an instrumented run that dies mid-stream must
still leave parseable JSON-lines artifacts behind — never a torn line,
never silently dropped buffered events.
"""

import io
import json

import pytest

from repro.obs.lifecycle import LifecycleTracer
from repro.obs.sinks import TraceSink
from repro.obs.timeseries import TimeseriesSampler
from repro.serve.service import ServeConfig, run_live_session


class TestTraceSinkBuffering:
    def test_unbuffered_writes_hit_the_handle_immediately(self):
        stream = io.StringIO()
        sink = TraceSink(stream)
        sink.write({"a": 1})
        assert stream.getvalue() == '{"a": 1}\n'
        assert sink.flush() == 0  # nothing pending

    def test_buffered_writes_wait_for_flush(self):
        stream = io.StringIO()
        sink = TraceSink(stream, buffered=True)
        sink.write({"a": 1})
        sink.write({"b": 2})
        assert stream.getvalue() == ""
        assert sink.flush() == 2
        assert [json.loads(line) for line in
                stream.getvalue().splitlines()] == [{"a": 1}, {"b": 2}]

    def test_close_flushes_buffered_records(self):
        stream = io.StringIO()
        sink = TraceSink(stream, buffered=True)
        sink.write({"a": 1})
        sink.close()
        assert stream.getvalue() == '{"a": 1}\n'
        sink.close()  # idempotent

    def test_context_manager_flushes_on_exception(self):
        stream = io.StringIO()
        with pytest.raises(RuntimeError):
            with TraceSink(stream, buffered=True) as sink:
                sink.write({"a": 1})
                raise RuntimeError("boom")
        assert stream.getvalue() == '{"a": 1}\n'

    def test_owned_file_closed_borrowed_stream_left_open(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = TraceSink(path)
        sink.write({"a": 1})
        sink.close()
        assert json.loads(open(path).read()) == {"a": 1}
        stream = io.StringIO()
        TraceSink(stream).close()
        stream.write("still open")  # would raise on a closed stream


class _Boom(Exception):
    pass


class _CrashingSigner:
    """A signer that explodes on the Nth block signature.

    Crashing the *sender* keeps the failure in the session's main
    coroutine (a dead receiver task would just stall the barrier),
    which is the realistic mid-run abort: some blocks fully traced,
    the current one cut off.
    """

    def __init__(self, inner, after):
        self._inner = inner
        self._after = after
        self._calls = 0

    @property
    def name(self):
        return self._inner.name

    @property
    def signature_size(self):
        return self._inner.signature_size

    def sign(self, data):
        self._calls += 1
        if self._calls > self._after:
            raise _Boom("signer died mid-run")
        return self._inner.sign(data)

    def verify(self, data, signature):
        return self._inner.verify(data, signature)


class TestCrashedRunLeavesParseableArtifacts:
    def test_crashing_session_still_yields_valid_json_lines(self, tmp_path):
        from repro.serve.service import default_serve_signer

        lifecycle_path = str(tmp_path / "lifecycle.jsonl")
        timeseries_path = str(tmp_path / "timeseries.jsonl")
        config = ServeConfig(receivers=2, blocks=6, block_size=8, seed=13)
        signer = _CrashingSigner(default_serve_signer(config.seed), after=3)
        tracer = LifecycleTracer(config.seed, sink=lifecycle_path)
        sampler = TimeseriesSampler(interval_s=0.001, sink=timeseries_path)
        with pytest.raises(_Boom):
            with tracer, sampler:
                run_live_session(config, signer=signer, lifecycle=tracer,
                                 timeseries=sampler)
        # Every line of both artifacts parses; the story up to the
        # crash survived.
        lifecycle_lines = open(lifecycle_path).read().splitlines()
        assert lifecycle_lines, "crash dropped all lifecycle events"
        for line in lifecycle_lines:
            event = json.loads(line)
            assert {"trace", "r", "b", "seq", "stage", "status",
                    "t"} <= set(event)
        for line in open(timeseries_path).read().splitlines():
            row = json.loads(line)
            assert "r" in row and "t" in row
