"""Unit tests for the bench-report diff and its CLI gate."""

import json

import pytest

from repro.cli import main as cli_main
from repro.exceptions import AnalysisError
from repro.obs.bench import (
    DEFAULT_REGRESSION_THRESHOLD,
    diff_bench_reports,
    index_bench_report,
    load_bench_report,
)


def _report(benchmarks):
    return {
        "report_version": 1,
        "generated_at": "2026-01-01T00:00:00+00:00",
        "git_sha": None,
        "totals": {"files": 1, "benchmarks": len(benchmarks)},
        "entries": [{
            "source": "bench.json",
            "datetime": None,
            "python": "3.x",
            "benchmarks": [
                {"name": name, "min_s": value, "mean_s": value * 1.1,
                 "stddev_s": 0.0, "rounds": 5}
                for name, value in benchmarks.items()
            ],
        }],
    }


class TestIndex:
    def test_indexes_by_name_on_min(self):
        indexed = index_bench_report(_report({"a": 1.0, "b": 2.0}))
        assert indexed == {"a": 1.0, "b": 2.0}

    def test_repeated_names_keep_best_reading(self):
        report = _report({"a": 2.0})
        report["entries"].append(
            _report({"a": 1.5})["entries"][0])
        assert index_bench_report(report) == {"a": 1.5}

    def test_unknown_metric_rejected(self):
        with pytest.raises(AnalysisError):
            index_bench_report(_report({"a": 1.0}), metric="max_s")


class TestDiff:
    def test_regression_flagged_beyond_threshold(self):
        diff = diff_bench_reports(_report({"a": 1.0}),
                                  _report({"a": 1.5}), threshold=0.2)
        assert [row["name"] for row in diff["regressions"]] == ["a"]
        assert diff["regressions"][0]["ratio"] == pytest.approx(1.5)

    def test_within_threshold_passes(self):
        diff = diff_bench_reports(_report({"a": 1.0}),
                                  _report({"a": 1.15}), threshold=0.2)
        assert diff["regressions"] == []
        assert diff["improvements"] == []
        assert len(diff["compared"]) == 1

    def test_improvement_flagged_symmetrically(self):
        diff = diff_bench_reports(_report({"a": 1.0}),
                                  _report({"a": 0.5}), threshold=0.2)
        assert [row["name"] for row in diff["improvements"]] == ["a"]

    def test_missing_and_added_reported(self):
        diff = diff_bench_reports(_report({"a": 1.0, "gone": 1.0}),
                                  _report({"a": 1.0, "new": 1.0}))
        assert diff["missing"] == ["gone"]
        assert diff["added"] == ["new"]

    def test_default_threshold_is_twenty_percent(self):
        assert DEFAULT_REGRESSION_THRESHOLD == pytest.approx(0.2)

    def test_negative_threshold_rejected(self):
        with pytest.raises(AnalysisError):
            diff_bench_reports(_report({}), _report({}), threshold=-0.1)


class TestLoad:
    def test_load_round_trip(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(_report({"a": 1.0})))
        assert index_bench_report(load_bench_report(str(path))) == {"a": 1.0}

    def test_load_rejects_non_report(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(AnalysisError):
            load_bench_report(str(path))

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(AnalysisError):
            load_bench_report(str(tmp_path / "nope.json"))


class TestCli:
    def _write(self, tmp_path, name, benchmarks):
        path = tmp_path / name
        path.write_text(json.dumps(_report(benchmarks)))
        return str(path)

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", {"a": 1.0})
        cur = self._write(tmp_path, "cur.json", {"a": 1.05})
        assert cli_main(["bench-diff", base, cur]) == 0
        assert "no regressions" in capsys.readouterr().err

    def test_exit_one_on_regression(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", {"a": 1.0})
        cur = self._write(tmp_path, "cur.json", {"a": 2.0})
        assert cli_main(["bench-diff", base, cur]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.err
        assert "x2.00" in captured.out

    def test_threshold_flag_loosens_gate(self, tmp_path):
        base = self._write(tmp_path, "base.json", {"a": 1.0})
        cur = self._write(tmp_path, "cur.json", {"a": 2.0})
        assert cli_main(["bench-diff", base, cur, "--threshold", "1.5"]) == 0

    def test_exit_two_on_bad_input(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        base = self._write(tmp_path, "base.json", {"a": 1.0})
        assert cli_main(["bench-diff", base, str(bad)]) == 2
        assert "bench-report" in capsys.readouterr().err

    def test_json_output(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", {"a": 1.0})
        cur = self._write(tmp_path, "cur.json", {"a": 1.0})
        assert cli_main(["bench-diff", base, cur, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metric"] == "min_s"
        assert len(payload["compared"]) == 1

    def test_mean_metric_selectable(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", {"a": 1.0})
        cur = self._write(tmp_path, "cur.json", {"a": 1.0})
        assert cli_main(["bench-diff", base, cur, "--metric", "mean",
                         "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["metric"] == "mean_s"

    def test_missing_tolerated_by_default(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", {"a": 1.0, "gone": 1.0})
        cur = self._write(tmp_path, "cur.json", {"a": 1.0})
        assert cli_main(["bench-diff", base, cur]) == 0
        assert "missing from current: gone" in capsys.readouterr().out

    def test_fail_on_missing_gates(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", {"a": 1.0, "gone": 1.0})
        cur = self._write(tmp_path, "cur.json", {"a": 1.0})
        assert cli_main(["bench-diff", base, cur,
                         "--fail-on-missing"]) == 1
        err = capsys.readouterr().err
        assert "missing from current report" in err
        assert "gone" in err

    def test_fail_on_missing_passes_when_complete(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", {"a": 1.0})
        cur = self._write(tmp_path, "cur.json", {"a": 1.0, "new": 1.0})
        assert cli_main(["bench-diff", base, cur,
                         "--fail-on-missing"]) == 0
        assert "no regressions" in capsys.readouterr().err

    def test_fail_on_missing_combines_with_regression(self, tmp_path,
                                                      capsys):
        base = self._write(tmp_path, "base.json", {"a": 1.0, "gone": 1.0})
        cur = self._write(tmp_path, "cur.json", {"a": 9.0})
        assert cli_main(["bench-diff", base, cur,
                         "--fail-on-missing"]) == 1
        err = capsys.readouterr().err
        assert "regressed" in err and "missing" in err
