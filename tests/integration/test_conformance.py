"""Cross-scheme conformance: wire-level simulation vs analytic models.

For every scheme in :mod:`repro.schemes.registry` the byte-level wire
simulation must reproduce the analytic per-position ``q_i`` profile
within 3 binomial standard errors at two loss rates.  The suite is
parametrized over :func:`available_schemes`, so registering a new
scheme automatically adds it here — and fails loudly (via
:func:`default_scheme` / :func:`analytic_q_profile` raising
:class:`AnalysisError`) until a conformance case exists for it.

The oracle per scheme is the *exact* analytic model (closed forms
where exact, the transfer-matrix evaluation for offset schemes, exact
loss-pattern enumeration for other graphs).  The paper's Eq. 9/10
recurrences approximate those exact profiles under a path-independence
assumption; they are checked separately for the relationship they
actually satisfy — optimistic upper bound everywhere, tight near the
signature (see ``test_recurrence_upper_bounds_exact_model``).
"""

import pytest

from repro.analysis.conformance import (
    DEFAULT_SPECS,
    analytic_q_profile,
    conformance_deviations,
    default_scheme,
    recurrence_q_profile,
)
from repro.exceptions import AnalysisError
from repro.schemes.base import Scheme
from repro.schemes.registry import available_schemes

BLOCK = 12
TRIALS = 200
SEED = 7
LOSS_RATES = (0.1, 0.25)
MAX_DEVIATION_SE = 3.0

SCHEME_NAMES = sorted(available_schemes())


@pytest.mark.parametrize("name", SCHEME_NAMES)
def test_every_registered_scheme_has_a_conformance_case(name):
    """Registry and conformance table must stay in lockstep."""
    assert name in DEFAULT_SPECS, (
        f"scheme {name!r} is registered but has no entry in "
        f"repro.analysis.conformance.DEFAULT_SPECS")
    scheme = default_scheme(name)
    profile = analytic_q_profile(scheme, BLOCK, 0.2)
    assert set(profile) == set(range(1, BLOCK + 1))
    assert all(0.0 <= q <= 1.0 for q in profile.values())


@pytest.mark.parametrize("p", LOSS_RATES)
@pytest.mark.parametrize("name", SCHEME_NAMES)
def test_wire_q_matches_analytic_model(name, p):
    """Wire-level ``q_i`` within 3 SE of the analytic profile."""
    scheme = default_scheme(name)
    rows = conformance_deviations(scheme, BLOCK, p, TRIALS, seed=SEED)
    worst = max(rows, key=lambda row: row["deviation_se"])
    assert worst["deviation_se"] <= MAX_DEVIATION_SE, (
        f"{scheme.name} at p={p}: wire q={worst['wire_q']:.4f} vs "
        f"model q={worst['model_q']:.4f} at send position "
        f"{worst['position']} deviates {worst['deviation_se']:.2f} SE "
        f"(> {MAX_DEVIATION_SE}) over {worst['received']} receipts")


@pytest.mark.parametrize("p", LOSS_RATES)
@pytest.mark.parametrize("name", SCHEME_NAMES)
def test_recurrence_upper_bounds_exact_model(name, p):
    """Eq. 9/10 must upper-bound the exact profile, tightly near the root.

    The recurrences assume path-failure independence; path-death
    events are positively correlated, so the approximation can only
    err optimistically.  Within ``max(offsets)`` of the signature no
    two dependence paths share a vertex yet, so there the recurrence
    must be exact.
    """
    scheme = default_scheme(name)
    recurrence = recurrence_q_profile(scheme, BLOCK, p)
    if recurrence is None:
        pytest.skip(f"{scheme.name}: conformance model is already exact")
    exact = analytic_q_profile(scheme, BLOCK, p)
    for position in exact:
        assert recurrence[position] >= exact[position] - 1e-9, (
            f"{scheme.name} at p={p}: recurrence "
            f"{recurrence[position]:.6f} below exact "
            f"{exact[position]:.6f} at send position {position}")
    offsets = getattr(scheme, "offsets", None)
    if offsets:
        tight = range(BLOCK - max(offsets), BLOCK + 1)
    else:  # augmented chain: only the signature packet is trivially tight
        tight = (BLOCK,)
    for position in tight:
        assert recurrence[position] == pytest.approx(exact[position],
                                                     abs=1e-12), (
            f"{scheme.name} at p={p}: recurrence diverges from the "
            f"exact model at near-signature position {position}")


class _UnmodeledScheme(Scheme):
    """A scheme registered without any conformance/analytic coverage."""

    @property
    def name(self):
        return "unmodeled"

    def build_graph(self, n):
        return None


def test_missing_spec_fails_loudly():
    with pytest.raises(AnalysisError, match="no conformance case"):
        default_scheme("no-such-scheme")


def test_missing_analytic_model_fails_loudly():
    with pytest.raises(AnalysisError, match="no analytic q_i model"):
        analytic_q_profile(_UnmodeledScheme(), BLOCK, 0.2)
