"""TESLA under clock drift: the synchronization assumption eroding."""

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.network.clock import DriftingClock
from repro.schemes.tesla import TeslaParameters, TeslaReceiver, TeslaSender


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"drift")


def _run_with_clock(signer, clock: DriftingClock, count: int = 60,
                    network_delay: float = 0.005):
    """Stream `count` packets; receiver timestamps via its drifting clock."""
    parameters = TeslaParameters(interval=0.05, lag=3, chain_length=count,
                                 max_clock_offset=0.01)
    sender = TeslaSender(parameters, signer, seed=b"\x0c" * 16)
    receiver = TeslaReceiver(sender.bootstrap_packet(), signer)
    packets = [sender.send(b"tick %d" % i, i * 0.05) for i in range(count)]
    for packet in packets + sender.flush_keys(count):
        true_arrival = packet.send_time + network_delay
        receiver.receive(packet, clock.local(true_arrival))
    return receiver.counts()


class TestDrift:
    def test_well_synchronized_clock(self, signer):
        counts = _run_with_clock(signer, DriftingClock(offset=0.002))
        assert counts.get("unsafe", 0) == 0
        assert counts.get("verified", 0) == 60

    def test_fast_clock_drops_packets(self, signer):
        """A receiver clock far ahead makes packets look post-disclosure."""
        counts = _run_with_clock(signer, DriftingClock(offset=0.2))
        assert counts.get("unsafe", 0) == 60

    def test_slow_clock_is_safe_but_conservative(self, signer):
        """A slow clock never accepts anything unsafe (errs safe)."""
        counts = _run_with_clock(signer, DriftingClock(offset=-0.2))
        assert counts.get("bad-mac", 0) == 0
        assert counts.get("verified", 0) == 60

    def test_drift_accumulates_into_unsafe(self, signer):
        """Within-bound at sync time, drift eventually crosses the
        security condition."""
        # 4% drift: the clock error grows by 2 ms per 50 ms interval,
        # crossing the ~85 ms disclosure margin around packet 43.
        clock = DriftingClock(offset=0.0, drift_ppm=40000.0)
        counts = _run_with_clock(signer, clock)
        assert counts.get("unsafe", 0) > 0
        assert counts.get("verified", 0) > 0
        # Early packets verified, late ones dropped: drift is monotone.

    def test_drift_bound_helper_matches(self, signer):
        clock = DriftingClock(offset=0.01, drift_ppm=1000.0)
        horizon = 3.0
        bound = clock.max_offset_until(horizon)
        assert bound == pytest.approx(0.01 + 0.003)
