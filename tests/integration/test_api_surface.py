"""The public API surface stays importable and coherent."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("module", [
        "repro.core", "repro.crypto", "repro.schemes", "repro.network",
        "repro.simulation", "repro.analysis", "repro.design",
        "repro.experiments",
    ])
    def test_subpackage_all_resolves(self, module):
        package = importlib.import_module(module)
        for name in package.__all__:
            assert hasattr(package, name), f"{module}.{name}"

    def test_exception_hierarchy(self):
        from repro import (
            AnalysisError,
            CryptoError,
            DesignError,
            GraphError,
            ReproError,
            SchemeParameterError,
            SimulationError,
            VerificationError,
        )

        for exc in (AnalysisError, CryptoError, DesignError, GraphError,
                    SchemeParameterError, SimulationError):
            assert issubclass(exc, ReproError)
        assert issubclass(VerificationError, CryptoError)
        assert issubclass(SchemeParameterError, ValueError)

    def test_every_registered_scheme_instantiates_and_packetizes(self):
        from repro.crypto.signatures import HmacStubSigner
        from repro.schemes import available_schemes, make_scheme
        from repro.simulation.sender import make_payloads

        defaults = {
            "rohatgi": "rohatgi",
            "rohatgi-online": "rohatgi-online",
            "wong-lam": "wong-lam",
            "sign-each": "sign-each",
            "emss": "emss(2,1)",
            "ac": "ac(3,3)",
            "offsets": "offsets(1,4)",
            "random": "random(0.3,1)",
            "tesla": "tesla",
            "saida": "saida(0.5)",
        }
        assert set(defaults) == set(available_schemes())
        signer = HmacStubSigner(key=b"surface")
        for spec in defaults.values():
            scheme = make_scheme(spec)
            if spec == "tesla":
                continue  # TESLA packetizes through its own sender
            packets = scheme.make_block(make_payloads(12), signer)
            assert len(packets) == 12

    def test_docstrings_everywhere(self):
        """Every public module and top-level callable is documented."""
        modules = [
            "repro.core.graph", "repro.core.metrics", "repro.core.paths",
            "repro.core.bounds", "repro.core.recurrence",
            "repro.schemes.base", "repro.schemes.emss",
            "repro.schemes.augmented_chain", "repro.schemes.tesla",
            "repro.schemes.saida", "repro.network.loss",
            "repro.network.delay", "repro.simulation.receiver",
            "repro.analysis.montecarlo", "repro.analysis.exact_chain",
            "repro.design.dp", "repro.packets",
        ]
        for name in modules:
            module = importlib.import_module(name)
            assert module.__doc__, name
            for export in getattr(module, "__all__", []):
                item = getattr(module, export)
                if callable(item):
                    assert item.__doc__, f"{name}.{export}"
