"""End-to-end integration: real crypto, real packets, real channels.

Unlike the unit suites these use the *real* RSA signer (small modulus
for speed) and full wire serialization, exercising every layer at once:
scheme → block builder → wire format → channel → receiver → stats.
"""

import pytest

from repro.crypto.signatures import LamportSigner, RsaSigner
from repro.network.channel import Channel
from repro.network.delay import GaussianDelay
from repro.network.loss import BernoulliLoss
from repro.packets import packet_from_wire
from repro.schemes.augmented_chain import AugmentedChainScheme
from repro.schemes.emss import EmssScheme
from repro.schemes.rohatgi import RohatgiScheme
from repro.schemes.tesla import TeslaParameters, TeslaReceiver, TeslaSender
from repro.schemes.wong_lam import WongLamScheme, verify_wong_lam_packet
from repro.simulation.receiver import ChainReceiver
from repro.simulation.sender import StreamSender, make_payloads
from repro.simulation.session import run_chain_session


@pytest.fixture(scope="module")
def rsa_signer():
    return RsaSigner.generate(512)


class TestRsaBackedSessions:
    @pytest.mark.parametrize("scheme", [
        RohatgiScheme(), EmssScheme(2, 1), AugmentedChainScheme(2, 2),
    ])
    def test_lossless_session_verifies_everything(self, scheme, rsa_signer):
        stats = run_chain_session(scheme, 9, 2, Channel(),
                                  signer=rsa_signer)
        assert stats.q_min == 1.0
        assert stats.forged == 0

    def test_lossy_delayed_session(self, rsa_signer):
        channel = Channel(loss=BernoulliLoss(0.2, seed=21),
                          delay=GaussianDelay(mean=0.05, std=0.02, seed=22))
        stats = run_chain_session(EmssScheme(2, 1), 16, 3, channel,
                                  signer=rsa_signer)
        assert stats.forged == 0
        assert 0.0 < stats.overall_q <= 1.0


class TestWireSerializationInTheLoop:
    def test_blocks_survive_serialization(self, rsa_signer):
        """Serialize every packet to bytes and back before receiving."""
        sender = StreamSender(EmssScheme(2, 1), rsa_signer, block_size=8)
        receiver = ChainReceiver(rsa_signer)
        packets = sender.send_block(make_payloads(8))
        for packet in packets:
            revived = packet_from_wire(packet.to_wire())
            receiver.receive(revived, revived.send_time)
        assert receiver.verified_count() == 8

    def test_wong_lam_survives_serialization(self, rsa_signer):
        packets = WongLamScheme().make_block(make_payloads(6), rsa_signer)
        for packet in packets:
            revived = packet_from_wire(packet.to_wire())
            assert verify_wong_lam_packet(revived, rsa_signer)


class TestLamportBootstrap:
    def test_tesla_with_lamport_bootstrap(self):
        """TESLA's single bootstrap signature suits a one-time scheme."""
        signer = LamportSigner.generate(seed=b"tesla-ots")
        parameters = TeslaParameters(interval=0.05, lag=2, chain_length=16)
        sender = TeslaSender(parameters, signer, seed=b"\x01" * 16)
        bootstrap = sender.bootstrap_packet()
        receiver = TeslaReceiver(bootstrap, signer)
        packets = [sender.send(b"tick %d" % i, i * 0.05) for i in range(8)]
        for packet in packets + sender.flush_keys(8):
            receiver.receive(packet, packet.send_time + 0.005)
        assert receiver.counts().get("verified") == 8


class TestMultiBlockStream:
    def test_long_stream_with_loss(self, rsa_signer):
        channel = Channel(loss=BernoulliLoss(0.15, seed=33))
        stats = run_chain_session(AugmentedChainScheme(2, 2), 13, 5, channel,
                                  signer=rsa_signer)
        # Five blocks of 13: every position tallied 5 times.
        assert all(t.received <= 5 for t in stats.tallies.values())
        assert len(stats.tallies) == 13
        assert stats.forged == 0
