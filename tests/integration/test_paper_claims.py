"""The paper's headline quantitative claims, asserted end to end.

One test per claim the paper states in prose, evaluated with this
library's analytic and simulated machinery.  These are the regression
net for the reproduction as a whole.
"""

import pytest

from repro.analysis import augmented_chain as ac_analysis
from repro.analysis import emss as emss_analysis
from repro.analysis import rohatgi as rohatgi_analysis
from repro.analysis import tesla as tesla_analysis
from repro.analysis.compare import TeslaEnvironment, analytic_q_min
from repro.analysis.montecarlo import graph_monte_carlo
from repro.core.metrics import compute_metrics
from repro.schemes.emss import EmssScheme
from repro.schemes.registry import paper_comparison_schemes
from repro.schemes.rohatgi import RohatgiScheme
from repro.schemes.wong_lam import WongLamScheme


class TestSection3Claims:
    def test_rohatgi_example_block(self):
        """Sec. 3: q_min=(1-p)^{n-2}, n-1 edges, zero delay, 1 hash buf."""
        n, p = 16, 0.1
        graph = RohatgiScheme().build_graph(n)
        metrics = compute_metrics(graph)
        assert rohatgi_analysis.q_min(n, p) == pytest.approx(0.9 ** 14)
        assert graph.edge_count == n - 1
        assert metrics.delay_slots == 0
        assert metrics.hash_buffer == 1
        assert metrics.message_buffer == 0

    def test_single_loss_breaks_rohatgi_chain(self):
        """Sec. 2.2: 'Even missing a single packet can break the chain'."""
        graph = RohatgiScheme().build_graph(10)
        mc = graph_monte_carlo(graph, 0.0001, trials=100, seed=1)
        # Structural check instead: remove one vertex's support.
        from repro.core.paths import theta_sets
        thetas = theta_sets(graph, 10)
        assert len(thetas) == 1  # a single path: any interior loss kills


class TestSection4Claims:
    def test_tesla_lambda_formula(self):
        """Sec. 3.2: lambda_i = 1 - p^{n+1-i}."""
        assert tesla_analysis.lambda_i(3, 10, 0.3) == pytest.approx(
            1 - 0.3 ** 8)

    def test_tesla_robust_when_disclosure_generous(self):
        """Sec. 4.3: 'quite robust to packet loss if T_disclose is
        chosen sufficiently large compared to mu and sigma'."""
        for p in (0.1, 0.5, 0.8):
            q = tesla_analysis.q_min(1000, p, 10.0, 0.2, 0.1)
            assert q == pytest.approx(1 - p, abs=1e-6)

    def test_emss_levels_off_in_m(self):
        """Fig. 7: 'performance of EMSS levels off when m is larger
        than a relatively small value, say 2-4'."""
        p, n = 0.3, 1000
        q4 = emss_analysis.q_min(n, 4, 1, p)
        q6 = emss_analysis.q_min(n, 6, 1, p)
        assert q6 - q4 < 0.01

    def test_emss_insensitive_to_d(self):
        """Fig. 7: change significant only when d-change > ~20% of n."""
        p, n = 0.3, 1000
        base = emss_analysis.q_min(n, 2, 1, p)
        assert abs(emss_analysis.q_min(n, 2, 50, p) - base) < 0.03

    def test_ac_insensitive_to_b_at_fixed_level1(self):
        """Fig. 6: inserting packets is nearly free."""
        from repro.schemes.augmented_chain import AugmentedChainScheme
        p = 0.3
        values = [
            ac_analysis.q_min(
                AugmentedChainScheme.block_size_for_chain(100, b), 3, b, p)
            for b in (2, 6, 10)
        ]
        assert max(values) - min(values) < 0.02

    def test_fig8_scheme_ordering(self):
        """Fig. 8: Rohatgi 'incredibly low', other three similar."""
        env = TeslaEnvironment(t_disclose=1.0, mu=0.2, sigma=0.1)
        values = {
            scheme.name: analytic_q_min(scheme, 1000, 0.1, env)
            for scheme in paper_comparison_schemes()
        }
        assert values["rohatgi"] < 1e-10
        others = [v for k, v in values.items() if k != "rohatgi"]
        assert min(others) > 0.85

    def test_tesla_beats_chains_at_high_loss(self):
        """Fig. 8: 'at larger p TESLA is significantly better'."""
        env = TeslaEnvironment(t_disclose=1.0, mu=0.2, sigma=0.1)
        p = 0.6
        tesla_value = tesla_analysis.q_min(1000, p, env.t_disclose,
                                           env.mu, env.sigma)
        emss_value = emss_analysis.q_min(1000, 2, 1, p)
        ac_value = ac_analysis.q_min(1000, 3, 3, p)
        assert tesla_value > emss_value + 0.2
        assert tesla_value > ac_value + 0.2

    def test_chains_can_beat_tesla_at_low_loss(self):
        """Fig. 8: 'EMSS and AC can outperform TESLA at small p'."""
        env = TeslaEnvironment(t_disclose=1.0, mu=0.5, sigma=0.3)
        p = 0.02
        tesla_value = tesla_analysis.q_min(1000, p, env.t_disclose,
                                           env.mu, env.sigma)
        emss_value = emss_analysis.q_min(1000, 2, 1, p)
        assert emss_value > tesla_value

    def test_auth_tree_q_one_but_expensive(self):
        """Sec. 4.3 + Fig. 10: tree is lossproof but heavy."""
        scheme = WongLamScheme()
        assert analytic_q_min(scheme, 1024, 0.9) == 1.0
        tree_bytes = scheme.metrics(1024, l_sign=128, l_hash=16).overhead_bytes
        emss_bytes = EmssScheme(2, 1).metrics(
            1024, l_sign=128, l_hash=16).overhead_bytes
        assert tree_bytes > 5 * emss_bytes
