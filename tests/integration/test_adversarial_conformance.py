"""Adversarial conformance: security invariants across every scheme.

Two invariants hold for every registered scheme under every canonical
attack mix:

* **soundness** — zero forged or corrupted packets are ever accepted
  as authentic (``forged_accepted == 0``);
* **completeness** — the attacked wire-level ``q_i`` still matches the
  analytic model evaluated at the *effective* loss rate
  ``p_eff = 1 - (1-p)(1-c)``, within 3 binomial standard errors
  (one-sided for schemes whose receivers salvage more than the model
  predicts; see ``COMPLETENESS_POLICY``).

The suite is parametrized over :func:`available_schemes` ×
``ADVERSARIAL_MIXES``, so a newly registered scheme is attacked
automatically — and fails loudly until it degrades gracefully.
"""

import pytest

from repro.analysis.conformance import (
    ADVERSARIAL_MIXES,
    COMPLETENESS_POLICY,
    adversarial_conformance_report,
    adversarial_wire_stats,
    attack_mix,
    default_scheme,
    effective_loss_rate,
)
from repro.exceptions import AnalysisError
from repro.schemes.registry import available_schemes

BLOCK = 12
TRIALS = 200
SEED = 7
LOSS_RATE = 0.1

SCHEME_NAMES = sorted(available_schemes())


@pytest.mark.parametrize("mix", ADVERSARIAL_MIXES)
@pytest.mark.parametrize("name", SCHEME_NAMES)
def test_soundness_and_completeness_under_attack(name, mix):
    report = adversarial_conformance_report(
        name, BLOCK, LOSS_RATE, mix, TRIALS, seed=SEED)
    counters = report["counters"]
    assert report["sound"], (
        f"{name} under {mix!r} accepted "
        f"{counters['forged_accepted']} forged packets")
    assert report["passed"], (
        f"{name} under {mix!r}: worst deviation "
        f"{report['max_deviation_se']} SE (policy {report['policy']})")
    # The attack actually exercised the adversarial path.  Replays are
    # the one fault class present in every canonical mix; corruption
    # and injection can each be zero (protected-signature schemes skip
    # corruption, the dos mix carries no injector).
    assert counters["replayed"] > 0
    assert counters["replays_dropped"] > 0


def test_unknown_mix_raises():
    with pytest.raises(AnalysisError):
        attack_mix("nonexistent-mix")
    with pytest.raises(AnalysisError):
        adversarial_conformance_report(
            SCHEME_NAMES[0], BLOCK, LOSS_RATE, "nonexistent-mix", 10)


def test_effective_loss_rate_composition():
    plan = attack_mix("pollution")
    c = plan.corruption_rate
    p_eff = effective_loss_rate(0.1, plan)
    assert p_eff == pytest.approx(1.0 - 0.9 * (1.0 - c))
    assert effective_loss_rate(0.0, plan) == pytest.approx(c)
    with pytest.raises(AnalysisError):
        effective_loss_rate(1.5, plan)


def test_policy_table_only_names_known_pairs():
    for (mix, scheme_name), (policy, _reason) in COMPLETENESS_POLICY.items():
        assert mix in ADVERSARIAL_MIXES
        assert scheme_name in SCHEME_NAMES
        assert policy in ("two-sided", "lower-bound", "skip")


@pytest.mark.parametrize("name", ["rohatgi", "emss"])
def test_sharded_attack_is_bit_for_bit_deterministic(name):
    """The same attacked experiment folds identically across workers."""
    scheme = default_scheme(name)
    plan = attack_mix("pollution")
    reports = [
        adversarial_wire_stats(scheme, BLOCK, LOSS_RATE, plan, 60,
                               seed=SEED, workers=workers)
        for workers in (1, 2, 4)
    ]
    baseline = reports[0]
    for stats in reports[1:]:
        assert stats.tallies == baseline.tallies
        for counter in ("sent", "dropped", "corrupted", "injected",
                        "replayed", "undecodable", "forged_rejected",
                        "replays_dropped", "forged_accepted"):
            assert getattr(stats, counter) == getattr(baseline, counter)
