"""Adversarial conformance: security invariants across every scheme.

Two invariants hold for every registered scheme under every canonical
attack mix:

* **soundness** — zero forged or corrupted packets are ever accepted
  as authentic (``forged_accepted == 0``);
* **completeness** — the attacked wire-level ``q_i`` still matches the
  analytic model evaluated at the *effective* loss rate
  ``p_eff = 1 - (1-p)(1-c)``, within 3 binomial standard errors
  (one-sided for schemes whose receivers salvage more than the model
  predicts; see ``COMPLETENESS_POLICY``).

The suite is parametrized over :func:`available_schemes` ×
``ADVERSARIAL_MIXES``, so a newly registered scheme is attacked
automatically — and fails loudly until it degrades gracefully.
"""

import pytest

from repro.analysis.conformance import (
    ADVERSARIAL_MIXES,
    COMPLETENESS_POLICY,
    adversarial_conformance_report,
    adversarial_wire_stats,
    attack_mix,
    default_scheme,
    effective_loss_rate,
)
from repro.crypto.batch import StreamBatchSigner
from repro.crypto.signatures import HmacStubSigner
from repro.exceptions import AnalysisError
from repro.faults import AttackPlan, BatchRootForgery
from repro.schemes.registry import available_schemes
from repro.topology import (
    shortest_path_tree,
    spine_topology,
    topology_adversarial_stats,
)

BLOCK = 12
TRIALS = 200
SEED = 7
LOSS_RATE = 0.1

SCHEME_NAMES = sorted(available_schemes())


@pytest.mark.parametrize("mix", ADVERSARIAL_MIXES)
@pytest.mark.parametrize("name", SCHEME_NAMES)
def test_soundness_and_completeness_under_attack(name, mix):
    report = adversarial_conformance_report(
        name, BLOCK, LOSS_RATE, mix, TRIALS, seed=SEED)
    counters = report["counters"]
    assert report["sound"], (
        f"{name} under {mix!r} accepted "
        f"{counters['forged_accepted']} forged packets")
    assert report["passed"], (
        f"{name} under {mix!r}: worst deviation "
        f"{report['max_deviation_se']} SE (policy {report['policy']})")
    # The attack actually exercised the adversarial path.  Replays are
    # the one fault class present in every canonical mix; corruption
    # and injection can each be zero (protected-signature schemes skip
    # corruption, the dos mix carries no injector).
    assert counters["replayed"] > 0
    assert counters["replays_dropped"] > 0


def test_unknown_mix_raises():
    with pytest.raises(AnalysisError):
        attack_mix("nonexistent-mix")
    with pytest.raises(AnalysisError):
        adversarial_conformance_report(
            SCHEME_NAMES[0], BLOCK, LOSS_RATE, "nonexistent-mix", 10)


def test_effective_loss_rate_composition():
    plan = attack_mix("pollution")
    c = plan.corruption_rate
    p_eff = effective_loss_rate(0.1, plan)
    assert p_eff == pytest.approx(1.0 - 0.9 * (1.0 - c))
    assert effective_loss_rate(0.0, plan) == pytest.approx(c)
    with pytest.raises(AnalysisError):
        effective_loss_rate(1.5, plan)


def test_policy_table_only_names_known_pairs():
    for (mix, scheme_name), (policy, _reason) in COMPLETENESS_POLICY.items():
        assert mix in ADVERSARIAL_MIXES
        assert scheme_name in SCHEME_NAMES
        assert policy in ("two-sided", "lower-bound", "skip")


@pytest.mark.parametrize("mix", ADVERSARIAL_MIXES)
@pytest.mark.parametrize("name", SCHEME_NAMES)
def test_soundness_and_completeness_with_batch_signing(name, mix):
    """The full matrix again, with every signature a batch attachment.

    Same invariants as the per-block column: the batch construction
    may cost proof bytes, it may never cost soundness (zero forged
    acceptances) or completeness (attacked ``q_i`` within 3 SE of the
    analytic model at the effective loss rate).
    """
    report = adversarial_conformance_report(
        name, BLOCK, LOSS_RATE, mix, TRIALS, seed=SEED, batch_size=8)
    counters = report["counters"]
    assert report["batch_size"] == 8
    assert report["sound"], (
        f"{name} under {mix!r} with batch signing accepted "
        f"{counters['forged_accepted']} forged packets")
    assert report["passed"], (
        f"{name} under {mix!r} with batch signing: worst deviation "
        f"{report['max_deviation_se']} SE (policy {report['policy']})")
    assert counters["replayed"] > 0
    assert counters["replays_dropped"] > 0


@pytest.mark.parametrize("name", SCHEME_NAMES)
def test_forged_batch_root_never_accepted(name):
    """A structurally perfect forged batch attachment must be rejected.

    :class:`~repro.faults.BatchRootForgery` builds forged signature
    packets whose attachments decode strictly and whose Merkle walks
    succeed — only the root-signature check stands.  With every
    genuine signature also a batch attachment, acceptance would mean
    the verifier skipped or mis-cached exactly that check.
    """
    scheme = default_scheme(name)
    plan = AttackPlan((BatchRootForgery(0.5, batch_size=8),))
    signer = StreamBatchSigner(
        HmacStubSigner(key=b"adversarial-wire", signature_size=128),
        8, seed=SEED)
    stats = adversarial_wire_stats(scheme, BLOCK, LOSS_RATE, plan, 60,
                                   seed=SEED, signer=signer)
    assert stats.forged_accepted == 0
    if name == "saida":
        # SAIDA disperses its signature as Reed-Solomon shares; no
        # packet carries a signature blob, so there is no batch root
        # on the wire to forge and the attack is vacuously defeated.
        assert stats.injected == 0
    else:
        assert stats.injected > 0
        assert stats.forged_rejected + stats.undecodable >= stats.injected


@pytest.mark.parametrize("name", ["rohatgi", "emss"])
def test_sharded_attack_is_bit_for_bit_deterministic(name):
    """The same attacked experiment folds identically across workers."""
    scheme = default_scheme(name)
    plan = attack_mix("pollution")
    reports = [
        adversarial_wire_stats(scheme, BLOCK, LOSS_RATE, plan, 60,
                               seed=SEED, workers=workers)
        for workers in (1, 2, 4)
    ]
    baseline = reports[0]
    for stats in reports[1:]:
        assert stats.tallies == baseline.tallies
        for counter in ("sent", "dropped", "corrupted", "injected",
                        "replayed", "undecodable", "forged_rejected",
                        "replays_dropped", "forged_accepted"):
            assert getattr(stats, counter) == getattr(baseline, counter)


@pytest.mark.parametrize("mix", ADVERSARIAL_MIXES)
@pytest.mark.parametrize("name", SCHEME_NAMES)
def test_topology_channel_soundness_under_attack(name, mix):
    """Soundness survives the move from flat channels to tree paths.

    The attack layer wraps a :class:`~repro.topology.TopologyChannel`
    whose loss is the AND of a shared spine edge and a private leaf
    edge — a different wire stream than the flat Bernoulli channel,
    so a verifier that only held up under independent loss would be
    caught here.  Zero forged acceptances, for every scheme, under
    every canonical mix.
    """
    topo = spine_topology([f"r{i:02d}" for i in range(4)], 2)
    trees = [shortest_path_tree(topo)]
    stats = topology_adversarial_stats(
        default_scheme(name), topo, trees, "r00", BLOCK, LOSS_RATE,
        attack_mix(mix), 60, seed=SEED)
    assert stats.forged_accepted == 0, (
        f"{name} under {mix!r} on a spine topology accepted "
        f"{stats.forged_accepted} forged packets")
    assert stats.replayed > 0
    assert stats.replays_dropped > 0
    # Schemes whose every packet carries a signature (sign-each,
    # wong-lam) are fully loss-protected by the channel contract, so
    # only assert real link drops for the rest.
    if any(tally.received < 60 for tally in stats.tallies.values()):
        assert stats.dropped > 0, "the shared spine path must drop"
