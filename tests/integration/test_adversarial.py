"""Adversarial integration tests: forgeries must never verify.

The paper's setting assumes untrusted receivers who may inject
packets.  These tests play that adversary against every scheme:
tampered payloads, spliced hashes, replayed signatures, forged TESLA
keys — nothing may reach "verified".
"""

from dataclasses import replace

import pytest

from repro.crypto.signatures import HmacStubSigner
from repro.schemes.emss import EmssScheme
from repro.schemes.rohatgi import RohatgiScheme
from repro.schemes.tesla import TeslaParameters, TeslaReceiver, TeslaSender
from repro.schemes.wong_lam import WongLamScheme, verify_wong_lam_packet
from repro.simulation.receiver import ChainReceiver
from repro.simulation.sender import make_payloads


@pytest.fixture
def signer():
    return HmacStubSigner(key=b"honest-sender")


class TestChainForgery:
    def test_payload_substitution_detected(self, signer):
        packets = EmssScheme(2, 1).make_block(make_payloads(6), signer)
        receiver = ChainReceiver(signer)
        for packet in packets:
            if packet.seq == 3:
                packet = replace(packet, payload=b"injected!" * 3)
            receiver.receive(packet, 0.0)
        assert not receiver.outcomes[3].verified
        assert receiver.outcomes[3].forged

    def test_hash_splicing_detected(self, signer):
        """Swap a carried hash to redirect trust — must fail somewhere."""
        packets = EmssScheme(2, 1).make_block(make_payloads(6), signer)
        victim = packets[4]
        foreign_digest = packets[5].carried[0][1]
        spliced_carried = tuple(
            (target, foreign_digest) for target, _ in victim.carried
        )
        spliced = replace(victim, carried=spliced_carried)
        receiver = ChainReceiver(signer)
        for packet in packets[:4] + [spliced, packets[5]]:
            receiver.receive(packet, 0.0)
        # The spliced packet's own hash no longer matches what the
        # signature packet carries for it.
        assert not receiver.outcomes[spliced.seq].verified

    def test_cross_block_replay_rejected(self, signer):
        scheme = RohatgiScheme()
        block_a = scheme.make_block(make_payloads(4, tag=b"a"), signer,
                                    block_id=0, base_seq=1)
        block_b = scheme.make_block(make_payloads(4, tag=b"b"), signer,
                                    block_id=1, base_seq=5)
        receiver = ChainReceiver(signer)
        receiver.receive(block_a[0], 0.0)
        # Replay block B's second packet renumbered into block A's slot.
        foreign = replace(block_b[1], seq=2, block_id=0)
        outcome = receiver.receive(foreign, 0.0)
        assert not outcome.verified

    def test_unsigned_root_claim_rejected(self, signer):
        packets = RohatgiScheme().make_block(make_payloads(3), signer)
        stripped = replace(packets[0], signature=b"\x00" * 128)
        receiver = ChainReceiver(signer)
        assert receiver.receive(stripped, 0.0).forged


class TestWongLamForgery:
    def test_proof_transplant_rejected(self, signer):
        packets = WongLamScheme().make_block(make_payloads(8), signer)
        # Give packet 3 packet 5's proof.
        franken = replace(packets[3], extra=packets[5].extra)
        assert not verify_wong_lam_packet(franken, signer)

    def test_signature_transplant_across_blocks(self, signer):
        first = WongLamScheme().make_block(make_payloads(4, tag=b"x"), signer)
        second = WongLamScheme().make_block(make_payloads(4, tag=b"y"),
                                            signer, block_id=1, base_seq=5)
        franken = replace(second[0], signature=first[0].signature,
                          seq=first[0].seq, block_id=0)
        assert not verify_wong_lam_packet(franken, signer)


class TestTeslaForgery:
    def _session(self, signer):
        parameters = TeslaParameters(interval=0.05, lag=2, chain_length=32)
        sender = TeslaSender(parameters, signer, seed=b"\x02" * 16)
        receiver = TeslaReceiver(sender.bootstrap_packet(), signer)
        return sender, receiver

    def test_forged_payload_fails_mac(self, signer):
        sender, receiver = self._session(signer)
        genuine = sender.send(b"price=100", 0.0)
        forged = replace(genuine, payload=b"price=999")
        receiver.receive(forged, 0.01)
        for packet in sender.flush_keys(1):
            receiver.receive(packet, packet.send_time + 0.01)
        assert receiver.verdicts[forged.seq].status == "bad-mac"

    def test_key_disclosure_cannot_be_front_run(self, signer):
        """An attacker replaying a packet after its key disclosure must
        hit the security condition, even with a valid MAC."""
        sender, receiver = self._session(signer)
        genuine = sender.send(b"data", 0.0)  # interval 1
        # Replay far past K_1's disclosure time (0.1 s).
        receiver.receive(genuine, 0.5)
        assert receiver.verdicts[genuine.seq].status == "unsafe"
