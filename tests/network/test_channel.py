"""Unit tests for the lossy, delaying channel."""

import pytest

from repro.network.channel import Channel
from repro.network.delay import GaussianDelay
from repro.network.loss import BernoulliLoss, TraceLoss
from repro.packets import Packet


def _packets(count):
    return [Packet(seq=i + 1, block_id=0, payload=b"p%d" % i,
                   send_time=i * 0.01) for i in range(count)]


def _signed(seq, when=0.0):
    return Packet(seq=seq, block_id=0, payload=b"s", signature=b"\x01" * 8,
                  send_time=when)


class TestLossless:
    def test_everything_delivered_in_order(self):
        channel = Channel()
        deliveries = channel.transmit(_packets(5))
        assert [d.packet.seq for d in deliveries] == [1, 2, 3, 4, 5]
        assert channel.dropped == 0

    def test_zero_delay(self):
        deliveries = Channel().transmit(_packets(3))
        assert all(d.delay == 0.0 for d in deliveries)


class TestLoss:
    def test_trace_loss_drops_exactly(self):
        channel = Channel(loss=TraceLoss([False, True, False, True, False]))
        deliveries = channel.transmit(_packets(5))
        assert [d.packet.seq for d in deliveries] == [1, 3, 5]
        assert channel.dropped == 2
        assert channel.observed_loss_rate == pytest.approx(0.4)

    def test_signature_packets_protected(self):
        channel = Channel(loss=BernoulliLoss(1.0, seed=1),
                          protect_signature_packets=True)
        packets = _packets(4) + [_signed(5)]
        deliveries = channel.transmit(packets)
        assert [d.packet.seq for d in deliveries] == [5]

    def test_protection_can_be_disabled(self):
        channel = Channel(loss=BernoulliLoss(1.0, seed=1),
                          protect_signature_packets=False)
        assert channel.transmit(_packets(3) + [_signed(4)]) == []

    def test_loss_state_advances_past_protected_packets(self):
        # The protected packet still consumes a loss decision so that
        # the pattern seen by other packets is unchanged.
        trace = [True, False, True]
        with_protection = Channel(loss=TraceLoss(trace))
        packets = [_signed(1), *_packets(2)]
        packets = [packets[0],
                   Packet(seq=2, block_id=0, payload=b"x"),
                   Packet(seq=3, block_id=0, payload=b"y")]
        delivered = {d.packet.seq for d in with_protection.transmit(packets)}
        assert delivered == {1, 2}  # seq 3 ate the second True


class TestDelay:
    def test_arrival_order_can_differ_from_send_order(self):
        channel = Channel(delay=GaussianDelay(mean=0.5, std=0.3, seed=11))
        deliveries = channel.transmit(_packets(50))
        arrival_seqs = [d.packet.seq for d in deliveries]
        assert sorted(arrival_seqs) == list(range(1, 51))
        assert arrival_seqs != list(range(1, 51))  # reordering happened

    def test_arrival_times_sorted(self):
        channel = Channel(delay=GaussianDelay(mean=0.2, std=0.1, seed=3))
        deliveries = channel.transmit(_packets(20))
        times = [d.arrival_time for d in deliveries]
        assert times == sorted(times)

    def test_delay_positive(self):
        channel = Channel(delay=GaussianDelay(mean=0.1, std=0.05, seed=5))
        for delivery in channel.transmit(_packets(100)):
            assert delivery.delay >= 0.0


class TestReset:
    def test_reset_restores_counters_and_models(self):
        channel = Channel(loss=BernoulliLoss(0.5, seed=2))
        first = {d.packet.seq for d in channel.transmit(_packets(20))}
        channel.reset()
        assert channel.sent == 0
        assert channel.dropped == 0
        second = {d.packet.seq for d in channel.transmit(_packets(20))}
        assert first == second
