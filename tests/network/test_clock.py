"""Unit tests for simulated receiver clocks."""

import asyncio

import pytest

from repro.exceptions import SimulationError
from repro.network.clock import DriftingClock, MonotonicClock, VirtualClock


class TestDriftingClock:
    def test_perfect_clock(self):
        clock = DriftingClock()
        assert clock.local(12.5) == 12.5
        assert clock.offset_at(100.0) == 0.0

    def test_fixed_offset(self):
        clock = DriftingClock(offset=0.25)
        assert clock.local(10.0) == pytest.approx(10.25)

    def test_linear_drift(self):
        clock = DriftingClock(drift_ppm=100.0)  # 100 us per second
        assert clock.offset_at(1000.0) == pytest.approx(0.1)

    def test_drift_anchored_at_sync_time(self):
        clock = DriftingClock(drift_ppm=100.0, t_sync=500.0)
        assert clock.offset_at(500.0) == pytest.approx(0.0)
        assert clock.offset_at(1500.0) == pytest.approx(0.1)

    def test_max_offset_until(self):
        clock = DriftingClock(offset=0.01, drift_ppm=50.0)
        bound = clock.max_offset_until(2000.0)
        assert bound == pytest.approx(0.01 + 0.1)

    def test_max_offset_negative_drift(self):
        clock = DriftingClock(offset=0.0, drift_ppm=-50.0)
        assert clock.max_offset_until(2000.0) == pytest.approx(0.1)

    def test_horizon_validation(self):
        clock = DriftingClock(t_sync=10.0)
        with pytest.raises(SimulationError):
            clock.max_offset_until(5.0)


class TestVirtualClock:
    def test_starts_at_zero(self):
        clock = VirtualClock()
        assert clock.now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(start=5.0).now() == 5.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(SimulationError):
            clock.advance(-0.1)

    def test_sleep_advances_without_waiting(self):
        async def scenario():
            clock = VirtualClock()
            await clock.sleep(10.0)
            return clock.now()

        assert asyncio.run(scenario()) == pytest.approx(10.0)

    def test_sleep_negative_rejected(self):
        async def scenario():
            await VirtualClock().sleep(-1.0)

        with pytest.raises(SimulationError):
            asyncio.run(scenario())


class TestMonotonicClock:
    def test_starts_near_zero_and_increases(self):
        clock = MonotonicClock()
        first = clock.now()
        second = clock.now()
        assert first >= 0.0
        assert second >= first

    def test_sleep_waits_wall_time(self):
        async def scenario():
            clock = MonotonicClock()
            before = clock.now()
            await clock.sleep(0.01)
            return clock.now() - before

        assert asyncio.run(scenario()) >= 0.009

    def test_sleep_clamps_negative(self):
        async def scenario():
            await MonotonicClock().sleep(-5.0)

        asyncio.run(scenario())  # must not raise or hang
