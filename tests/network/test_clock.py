"""Unit tests for simulated receiver clocks."""

import pytest

from repro.exceptions import SimulationError
from repro.network.clock import DriftingClock


class TestDriftingClock:
    def test_perfect_clock(self):
        clock = DriftingClock()
        assert clock.local(12.5) == 12.5
        assert clock.offset_at(100.0) == 0.0

    def test_fixed_offset(self):
        clock = DriftingClock(offset=0.25)
        assert clock.local(10.0) == pytest.approx(10.25)

    def test_linear_drift(self):
        clock = DriftingClock(drift_ppm=100.0)  # 100 us per second
        assert clock.offset_at(1000.0) == pytest.approx(0.1)

    def test_drift_anchored_at_sync_time(self):
        clock = DriftingClock(drift_ppm=100.0, t_sync=500.0)
        assert clock.offset_at(500.0) == pytest.approx(0.0)
        assert clock.offset_at(1500.0) == pytest.approx(0.1)

    def test_max_offset_until(self):
        clock = DriftingClock(offset=0.01, drift_ppm=50.0)
        bound = clock.max_offset_until(2000.0)
        assert bound == pytest.approx(0.01 + 0.1)

    def test_max_offset_negative_drift(self):
        clock = DriftingClock(offset=0.0, drift_ppm=-50.0)
        assert clock.max_offset_until(2000.0) == pytest.approx(0.1)

    def test_horizon_validation(self):
        clock = DriftingClock(t_sync=10.0)
        with pytest.raises(SimulationError):
            clock.max_offset_until(5.0)
