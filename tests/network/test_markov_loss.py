"""Unit tests for the general m-state Markov loss model."""

import pytest

from repro.exceptions import SimulationError
from repro.network.loss import GilbertElliottLoss, MarkovLoss


def _three_state(seed=None):
    # GOOD / CONGESTED / OUTAGE.
    return MarkovLoss(
        transition=[[0.90, 0.08, 0.02],
                    [0.30, 0.60, 0.10],
                    [0.50, 0.00, 0.50]],
        loss_rates=[0.01, 0.30, 1.00],
        seed=seed,
    )


class TestConstruction:
    def test_rejects_non_square(self):
        with pytest.raises(SimulationError):
            MarkovLoss([[1.0, 0.0]], [0.1, 0.2])

    def test_rejects_non_stochastic_rows(self):
        with pytest.raises(SimulationError):
            MarkovLoss([[0.5, 0.4], [0.5, 0.5]], [0.1, 0.2])

    def test_rejects_bad_probabilities(self):
        with pytest.raises(SimulationError):
            MarkovLoss([[1.5, -0.5], [0.5, 0.5]], [0.1, 0.2])
        with pytest.raises(SimulationError):
            MarkovLoss([[1.0]], [1.5])

    def test_rejects_bad_initial_state(self):
        with pytest.raises(SimulationError):
            MarkovLoss([[1.0]], [0.1], initial_state=1)

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            MarkovLoss([], [])


class TestBehaviour:
    def test_stationary_rate_matches_empirical(self):
        model = _three_state(seed=9)
        analytic = model.mean_loss_rate
        losses = model.sample(80000)
        assert sum(losses) / len(losses) == pytest.approx(analytic,
                                                          abs=0.01)

    def test_reset_replays(self):
        model = _three_state(seed=4)
        first = model.sample(100)
        model.reset()
        assert model.sample(100) == first

    def test_single_state_is_bernoulli(self):
        model = MarkovLoss([[1.0]], [0.3], seed=2)
        assert model.mean_loss_rate == pytest.approx(0.3)
        losses = model.sample(30000)
        assert sum(losses) / len(losses) == pytest.approx(0.3, abs=0.01)

    def test_two_state_matches_gilbert_elliott_stationary(self):
        g2b, b2g = 0.05, 0.25
        markov = MarkovLoss([[1 - g2b, g2b], [b2g, 1 - b2g]], [0.0, 1.0])
        gilbert = GilbertElliottLoss(p_good_to_bad=g2b, p_bad_to_good=b2g)
        assert markov.mean_loss_rate == pytest.approx(
            gilbert.mean_loss_rate)

    def test_outage_state_produces_long_bursts(self):
        # A sticky full-loss state must yield multi-packet bursts.
        model = MarkovLoss(
            transition=[[0.95, 0.05], [0.20, 0.80]],
            loss_rates=[0.0, 1.0], seed=8,
        )
        losses = model.sample(50000)
        bursts, current = [], 0
        for lost in losses:
            if lost:
                current += 1
            elif current:
                bursts.append(current)
                current = 0
        assert max(bursts) >= 10
        assert sum(bursts) / len(bursts) == pytest.approx(5.0, rel=0.2)
