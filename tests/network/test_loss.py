"""Unit tests for loss models."""

import pytest

from repro.exceptions import SimulationError
from repro.network.loss import (
    BernoulliLoss,
    GilbertElliottLoss,
    NoLoss,
    TraceLoss,
)


class TestNoLoss:
    def test_never_loses(self):
        model = NoLoss()
        assert not any(model.sample(100))
        assert model.mean_loss_rate == 0.0


class TestBernoulli:
    def test_empirical_rate(self):
        model = BernoulliLoss(0.3, seed=1)
        losses = model.sample(20000)
        assert sum(losses) / len(losses) == pytest.approx(0.3, abs=0.02)

    def test_reset_reproduces(self):
        model = BernoulliLoss(0.5, seed=9)
        first = model.sample(50)
        model.reset()
        assert model.sample(50) == first

    def test_extremes(self):
        assert not any(BernoulliLoss(0.0, seed=1).sample(100))
        assert all(BernoulliLoss(1.0, seed=1).sample(100))

    def test_independent_rngs(self):
        a = BernoulliLoss(0.5, seed=1)
        b = BernoulliLoss(0.5, seed=1)
        a.sample(10)
        assert b.sample(10) == BernoulliLoss(0.5, seed=1).sample(10)

    def test_validation(self):
        with pytest.raises(SimulationError):
            BernoulliLoss(-0.1)
        with pytest.raises(SimulationError):
            BernoulliLoss(1.1)
        with pytest.raises(SimulationError):
            BernoulliLoss(0.5).sample(-1)


class TestGilbertElliott:
    def test_stationary_rate(self):
        model = GilbertElliottLoss.from_rate_and_burst(0.2, 5.0, seed=2)
        assert model.mean_loss_rate == pytest.approx(0.2)
        losses = model.sample(60000)
        assert sum(losses) / len(losses) == pytest.approx(0.2, abs=0.02)

    def test_burst_lengths(self):
        model = GilbertElliottLoss.from_rate_and_burst(0.2, 8.0, seed=3)
        losses = model.sample(60000)
        bursts = []
        current = 0
        for lost in losses:
            if lost:
                current += 1
            elif current:
                bursts.append(current)
                current = 0
        mean_burst = sum(bursts) / len(bursts)
        assert mean_burst == pytest.approx(8.0, rel=0.2)

    def test_reset(self):
        model = GilbertElliottLoss.from_rate_and_burst(0.3, 4.0, seed=5)
        first = model.sample(100)
        model.reset()
        assert model.sample(100) == first

    def test_absorbing_bad_state_rejected(self):
        with pytest.raises(SimulationError):
            GilbertElliottLoss(p_good_to_bad=0.1, p_bad_to_good=0.0)

    def test_infeasible_pairs_rejected(self):
        with pytest.raises(SimulationError):
            GilbertElliottLoss.from_rate_and_burst(0.99, 1.0)
        with pytest.raises(SimulationError):
            GilbertElliottLoss.from_rate_and_burst(0.2, 0.5)

    def test_parameter_range_validation(self):
        with pytest.raises(SimulationError):
            GilbertElliottLoss(p_good_to_bad=1.5, p_bad_to_good=0.5)

    def test_degenerate_lossless(self):
        model = GilbertElliottLoss(p_good_to_bad=0.0, p_bad_to_good=0.0,
                                   loss_in_good=0.0)
        assert model.mean_loss_rate == 0.0
        assert not any(model.sample(100))


class TestTrace:
    def test_replays_and_cycles(self):
        model = TraceLoss([True, False, False])
        assert model.sample(6) == [True, False, False, True, False, False]

    def test_mean_rate(self):
        assert TraceLoss([True, False, False, False]).mean_loss_rate == 0.25

    def test_reset(self):
        model = TraceLoss([True, False])
        model.sample(3)
        model.reset()
        assert model.is_lost() is True

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            TraceLoss([])
