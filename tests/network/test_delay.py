"""Unit tests for delay models (Eq. 5)."""

import math
import statistics

import pytest

from repro.exceptions import SimulationError
from repro.network.delay import ConstantDelay, GaussianDelay, gaussian_cdf


class TestGaussianCdf:
    def test_symmetry(self):
        assert gaussian_cdf(0.0) == pytest.approx(0.5)
        assert gaussian_cdf(1.0) + gaussian_cdf(-1.0) == pytest.approx(1.0)

    def test_known_values(self):
        assert gaussian_cdf(1.0) == pytest.approx(0.8413, abs=1e-4)
        assert gaussian_cdf(2.0) == pytest.approx(0.9772, abs=1e-4)
        assert gaussian_cdf(-3.0) == pytest.approx(0.00135, abs=1e-4)


class TestConstantDelay:
    def test_sample(self):
        assert ConstantDelay(0.25).sample() == 0.25

    def test_cdf_step(self):
        model = ConstantDelay(0.5)
        assert model.cdf(0.49) == 0.0
        assert model.cdf(0.5) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            ConstantDelay(-0.1)


class TestGaussianDelay:
    def test_sample_statistics(self):
        model = GaussianDelay(mean=1.0, std=0.1, seed=4)
        samples = [model.sample() for _ in range(20000)]
        assert statistics.mean(samples) == pytest.approx(1.0, abs=0.01)
        assert statistics.stdev(samples) == pytest.approx(0.1, abs=0.01)

    def test_floor_clamps(self):
        model = GaussianDelay(mean=0.01, std=1.0, floor=0.0, seed=4)
        assert all(model.sample() >= 0.0 for _ in range(2000))

    def test_cdf_matches_formula(self):
        model = GaussianDelay(mean=0.2, std=0.1)
        expected = gaussian_cdf((0.35 - 0.2) / 0.1)
        assert model.cdf(0.35) == pytest.approx(expected)

    def test_zero_std_degenerates(self):
        model = GaussianDelay(mean=0.2, std=0.0)
        assert model.sample() == 0.2
        assert model.cdf(0.19) == 0.0
        assert model.cdf(0.2) == 1.0

    def test_reset_reproduces(self):
        model = GaussianDelay(mean=1.0, std=0.5, seed=8)
        first = [model.sample() for _ in range(10)]
        model.reset()
        assert [model.sample() for _ in range(10)] == first

    def test_validation(self):
        with pytest.raises(SimulationError):
            GaussianDelay(mean=-1.0, std=0.1)
        with pytest.raises(SimulationError):
            GaussianDelay(mean=1.0, std=-0.1)

    def test_empirical_cdf_matches_analytic(self):
        model = GaussianDelay(mean=0.5, std=0.2, floor=-math.inf, seed=6)
        threshold = 0.6
        samples = [model.sample() for _ in range(20000)]
        empirical = sum(s <= threshold for s in samples) / len(samples)
        assert empirical == pytest.approx(model.cdf(threshold), abs=0.01)
