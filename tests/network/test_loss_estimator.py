"""Unit tests for the windowed loss estimator."""

import pytest

from repro.exceptions import SimulationError
from repro.network.channel import Channel
from repro.network.delay import ConstantDelay
from repro.network.loss import BernoulliLoss, LossEstimator, PooledLossEstimator
from repro.packets import Packet


def _packets(count):
    return [Packet(seq=i + 1, block_id=0, payload=b"p%d" % i,
                   send_time=i * 0.01) for i in range(count)]


class TestValidation:
    def test_window_must_be_positive(self):
        with pytest.raises(SimulationError):
            LossEstimator(window=0)

    def test_alpha_bounds(self):
        with pytest.raises(SimulationError):
            LossEstimator(alpha=0.0)
        with pytest.raises(SimulationError):
            LossEstimator(alpha=1.5)

    def test_observe_block_bounds(self):
        estimator = LossEstimator()
        with pytest.raises(SimulationError):
            estimator.observe_block(3, 2)
        with pytest.raises(SimulationError):
            estimator.observe_block(-1, 2)


class TestRates:
    def test_empty_estimator_reads_zero(self):
        estimator = LossEstimator()
        assert estimator.lifetime_rate == 0.0
        assert estimator.window_rate == 0.0
        assert estimator.ewma_rate == 0.0

    def test_lifetime_rate_is_exact(self):
        estimator = LossEstimator()
        estimator.observe_block(lost=3, total=10)
        assert estimator.observed == 10
        assert estimator.lost == 3
        assert estimator.lifetime_rate == pytest.approx(0.3)

    def test_window_rate_forgets_old_observations(self):
        estimator = LossEstimator(window=4)
        for _ in range(4):
            estimator.observe(True)
        assert estimator.window_rate == 1.0
        for _ in range(4):
            estimator.observe(False)
        # The four losses slid out of the window; lifetime remembers.
        assert estimator.window_rate == 0.0
        assert estimator.lifetime_rate == pytest.approx(0.5)

    def test_partial_window_uses_actual_length(self):
        estimator = LossEstimator(window=100)
        estimator.observe(True)
        estimator.observe(False)
        assert estimator.window_rate == pytest.approx(0.5)

    def test_ewma_seeds_on_first_observation(self):
        estimator = LossEstimator(alpha=0.5)
        estimator.observe(True)
        assert estimator.ewma_rate == 1.0
        estimator.observe(False)
        assert estimator.ewma_rate == pytest.approx(0.5)
        estimator.observe(False)
        assert estimator.ewma_rate == pytest.approx(0.25)

    def test_observe_block_spreads_losses_evenly(self):
        aggregate = LossEstimator(window=8)
        manual = LossEstimator(window=8)
        aggregate.observe_block(lost=2, total=5)
        # Centered spread: losses land mid-stride, not at stride ends.
        for fate in (False, True, False, True, False):
            manual.observe(fate)
        assert aggregate.window_rate == manual.window_rate
        assert aggregate.ewma_rate == pytest.approx(manual.ewma_rate)

    def test_observe_block_single_loss_lands_mid_stride(self):
        # The end-of-stride bias this pins down: lost=1 must not fall
        # in the final slot, or windows straddling a membership change
        # systematically blame the newest samples.
        estimator = LossEstimator(window=4)
        estimator.observe_block(lost=1, total=2)
        assert list(estimator._recent) == [True, False]

    def test_observe_block_preserves_totals(self):
        estimator = LossEstimator(window=64)
        for lost, total in ((1, 3), (2, 7), (5, 5), (0, 4), (3, 8)):
            estimator.observe_block(lost, total)
        assert estimator.lost == 11
        assert estimator.observed == 27
        assert estimator.window_lost == 11

    def test_unaligned_window_sees_unbiased_rate(self):
        # Window (16) not a multiple of the aggregate size (10): the
        # even spread keeps the windowed estimate at the true rate.
        estimator = LossEstimator(window=16)
        for _ in range(5):
            estimator.observe_block(lost=2, total=10)
        assert estimator.window_rate == pytest.approx(0.2, abs=0.07)

    def test_reset_forgets_everything(self):
        estimator = LossEstimator()
        estimator.observe_block(lost=5, total=10)
        estimator.reset()
        assert estimator.observed == 0
        assert estimator.lifetime_rate == 0.0
        assert estimator.window_rate == 0.0
        assert estimator.ewma_rate == 0.0


class TestForgetOldest:
    def test_purges_window_keeps_lifetime(self):
        estimator = LossEstimator(window=8, alpha=0.5)
        estimator.observe_block(lost=4, total=8)
        ewma_before = estimator.ewma_rate
        purged = estimator.forget_oldest()
        assert purged == 8
        assert estimator.window_rate == 0.0
        assert estimator.window_lost == 0
        # Lifetime and EWMA are history, not window state.
        assert estimator.lost == 4
        assert estimator.observed == 8
        assert estimator.ewma_rate == ewma_before

    def test_partial_purge_drops_oldest_first(self):
        estimator = LossEstimator(window=8)
        estimator.observe(True)
        estimator.observe(False)
        estimator.observe(False)
        assert estimator.forget_oldest(1) == 1
        # The loss was oldest, so the window is clean now.
        assert estimator.window_lost == 0
        assert estimator.window_rate == 0.0

    def test_purge_beyond_fill_stops_at_empty(self):
        estimator = LossEstimator(window=8)
        estimator.observe(True)
        assert estimator.forget_oldest(5) == 1
        assert estimator.window_rate == 0.0

    def test_negative_count_rejected(self):
        estimator = LossEstimator()
        with pytest.raises(SimulationError):
            estimator.forget_oldest(-1)

    def test_window_straddling_membership_change(self):
        # A window filled by two members' blocks: purging the first
        # member's share leaves exactly the second member's fates, as
        # if the survivor had been alone all along.
        merged = LossEstimator(window=16)
        merged.observe_block(lost=5, total=6)   # the lossy leaver
        merged.observe_block(lost=1, total=6)   # the healthy survivor
        alone = LossEstimator(window=16)
        alone.observe_block(lost=1, total=6)
        merged.forget_oldest(6)
        assert list(merged._recent) == list(alone._recent)
        assert merged.window_rate == alone.window_rate


class TestPooledLossEstimator:
    def test_per_member_windows_merge(self):
        pool = PooledLossEstimator(window=8)
        pool.observe_block("a", lost=2, total=4)
        pool.observe_block("b", lost=0, total=4)
        assert pool.members == ["a", "b"]
        assert pool.window_fill == 8
        assert pool.window_rate == pytest.approx(0.25)

    def test_retire_folds_member_out_immediately(self):
        pool = PooledLossEstimator(window=8)
        pool.observe_block("lossy", lost=4, total=4)
        pool.observe_block("clean", lost=0, total=4)
        assert pool.window_rate == pytest.approx(0.5)
        assert pool.retire("lossy") is True
        # No aging out: the leaver's samples are gone at once.
        assert pool.window_rate == 0.0
        assert pool.members == ["clean"]
        assert pool.retired == 1

    def test_retire_unknown_is_noop(self):
        pool = PooledLossEstimator()
        assert pool.retire("ghost") is False
        assert pool.retired == 0

    def test_ewma_is_fill_weighted(self):
        pool = PooledLossEstimator(window=8, alpha=0.5)
        pool.observe_block("a", lost=4, total=4)
        pool.observe_block("b", lost=0, total=4)
        a = pool.estimator_for("a").ewma_rate
        b = pool.estimator_for("b").ewma_rate
        assert pool.ewma_rate == pytest.approx((a + b) / 2)

    def test_empty_pool_reads_zero(self):
        pool = PooledLossEstimator()
        assert pool.window_rate == 0.0
        assert pool.ewma_rate == 0.0
        assert pool.window_fill == 0


class TestChannelIntegration:
    def test_channel_feeds_estimator(self):
        channel = Channel(loss=BernoulliLoss(0.5, seed=11),
                          delay=ConstantDelay(0.0))
        channel.transmit(_packets(200))
        assert channel.sent == 200
        assert channel.estimator.observed == 200
        assert channel.observed_loss_rate == channel.estimator.lifetime_rate
        assert 0.3 < channel.observed_loss_rate < 0.7

    def test_injected_estimator_is_used(self):
        estimator = LossEstimator(window=16)
        channel = Channel(loss=BernoulliLoss(0.0, seed=1),
                          delay=ConstantDelay(0.0), estimator=estimator)
        channel.transmit(_packets(5))
        assert estimator.observed == 5
        assert channel.observed_loss_rate == 0.0

    def test_channel_reset_clears_estimator(self):
        channel = Channel(loss=BernoulliLoss(0.5, seed=3),
                          delay=ConstantDelay(0.0))
        channel.transmit(_packets(50))
        channel.reset()
        assert channel.sent == 0
        assert channel.dropped == 0
        assert channel.observed_loss_rate == 0.0
