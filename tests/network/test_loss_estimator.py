"""Unit tests for the windowed loss estimator."""

import pytest

from repro.exceptions import SimulationError
from repro.network.channel import Channel
from repro.network.delay import ConstantDelay
from repro.network.loss import BernoulliLoss, LossEstimator
from repro.packets import Packet


def _packets(count):
    return [Packet(seq=i + 1, block_id=0, payload=b"p%d" % i,
                   send_time=i * 0.01) for i in range(count)]


class TestValidation:
    def test_window_must_be_positive(self):
        with pytest.raises(SimulationError):
            LossEstimator(window=0)

    def test_alpha_bounds(self):
        with pytest.raises(SimulationError):
            LossEstimator(alpha=0.0)
        with pytest.raises(SimulationError):
            LossEstimator(alpha=1.5)

    def test_observe_block_bounds(self):
        estimator = LossEstimator()
        with pytest.raises(SimulationError):
            estimator.observe_block(3, 2)
        with pytest.raises(SimulationError):
            estimator.observe_block(-1, 2)


class TestRates:
    def test_empty_estimator_reads_zero(self):
        estimator = LossEstimator()
        assert estimator.lifetime_rate == 0.0
        assert estimator.window_rate == 0.0
        assert estimator.ewma_rate == 0.0

    def test_lifetime_rate_is_exact(self):
        estimator = LossEstimator()
        estimator.observe_block(lost=3, total=10)
        assert estimator.observed == 10
        assert estimator.lost == 3
        assert estimator.lifetime_rate == pytest.approx(0.3)

    def test_window_rate_forgets_old_observations(self):
        estimator = LossEstimator(window=4)
        for _ in range(4):
            estimator.observe(True)
        assert estimator.window_rate == 1.0
        for _ in range(4):
            estimator.observe(False)
        # The four losses slid out of the window; lifetime remembers.
        assert estimator.window_rate == 0.0
        assert estimator.lifetime_rate == pytest.approx(0.5)

    def test_partial_window_uses_actual_length(self):
        estimator = LossEstimator(window=100)
        estimator.observe(True)
        estimator.observe(False)
        assert estimator.window_rate == pytest.approx(0.5)

    def test_ewma_seeds_on_first_observation(self):
        estimator = LossEstimator(alpha=0.5)
        estimator.observe(True)
        assert estimator.ewma_rate == 1.0
        estimator.observe(False)
        assert estimator.ewma_rate == pytest.approx(0.5)
        estimator.observe(False)
        assert estimator.ewma_rate == pytest.approx(0.25)

    def test_observe_block_spreads_losses_evenly(self):
        aggregate = LossEstimator(window=8)
        manual = LossEstimator(window=8)
        aggregate.observe_block(lost=2, total=5)
        for fate in (False, False, True, False, True):  # evenly spread
            manual.observe(fate)
        assert aggregate.window_rate == manual.window_rate
        assert aggregate.ewma_rate == pytest.approx(manual.ewma_rate)

    def test_unaligned_window_sees_unbiased_rate(self):
        # Window (16) not a multiple of the aggregate size (10): the
        # even spread keeps the windowed estimate at the true rate.
        estimator = LossEstimator(window=16)
        for _ in range(5):
            estimator.observe_block(lost=2, total=10)
        assert estimator.window_rate == pytest.approx(0.2, abs=0.07)

    def test_reset_forgets_everything(self):
        estimator = LossEstimator()
        estimator.observe_block(lost=5, total=10)
        estimator.reset()
        assert estimator.observed == 0
        assert estimator.lifetime_rate == 0.0
        assert estimator.window_rate == 0.0
        assert estimator.ewma_rate == 0.0


class TestChannelIntegration:
    def test_channel_feeds_estimator(self):
        channel = Channel(loss=BernoulliLoss(0.5, seed=11),
                          delay=ConstantDelay(0.0))
        channel.transmit(_packets(200))
        assert channel.sent == 200
        assert channel.estimator.observed == 200
        assert channel.observed_loss_rate == channel.estimator.lifetime_rate
        assert 0.3 < channel.observed_loss_rate < 0.7

    def test_injected_estimator_is_used(self):
        estimator = LossEstimator(window=16)
        channel = Channel(loss=BernoulliLoss(0.0, seed=1),
                          delay=ConstantDelay(0.0), estimator=estimator)
        channel.transmit(_packets(5))
        assert estimator.observed == 5
        assert channel.observed_loss_rate == 0.0

    def test_channel_reset_clears_estimator(self):
        channel = Channel(loss=BernoulliLoss(0.5, seed=3),
                          delay=ConstantDelay(0.0))
        channel.transmit(_packets(50))
        channel.reset()
        assert channel.sent == 0
        assert channel.dropped == 0
        assert channel.observed_loss_rate == 0.0
