"""Unit tests for the design-constraint model."""

import pytest

from repro.design.constraints import DesignConstraints
from repro.exceptions import DesignError
from repro.schemes.emss import EmssScheme
from repro.schemes.rohatgi import RohatgiScheme


class TestValidation:
    def test_loss_rate_range(self):
        with pytest.raises(DesignError):
            DesignConstraints(loss_rate=1.0, q_min_target=0.9)
        with pytest.raises(DesignError):
            DesignConstraints(loss_rate=-0.1, q_min_target=0.9)

    def test_target_range(self):
        with pytest.raises(DesignError):
            DesignConstraints(loss_rate=0.1, q_min_target=0.0)
        with pytest.raises(DesignError):
            DesignConstraints(loss_rate=0.1, q_min_target=1.1)

    def test_budget_validation(self):
        with pytest.raises(DesignError):
            DesignConstraints(loss_rate=0.1, q_min_target=0.9,
                              max_mean_hashes=0.0)
        with pytest.raises(DesignError):
            DesignConstraints(loss_rate=0.1, q_min_target=0.9,
                              max_delay_slots=-1)
        with pytest.raises(DesignError):
            DesignConstraints(loss_rate=0.1, q_min_target=0.9,
                              max_out_degree=0)
        with pytest.raises(DesignError):
            DesignConstraints(loss_rate=0.1, q_min_target=0.9, mc_trials=10)


class TestCheck:
    def _constraints(self, **overrides):
        base = dict(loss_rate=0.1, q_min_target=0.5, mc_trials=2000,
                    mc_seed=5)
        base.update(overrides)
        return DesignConstraints(**base)

    def test_satisfied_graph(self):
        graph = EmssScheme(2, 1).build_graph(20)
        report = self._constraints().check(graph)
        assert report.satisfied
        assert report.violation is None
        assert report.q_min >= 0.5

    def test_q_target_violation(self):
        graph = RohatgiScheme().build_graph(60)
        report = self._constraints(q_min_target=0.99).check(graph)
        assert not report.satisfied
        assert report.violation == "q_min target missed"

    def test_overhead_violation(self):
        graph = EmssScheme(2, 1).build_graph(20)
        report = self._constraints(max_mean_hashes=0.5).check(graph)
        assert not report.satisfied
        assert report.violation == "overhead budget exceeded"

    def test_delay_violation(self):
        graph = EmssScheme(2, 1).build_graph(20)
        report = self._constraints(max_delay_slots=3).check(graph)
        assert not report.satisfied
        assert report.violation == "delay budget exceeded"

    def test_out_degree_violation(self):
        # A star from the root: one vertex carries n-1 hashes.
        from repro.core.graph import DependenceGraph
        graph = DependenceGraph(10, root=1)
        for v in range(2, 11):
            graph.add_edge(1, v)
        report = self._constraints(max_out_degree=4).check(graph)
        assert not report.satisfied
        assert report.violation == "out-degree cap exceeded"

    def test_evaluate_q_min_matches_target_scale(self):
        graph = EmssScheme(2, 1).build_graph(30)
        q = self._constraints().evaluate_q_min(graph)
        assert 0.5 < q <= 1.0
