"""Unit tests for the unified design-program frontend."""

import pytest

from repro.design.frontend import DESIGN_FAMILIES, DesignPoint, design_point
from repro.design.optimizer import optimize_ac, optimize_emss
from repro.exceptions import DesignError
from repro.schemes.registry import make_scheme


class TestDispatch:
    def test_emss_matches_direct_optimizer(self):
        point = design_point("emss", 12, 0.2, 0.75, max_delay_slots=8)
        choice = optimize_emss(12, 0.2, 0.75, max_delay_slots=8)
        assert point.family == "emss"
        assert point.parameters == choice.parameters
        assert point.q_min == choice.q_min
        assert point.cost == choice.cost
        assert point.scheme_spec == "emss(%d,%d)" % choice.parameters

    def test_ac_matches_direct_optimizer(self):
        point = design_point("ac", 12, 0.2, 0.75, max_delay_slots=8)
        choice = optimize_ac(12, 0.2, 0.75, max_delay_slots=8)
        assert point.family == "ac"
        assert point.parameters == choice.parameters
        assert point.scheme_spec == "ac(%d,%d)" % choice.parameters

    def test_offset_point_carries_policy(self):
        point = design_point("offset", 40, 0.2, 0.8, max_delay_slots=8)
        assert point.family == "offset"
        assert point.q_min >= 0.8
        assert point.delay_slots == max(point.extra["offsets"])
        assert point.scheme_spec.startswith("offsets(")

    def test_probabilistic_point_is_seeded(self):
        first = design_point("probabilistic", 30, 0.1, 0.7,
                             max_delay_slots=8, seed=5, mc_trials=300)
        again = design_point("probabilistic", 30, 0.1, 0.7,
                             max_delay_slots=8, seed=5, mc_trials=300)
        assert first == again
        assert first.parameters == (first.extra["edge_probability"],)

    def test_heuristic_point_has_edges_not_spec(self):
        point = design_point("heuristic", 24, 0.1, 0.6, seed=3,
                             mc_trials=300)
        assert point.scheme_spec is None
        assert point.extra["edges"]
        assert point.q_min >= 0.6

    def test_unknown_family_raises(self):
        with pytest.raises(DesignError, match="unknown design family"):
            design_point("tesla", 12, 0.2, 0.75)

    def test_infeasible_point_raises_design_error(self):
        # q ~ 1 at heavy loss within one delay slot: nothing qualifies.
        with pytest.raises(DesignError):
            design_point("emss", 12, 0.5, 0.9999, max_delay_slots=1)


class TestDesignPoint:
    def point(self, family="emss"):
        return design_point(family, 12, 0.2, 0.75, max_delay_slots=8)

    def test_specs_instantiate_via_registry(self):
        for family in ("emss", "ac", "offset"):
            point = design_point(family, 12, 0.2, 0.75, max_delay_slots=8)
            scheme = make_scheme(point.scheme_spec)
            assert scheme.name

    def test_round_trips_through_dict(self):
        for family in DESIGN_FAMILIES:
            kwargs = {"seed": 3, "mc_trials": 300}
            point = design_point(family, 16, 0.1, 0.6, max_delay_slots=8,
                                 **kwargs)
            assert DesignPoint.from_dict(point.to_dict()) == point

    def test_parameter_choice_downcast(self):
        choice = self.point("emss").to_parameter_choice()
        assert choice.scheme == "emss"
        assert choice == optimize_emss(12, 0.2, 0.75, max_delay_slots=8)

    def test_offset_family_refuses_downcast(self):
        with pytest.raises(DesignError):
            design_point("offset", 40, 0.2, 0.8,
                         max_delay_slots=8).to_parameter_choice()

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(DesignError):
            DesignPoint.from_dict({"family": "emss"})
