"""Unit tests for the greedy graph designer (Sec. 5)."""

import pytest

from repro.design.constraints import DesignConstraints
from repro.design.heuristic import greedy_design
from repro.exceptions import DesignError


def _constraints(**overrides):
    base = dict(loss_rate=0.2, q_min_target=0.8, max_out_degree=6,
                mc_trials=1500, mc_seed=77)
    base.update(overrides)
    return DesignConstraints(**base)


class TestGreedyDesign:
    def test_reaches_moderate_target(self):
        result = greedy_design(40, _constraints(), max_extra_edges=300)
        assert result.satisfied
        assert result.q_min >= 0.8
        result.graph.validate()

    def test_trivial_target_needs_no_extra_edges(self):
        result = greedy_design(20, _constraints(q_min_target=0.05))
        assert result.satisfied
        assert result.added_edges == ()

    def test_respects_out_degree_cap(self):
        constraints = _constraints(max_out_degree=3)
        result = greedy_design(30, constraints, max_extra_edges=200)
        for v in result.graph.vertices:
            assert result.graph.out_degree(v) <= 3

    def test_budget_exhaustion_reported(self):
        result = greedy_design(40, _constraints(q_min_target=0.99),
                               max_extra_edges=2)
        assert not result.satisfied
        assert len(result.added_edges) <= 2

    def test_custom_root(self):
        result = greedy_design(20, _constraints(q_min_target=0.3), root=1)
        assert result.graph.root == 1

    def test_rejects_tiny_block(self):
        with pytest.raises(DesignError):
            greedy_design(1, _constraints())

    def test_overhead_budget_caps_edges(self):
        constraints = _constraints(q_min_target=0.999, max_mean_hashes=1.5)
        result = greedy_design(30, constraints)
        assert result.graph.edge_count <= 45  # 1.5 * 30
