"""Unit tests for the greedy graph designer (Sec. 5)."""

import pytest

from repro.design.constraints import DesignConstraints
from repro.design.heuristic import greedy_design
from repro.exceptions import DesignError


def _constraints(**overrides):
    base = dict(loss_rate=0.2, q_min_target=0.8, max_out_degree=6,
                mc_trials=1500, mc_seed=77)
    base.update(overrides)
    return DesignConstraints(**base)


class TestGreedyDesign:
    def test_reaches_moderate_target(self):
        result = greedy_design(40, _constraints(), max_extra_edges=300)
        assert result.satisfied
        assert result.q_min >= 0.8
        result.graph.validate()

    def test_trivial_target_needs_no_extra_edges(self):
        result = greedy_design(20, _constraints(q_min_target=0.05))
        assert result.satisfied
        assert result.added_edges == ()

    def test_respects_out_degree_cap(self):
        constraints = _constraints(max_out_degree=3)
        result = greedy_design(30, constraints, max_extra_edges=200)
        for v in result.graph.vertices:
            assert result.graph.out_degree(v) <= 3

    def test_budget_exhaustion_reported(self):
        result = greedy_design(40, _constraints(q_min_target=0.99),
                               max_extra_edges=2)
        assert not result.satisfied
        assert len(result.added_edges) <= 2

    def test_custom_root(self):
        result = greedy_design(20, _constraints(q_min_target=0.3), root=1)
        assert result.graph.root == 1

    def test_rejects_tiny_block(self):
        with pytest.raises(DesignError):
            greedy_design(1, _constraints())

    def test_overhead_budget_caps_edges(self):
        constraints = _constraints(q_min_target=0.999, max_mean_hashes=1.5)
        result = greedy_design(30, constraints)
        assert result.graph.edge_count <= 45  # 1.5 * 30

    def test_seeded_runs_are_identical(self):
        first = greedy_design(30, _constraints(), max_extra_edges=200)
        again = greedy_design(30, _constraints(), max_extra_edges=200)
        assert sorted(first.graph.edges()) == sorted(again.graph.edges())
        assert first.q_min == again.q_min

    def test_minimal_viable_block(self):
        result = greedy_design(2, _constraints(q_min_target=0.1))
        assert result.satisfied
        result.graph.validate()

    def test_lossless_channel_satisfied_by_the_tree(self):
        result = greedy_design(25, _constraints(loss_rate=0.0,
                                                q_min_target=1.0))
        assert result.satisfied
        assert result.added_edges == ()


class TestDifferentialVsOffsetPolicy:
    @pytest.mark.parametrize("n,p,target", [
        (30, 0.1, 0.8),
        (30, 0.2, 0.8),
        (24, 0.2, 0.85),
    ])
    def test_heuristic_never_beaten_by_uniform_policy(self, n, p, target):
        # Where both programs are feasible, the greedy designer (free
        # graph shape, exact MC evaluator) should meet the target with
        # no more edges per packet than the DP's uniform offset policy
        # (Eq. 9 independence approximation) — and never fewer than the
        # connectivity floor of (n-1)/n.
        from repro.design.dp import search_offset_policy

        policy = search_offset_policy(n, p, target, max_offset=8)
        constraints = _constraints(loss_rate=p, q_min_target=target,
                                   mc_trials=2000, mc_seed=11)
        built = greedy_design(n, constraints, max_extra_edges=8 * n)
        assert built.satisfied
        per_packet = built.graph.edge_count / n
        assert (n - 1) / n <= per_packet <= policy.edges_per_packet
