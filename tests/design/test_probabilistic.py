"""Unit tests for probabilistic-construction tuning."""

import pytest

from repro.design.probabilistic import tune_edge_probability
from repro.exceptions import DesignError


class TestTuning:
    def test_meets_target(self):
        design = tune_edge_probability(40, 0.2, 0.8, trials=1500, seed=13)
        assert design.q_min >= 0.8
        assert 0.0 < design.edge_probability <= 1.0

    def test_easier_target_needs_fewer_edges(self):
        easy = tune_edge_probability(40, 0.2, 0.5, trials=1500, seed=13)
        hard = tune_edge_probability(40, 0.2, 0.95, trials=1500, seed=13)
        assert easy.edge_probability <= hard.edge_probability + 1e-9

    def test_span_cap_respected(self):
        design = tune_edge_probability(40, 0.2, 0.7, trials=1500, seed=13,
                                       max_span=6)
        assert design.q_min >= 0.7

    def test_infeasible_raises(self):
        # With a 1-packet span and brutal loss, even p_x = 1 is a chain.
        with pytest.raises(DesignError):
            tune_edge_probability(60, 0.6, 0.999, trials=800, seed=13,
                                  max_span=1)

    def test_validation(self):
        with pytest.raises(DesignError):
            tune_edge_probability(1, 0.2, 0.9)
        with pytest.raises(DesignError):
            tune_edge_probability(40, 0.2, 0.0)
