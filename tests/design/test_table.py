"""Unit tests for design-table builds, serialization and validation."""

import json

import pytest

from repro.design.table import (
    DEFAULT_TABLE_P_GRID,
    TABLE_SCHEMA_VERSION,
    DesignTable,
    TableSpec,
    cell_key,
    validate_table_payload,
)
from repro.exceptions import DesignError

SMALL = TableSpec(p_grid=(0.05, 0.2), block_sizes=(12,),
                  q_targets=(0.75,), delay_budgets=(8,),
                  families=("emss", "ac"))


class TestTableSpec:
    def test_lattice_order_is_canonical(self):
        lattice = SMALL.lattice()
        assert lattice == [
            ("emss", 0.05, 12, 0.75, 8), ("emss", 0.2, 12, 0.75, 8),
            ("ac", 0.05, 12, 0.75, 8), ("ac", 0.2, 12, 0.75, 8),
        ]

    def test_round_trips_through_dict(self):
        assert TableSpec.from_dict(SMALL.to_dict()) == SMALL

    def test_rejects_unknown_family(self):
        with pytest.raises(DesignError, match="unknown design family"):
            TableSpec(families=("emss", "tesla"))

    def test_rejects_duplicate_families(self):
        with pytest.raises(DesignError, match="duplicate"):
            TableSpec(families=("emss", "emss"))

    def test_rejects_bad_axes(self):
        with pytest.raises(DesignError):
            TableSpec(p_grid=(0.2, 0.1))
        with pytest.raises(DesignError):
            TableSpec(p_grid=(0.1, 1.5))
        with pytest.raises(DesignError):
            TableSpec(q_targets=(0.0,))
        with pytest.raises(DesignError):
            TableSpec(block_sizes=(1,))
        with pytest.raises(DesignError):
            TableSpec(delay_budgets=(0,))
        with pytest.raises(DesignError):
            TableSpec(families=())

    def test_cell_key_floats_round_trip_json(self):
        p = 0.1 + 0.2  # 0.30000000000000004: repr must survive JSON
        key = cell_key("emss", p, 12, 0.75, 8)
        reloaded = json.loads(json.dumps(p))
        assert cell_key("emss", reloaded, 12, 0.75, 8) == key


class TestBuild:
    def test_covers_the_whole_lattice(self):
        table = DesignTable.build(SMALL, workers=1)
        assert set(table.cells) == {cell_key(*cell)
                                    for cell in SMALL.lattice()}
        assert table.feasible_count() == len(SMALL.lattice())

    def test_byte_identical_across_worker_counts(self):
        serial = DesignTable.build(SMALL, workers=1)
        fanned = DesignTable.build(SMALL, workers=2)
        assert serial.to_bytes() == fanned.to_bytes()
        assert serial.content_hash == fanned.content_hash

    def test_sampled_families_are_seed_deterministic(self):
        spec = TableSpec(p_grid=(0.1,), block_sizes=(16,),
                         q_targets=(0.6,), delay_budgets=(8,),
                         families=("probabilistic",), mc_trials=300)
        assert (DesignTable.build(spec, workers=1).to_bytes()
                == DesignTable.build(spec, workers=2).to_bytes())

    def test_infeasible_cells_are_recorded_not_raised(self):
        spec = TableSpec(p_grid=(0.5,), block_sizes=(12,),
                         q_targets=(0.9999,), delay_budgets=(1,),
                         families=("emss",))
        table = DesignTable.build(spec, workers=1)
        assert table.feasible_count() == 0
        entry = table.cells[cell_key("emss", 0.5, 12, 0.9999, 1)]
        assert entry["feasible"] is False
        assert entry["reason"]

    def test_default_spec_builds(self):
        table = DesignTable.build(
            TableSpec(p_grid=DEFAULT_TABLE_P_GRID[:2], families=("emss",)),
            workers=1)
        assert table.feasible_count() == 2


class TestSerialization:
    def test_save_load_round_trip(self, tmp_path):
        table = DesignTable.build(SMALL, workers=1)
        path = str(tmp_path / "table.json")
        table.save(path)
        loaded = DesignTable.load(path)
        assert loaded.to_bytes() == table.to_bytes()

    def test_payload_carries_schema_and_hash(self):
        payload = DesignTable.build(SMALL, workers=1).to_payload()
        assert payload["schema_version"] == TABLE_SCHEMA_VERSION
        validate_table_payload(payload)

    def test_rejects_wrong_schema_version(self):
        payload = DesignTable.build(SMALL, workers=1).to_payload()
        payload["schema_version"] = 99
        with pytest.raises(DesignError, match="schema"):
            validate_table_payload(payload)

    def test_rejects_tampered_cells(self):
        payload = DesignTable.build(SMALL, workers=1).to_payload()
        key = next(iter(payload["cells"]))
        payload["cells"][key]["cost"] = 0.0
        with pytest.raises(DesignError, match="hash"):
            validate_table_payload(payload)

    def test_rejects_missing_cells(self):
        payload = DesignTable.build(SMALL, workers=1).to_payload()
        payload["cells"].popitem()
        with pytest.raises(DesignError, match="lattice"):
            validate_table_payload(payload)

    def test_load_rejects_truncated_file(self, tmp_path):
        path = tmp_path / "table.json"
        table = DesignTable.build(SMALL, workers=1)
        path.write_bytes(table.to_bytes()[:-40])
        with pytest.raises(DesignError):
            DesignTable.load(str(path))

    def test_load_missing_file(self):
        with pytest.raises(DesignError, match="cannot read"):
            DesignTable.load("/nonexistent/table.json")


class TestDescribe:
    def test_per_family_summary(self):
        summary = DesignTable.build(SMALL, workers=1).describe()
        assert summary["cells"] == 4
        assert summary["families"]["emss"] == {"cells": 2, "feasible": 2}
        assert summary["families"]["ac"] == {"cells": 2, "feasible": 2}
