"""Unit tests for the O(1) design-service lookup."""

import pytest

from repro.design.frontend import DesignPoint, design_point
from repro.design.service import DesignCoverageError, DesignService
from repro.design.table import DesignTable, TableSpec
from repro.exceptions import DesignError
from repro.obs.registry import MetricsRegistry, use_registry

SPEC = TableSpec(p_grid=(0.05, 0.2, 0.4), block_sizes=(12, 24),
                 q_targets=(0.75, 0.9), delay_budgets=(4, 8),
                 families=("emss", "ac"))


@pytest.fixture(scope="module")
def service():
    return DesignService(DesignTable.build(SPEC, workers=1))


class TestLookup:
    def test_on_grid_point_matches_direct_program(self, service):
        point = service.lookup(0.2, 12, 0.75, family="emss",
                               max_delay_slots=8)
        assert point == design_point("emss", 12, 0.2, 0.75,
                                     max_delay_slots=8)

    def test_quantizes_conservatively(self, service):
        # p and q round up, delay rounds down: the answered cell is at
        # least as hard as the request on every axis.
        assert (service.resolve_cell(0.1, 13, 0.8, max_delay_slots=7)
                == (0.2, 24, 0.9, 4))

    def test_default_delay_takes_largest_budget(self, service):
        assert service.resolve_cell(0.05, 12, 0.75)[-1] == 8

    def test_returns_design_points(self, service):
        point = service.lookup(0.1, 12, 0.8, family="ac")
        assert isinstance(point, DesignPoint)
        assert point.family == "ac"

    def test_off_grid_raises_coverage_error(self, service):
        with pytest.raises(DesignCoverageError):
            service.lookup(0.45, 12, 0.75)  # above top of p grid
        with pytest.raises(DesignCoverageError):
            service.lookup(0.2, 48, 0.75)  # above top block size
        with pytest.raises(DesignCoverageError):
            service.lookup(0.2, 12, 0.95)  # above top q target
        with pytest.raises(DesignCoverageError):
            service.lookup(0.2, 12, 0.75, max_delay_slots=2)  # below delay

    def test_unbuilt_family_raises_coverage_error(self, service):
        with pytest.raises(DesignCoverageError, match="family"):
            service.lookup(0.2, 12, 0.75, family="offset")

    def test_coverage_error_is_a_design_error(self):
        assert issubclass(DesignCoverageError, DesignError)

    def test_covered_infeasible_answers_none(self):
        spec = TableSpec(p_grid=(0.5,), block_sizes=(12,),
                         q_targets=(0.9999,), delay_budgets=(1,),
                         families=("emss",))
        infeasible = DesignService(DesignTable.build(spec, workers=1))
        assert infeasible.lookup(0.5, 12, 0.9999) is None
        assert infeasible.hits == 1


class TestCounters:
    def test_instance_counters(self, service):
        before_hits, before_misses = service.hits, service.misses
        service.lookup(0.05, 12, 0.75)
        with pytest.raises(DesignCoverageError):
            service.lookup(0.9, 12, 0.75)
        assert service.hits == before_hits + 1
        assert service.misses == before_misses + 1

    def test_registry_counters(self, service):
        with use_registry(MetricsRegistry()) as registry:
            service.lookup(0.05, 12, 0.75)
            service.lookup(0.2, 12, 0.75)
            with pytest.raises(DesignCoverageError):
                service.lookup(0.9, 12, 0.75)
        assert registry.counters["design.service.lookups"] == 3
        assert registry.counters["design.service.hits"] == 2
        assert registry.counters["design.service.misses"] == 1

    def test_describe_reports_traffic(self):
        fresh = DesignService(DesignTable.build(
            TableSpec(p_grid=(0.1,), families=("emss",)), workers=1))
        fresh.lookup(0.1, 12, 0.75)
        summary = fresh.describe()
        assert summary["lookup_hits"] == 1
        assert summary["lookup_misses"] == 0
        assert summary["content_hash"] == fresh.table.content_hash


class TestLoad:
    def test_load_round_trip(self, tmp_path, service):
        path = str(tmp_path / "table.json")
        service.table.save(path)
        loaded = DesignService.load(path)
        assert (loaded.lookup(0.2, 12, 0.75)
                == service.lookup(0.2, 12, 0.75))
