"""Unit tests for the shared quantization helpers."""

import pytest

from repro.design.grid import quantize_down, quantize_up, validate_grid
from repro.exceptions import DesignError

GRID = (0.02, 0.05, 0.1, 0.2, 0.5)


class TestValidateGrid:
    def test_returns_tuple(self):
        assert validate_grid([1, 2, 3], "axis") == (1, 2, 3)

    def test_rejects_empty(self):
        with pytest.raises(DesignError):
            validate_grid((), "axis")

    def test_rejects_unsorted(self):
        with pytest.raises(DesignError):
            validate_grid((2, 1, 3), "axis")

    def test_rejects_duplicates(self):
        with pytest.raises(DesignError):
            validate_grid((1, 2, 2, 3), "axis")

    def test_error_names_the_axis(self):
        with pytest.raises(DesignError, match="p_grid"):
            validate_grid((), "p_grid")


class TestQuantizeUp:
    def test_exact_point_maps_to_itself(self):
        assert quantize_up(0.1, GRID) == 0.1

    def test_between_points_rounds_up(self):
        assert quantize_up(0.11, GRID) == 0.2

    def test_below_bottom_takes_first_point(self):
        assert quantize_up(0.001, GRID) == 0.02

    def test_above_top_raises_without_clamp(self):
        with pytest.raises(DesignError):
            quantize_up(0.6, GRID)

    def test_above_top_clamps_when_asked(self):
        assert quantize_up(0.6, GRID, clamp=True) == 0.5

    def test_integer_grids(self):
        assert quantize_up(13, (8, 12, 16)) == 16


class TestQuantizeDown:
    def test_exact_point_maps_to_itself(self):
        assert quantize_down(0.1, GRID) == 0.1

    def test_between_points_rounds_down(self):
        assert quantize_down(0.19, GRID) == 0.1

    def test_above_top_takes_last_point(self):
        assert quantize_down(0.9, GRID) == 0.5

    def test_below_bottom_raises(self):
        with pytest.raises(DesignError):
            quantize_down(0.01, GRID)

    def test_integer_grids(self):
        assert quantize_down(15, (8, 12, 16)) == 12
