"""Unit tests for the guaranteed-diversity designer."""

import pytest

from repro.core.diversity import disjoint_path_count, diversity_lambda_floor
from repro.design.disjoint import disjoint_paths_design
from repro.exceptions import DesignError


class TestConstruction:
    @pytest.mark.parametrize("r", [1, 2, 3])
    def test_guarantee_holds(self, r):
        n = 30
        graph = disjoint_paths_design(n, r)
        graph.validate()
        for vertex in (1, n // 2, n - 2):
            achievable = min(r, n - vertex)
            assert disjoint_path_count(graph, vertex) >= achievable

    def test_overhead_tracks_r(self):
        n = 40
        for r in (1, 2, 3):
            graph = disjoint_paths_design(n, r)
            assert graph.edge_count <= r * (n - 1)
            assert graph.edge_count >= (r - 0.5) * (n - 4)

    def test_custom_strides(self):
        graph = disjoint_paths_design(30, 2, strides=[1, 4])
        assert disjoint_path_count(graph, 1) == 2

    def test_lambda_floor_is_usable(self):
        graph = disjoint_paths_design(30, 3)
        floor = diversity_lambda_floor(graph, 1, 0.1)
        assert floor > 0.0

    def test_verify_can_be_disabled(self):
        graph = disjoint_paths_design(30, 2, verify=False)
        graph.validate()


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(DesignError):
            disjoint_paths_design(1, 2)
        with pytest.raises(DesignError):
            disjoint_paths_design(30, 0)
        with pytest.raises(DesignError):
            disjoint_paths_design(30, 2, strides=[1])
        with pytest.raises(DesignError):
            disjoint_paths_design(30, 2, strides=[1, 1])
        with pytest.raises(DesignError):
            disjoint_paths_design(30, 2, strides=[0, 1])

    def test_too_many_chains(self):
        with pytest.raises(DesignError):
            disjoint_paths_design(300, 20)
