"""Unit tests for EMSS/AC parameter optimization."""

import pytest

from repro.analysis import augmented_chain as ac_analysis
from repro.analysis import emss as emss_analysis
from repro.design.optimizer import optimize_ac, optimize_emss
from repro.exceptions import DesignError


class TestOptimizeEmss:
    def test_choice_meets_target(self):
        choice = optimize_emss(200, 0.2, 0.9)
        m, d = choice.parameters
        assert emss_analysis.q_min(200, m, d, 0.2) >= 0.9
        assert choice.q_min >= 0.9

    def test_minimal_cost_selected(self):
        choice = optimize_emss(200, 0.1, 0.9)
        # One hash per packet cannot reach 0.9 at p=0.1 over n=200,
        # but two can (fixed point 0.9877): cost must be exactly 2.
        assert choice.cost == 2.0

    def test_delay_budget(self):
        choice = optimize_emss(200, 0.2, 0.9, max_delay_slots=8)
        m, d = choice.parameters
        assert m * d <= 8

    def test_infeasible(self):
        with pytest.raises(DesignError):
            optimize_emss(200, 0.6, 0.9999, m_values=[1, 2],
                          d_values=[1])


class TestOptimizeAc:
    def test_choice_meets_target(self):
        choice = optimize_ac(201, 0.2, 0.9)
        a, b = choice.parameters
        assert ac_analysis.q_min(201, a, b, 0.2) >= 0.9

    def test_cost_is_two_hashes(self):
        choice = optimize_ac(201, 0.1, 0.9)
        assert choice.cost == 2.0

    def test_delay_budget(self):
        choice = optimize_ac(201, 0.2, 0.8, max_delay_slots=12)
        a, b = choice.parameters
        assert a * (b + 1) <= 12

    def test_infeasible(self):
        with pytest.raises(DesignError):
            optimize_ac(201, 0.55, 0.99)
