"""Unit tests for the offset-policy (dynamic programming) search."""

from itertools import combinations

import pytest

from repro.core.recurrence import solve_recurrence
from repro.design.dp import search_offset_policy
from repro.exceptions import DesignError


def _brute_minimal_edges(n, p, target, max_offset, max_edges=3):
    """Exhaustive minimal ``|A|`` meeting the target, or ``None``."""
    candidates = range(1, min(max_offset, n - 1) + 1)
    for size in range(1, max_edges + 1):
        for combo in combinations(candidates, size):
            if solve_recurrence(n, list(combo), p).q_min >= target:
                return size
    return None


class TestSearch:
    def test_finds_minimal_policy_for_easy_target(self):
        policy = search_offset_policy(100, 0.1, 0.9, max_offset=8)
        assert policy.q_min >= 0.9
        assert policy.edges_per_packet <= 2

    def test_policy_evaluates_correctly(self):
        policy = search_offset_policy(100, 0.2, 0.9, max_offset=8)
        recomputed = solve_recurrence(100, list(policy.offsets), 0.2).q_min
        assert policy.q_min == pytest.approx(recomputed)

    def test_harder_target_needs_more_edges(self):
        easy = search_offset_policy(200, 0.3, 0.8, max_offset=16)
        hard = search_offset_policy(200, 0.3, 0.97, max_offset=16)
        assert hard.edges_per_packet >= easy.edges_per_packet

    def test_stage_minimality(self):
        # If some single offset meets the target, the search returns
        # a single-offset policy.
        policy = search_offset_policy(50, 0.0, 0.99, max_offset=4)
        assert policy.edges_per_packet == 1

    def test_delay_budget_restricts_offsets(self):
        policy = search_offset_policy(100, 0.2, 0.9, max_offset=64,
                                      max_delay_slots=5)
        assert max(policy.offsets) <= 5

    def test_infeasible_raises(self):
        with pytest.raises(DesignError):
            search_offset_policy(200, 0.6, 0.999, max_offset=4, max_edges=2)

    def test_impossible_delay_budget(self):
        with pytest.raises(DesignError):
            search_offset_policy(100, 0.2, 0.9, max_delay_slots=0)

    def test_parameter_validation(self):
        with pytest.raises(DesignError):
            search_offset_policy(100, 1.0, 0.9)
        with pytest.raises(DesignError):
            search_offset_policy(100, 0.2, 0.0)
        with pytest.raises(DesignError):
            search_offset_policy(100, 0.2, 0.9, beam_width=0)

    def test_lossless_channel_needs_one_edge(self):
        # p = 0: any single offset authenticates everything.
        policy = search_offset_policy(30, 0.0, 1.0, max_offset=8)
        assert policy.edges_per_packet == 1
        assert policy.q_min == 1.0

    def test_minimal_block(self):
        # n = 2 leaves a single candidate offset.
        policy = search_offset_policy(2, 0.0, 1.0, max_offset=8)
        assert policy.offsets == (1,)

    def test_offsets_are_strictly_increasing(self):
        policy = search_offset_policy(60, 0.3, 0.9, max_offset=12)
        assert list(policy.offsets) == sorted(set(policy.offsets))

    def test_tight_delay_budget_matches_explicit_max_offset(self):
        capped = search_offset_policy(100, 0.2, 0.9, max_offset=64,
                                      max_delay_slots=6)
        explicit = search_offset_policy(100, 0.2, 0.9, max_offset=6)
        assert capped.offsets == explicit.offsets


class TestDifferential:
    @pytest.mark.parametrize("n,p,target,max_offset", [
        (20, 0.1, 0.85, 8),
        (30, 0.2, 0.8, 8),
        (24, 0.3, 0.75, 6),
        (16, 0.05, 0.9, 5),
        (40, 0.25, 0.9, 10),
    ])
    def test_search_matches_brute_force_minimum(self, n, p, target,
                                                max_offset):
        # Stage-minimality against exhaustive subset enumeration: the
        # beam search's first satisfying stage is the true minimum |A|.
        expected = _brute_minimal_edges(n, p, target, max_offset)
        assert expected is not None
        policy = search_offset_policy(n, p, target, max_offset=max_offset)
        assert policy.edges_per_packet == expected
