"""Unit tests for the offset-policy (dynamic programming) search."""

import pytest

from repro.core.recurrence import solve_recurrence
from repro.design.dp import search_offset_policy
from repro.exceptions import DesignError


class TestSearch:
    def test_finds_minimal_policy_for_easy_target(self):
        policy = search_offset_policy(100, 0.1, 0.9, max_offset=8)
        assert policy.q_min >= 0.9
        assert policy.edges_per_packet <= 2

    def test_policy_evaluates_correctly(self):
        policy = search_offset_policy(100, 0.2, 0.9, max_offset=8)
        recomputed = solve_recurrence(100, list(policy.offsets), 0.2).q_min
        assert policy.q_min == pytest.approx(recomputed)

    def test_harder_target_needs_more_edges(self):
        easy = search_offset_policy(200, 0.3, 0.8, max_offset=16)
        hard = search_offset_policy(200, 0.3, 0.97, max_offset=16)
        assert hard.edges_per_packet >= easy.edges_per_packet

    def test_stage_minimality(self):
        # If some single offset meets the target, the search returns
        # a single-offset policy.
        policy = search_offset_policy(50, 0.0, 0.99, max_offset=4)
        assert policy.edges_per_packet == 1

    def test_delay_budget_restricts_offsets(self):
        policy = search_offset_policy(100, 0.2, 0.9, max_offset=64,
                                      max_delay_slots=5)
        assert max(policy.offsets) <= 5

    def test_infeasible_raises(self):
        with pytest.raises(DesignError):
            search_offset_policy(200, 0.6, 0.999, max_offset=4, max_edges=2)

    def test_impossible_delay_budget(self):
        with pytest.raises(DesignError):
            search_offset_policy(100, 0.2, 0.9, max_delay_slots=0)

    def test_parameter_validation(self):
        with pytest.raises(DesignError):
            search_offset_policy(100, 1.0, 0.9)
        with pytest.raises(DesignError):
            search_offset_policy(100, 0.2, 0.0)
        with pytest.raises(DesignError):
            search_offset_policy(100, 0.2, 0.9, beam_width=0)
